"""Shared machinery for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper at laptop
scale: smaller row counts and budgets than the original cluster runs, but
the same workloads, methods, and reporting axes. Each run writes its
paper-style series to ``benchmarks/results/<name>.txt`` (and prints it),
so EXPERIMENTS.md can quote the measured numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.experiments import (
    Configuration,
    f1_advantage_curves,
    format_series,
    run_configuration,
    run_configurations,
)

RESULTS_DIR = Path(__file__).parent / "results"

# Laptop-scale defaults (the paper: full Table 1 sizes, budget 50, 1 % step).
N_ROWS = 240
BUDGET = 16.0
STEP = 0.02
GRID = np.arange(0.0, BUDGET + 1.0)
RR_REPEATS = 2

# Figure suites fan their (configuration, setting) tasks out through a
# ``repro.runtime`` backend — results are trace-identical to serial runs
# (the determinism contract), so this is purely a throughput knob.
# Override with REPRO_BENCH_BACKEND=serial|thread|process and
# REPRO_BENCH_JOBS=<n>; the default uses the process pool on multi-core
# hosts and degrades to serial on single-core ones (``jobs<=1`` → serial).
BENCH_BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "process")
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS") or 0) or min(
    os.cpu_count() or 1, 4
)

ERROR_NAMES = ("categorical", "noise", "missing", "scaling")
ERROR_LABELS = {
    "categorical": "Categorical Shift",
    "noise": "Gaussian Noise",
    "missing": "Missing Values",
    "scaling": "Scaling",
}
PREPOLLUTED_DATASETS = ("cmc", "churn", "eeg", "s-credit")
CLEANML_CASES = (("airbnb", "scaling"), ("credit", "scaling"), ("titanic", "missing"))


def comparison_config(
    dataset: str,
    algorithm: str,
    error_types,
    cost_model: str = "uniform",
    cleanml: bool = False,
    budget: float = BUDGET,
    n_rows: int = N_ROWS,
) -> Configuration:
    return Configuration(
        dataset=dataset,
        algorithm=algorithm,
        error_types=tuple(error_types),
        n_rows=n_rows,
        budget=budget,
        step=STEP,
        cost_model=cost_model,
        cleanml=cleanml,
        rr_repeats=RR_REPEATS,
    )


def advantage_lines(
    config: Configuration,
    methods,
    n_settings: int = 1,
    seed: int = 0,
    grid: np.ndarray | None = None,
) -> tuple[list[str], dict]:
    """Run a comparison and format COMET's advantage series per baseline.

    Settings fan out through the benchmark backend (see ``BENCH_BACKEND``);
    the returned traces equal a serial run's.
    """
    grid = GRID if grid is None else grid
    results = run_configuration(
        config,
        methods=("comet", *methods),
        n_settings=n_settings,
        seed=seed,
        backend=BENCH_BACKEND,
        jobs=BENCH_JOBS,
    )
    curves = f1_advantage_curves(results, grid)
    lines = [
        format_series(f"{config.dataset}/{config.algorithm} vs {m.upper()}", grid, c)
        for m, c in curves.items()
    ]
    return lines, {"results": results, "curves": curves}


def results_grid(
    configs: list[Configuration],
    methods,
    n_settings: int = 1,
    seed: int = 0,
) -> list[dict]:
    """Run a whole grid of configurations through one backend fan-out.

    The work unit is one (configuration, setting) pair, so figure-style
    grids of many small configurations saturate the pool even with a
    single setting each. Returns one method→traces dict per
    configuration, in input order, identical to serial execution.
    """
    return run_configurations(
        configs,
        methods=methods,
        n_settings=n_settings,
        seed=seed,
        backend=BENCH_BACKEND,
        jobs=BENCH_JOBS,
    )


def applicable_errors(dataset: str) -> tuple[str, ...]:
    """Error types applicable to a dataset (EEG has no categoricals)."""
    if dataset == "eeg":
        return tuple(e for e in ERROR_NAMES if e != "categorical")
    return ERROR_NAMES


def report(name: str, title: str, lines) -> str:
    """Write a benchmark's series to results/<name>.txt and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"# {title}\n" + "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")
    return text
