"""Copy headline numbers from benchmarks/results/BENCH_*.json to the repo root.

CI uploads the full JSON artifacts per run; this script distills each
one into a few headline lines and writes them all to ``BENCHMARKS.md``
at the repository root, so the performance trajectory is visible in the
tree (and in PR diffs) without downloading artifacts.

Usage::

    python benchmarks/summarize.py          # rewrite BENCHMARKS.md
    python benchmarks/summarize.py --check  # exit 1 if it would change
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent
OUTPUT = REPO_ROOT / "BENCHMARKS.md"

HEADER = """# Benchmark summaries

Headline numbers distilled from the latest `benchmarks/results/BENCH_*.json`
runs (regenerate with `python benchmarks/summarize.py` after running the
benchmarks; CI uploads the full JSON files as artifacts). Numbers are
host-dependent — treat them as trajectory, not absolutes.
"""


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} µs"


def _walk(obj: dict, prefix: str = "") -> list[tuple[str, float]]:
    """Flatten nested dicts to ``dotted.path -> number`` pairs."""
    pairs: list[tuple[str, float]] = []
    for key, value in obj.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            pairs.extend(_walk(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            pairs.append((path, value))
    return pairs


def _headlines(name: str, data: dict) -> list[str]:
    """A few headline lines per benchmark; generic fallback otherwise."""
    if name == "BENCH_estimator_sweep":
        lines = [
            f"- serial sweep: {_fmt_seconds(data['serial_s'])}; "
            f"thread ×{data['workers']}: {_fmt_seconds(data['thread_s'])} "
            f"({data['thread_speedup']:.2f}× speedup)",
        ]
        if "process_s" in data:
            lines.append(
                f"- process ×{data['workers']}: {_fmt_seconds(data['process_s'])} "
                f"({data['process_speedup']:.2f}× speedup)"
            )
        lines.append(f"- results bit-identical across backends: {data['identical']}")
        return lines
    if name == "BENCH_distributed":
        return [
            f"- serial sweep: {_fmt_seconds(data['serial_s'])}; "
            f"distributed 1 worker: {_fmt_seconds(data['distributed_1w_s'])} "
            f"(wire overhead {data['overhead_1w']:+.1%})",
            f"- distributed 2 workers: {_fmt_seconds(data['distributed_2w_s'])} "
            f"({data['speedup_2w']:.2f}× vs serial on a "
            f"{data['cpu_count']}-CPU host)",
            f"- predictions bit-identical to serial: {data['identical']}",
        ]
    if name == "BENCH_kernels":
        lines = []
        for size, entry in data.items():
            speedup = entry.get("speedup", {}).get("combined")
            if speedup is not None:
                lines.append(
                    f"- {size}: vectorized pollute→detect→repair "
                    f"{speedup:.1f}× the reference kernels"
                )
        return lines
    if name == "BENCH_service_latency":
        idle = data.get("status_roundtrip_idle", {})
        busy = data.get("status_roundtrip_during_run", {})
        throughput = data.get("status_throughput", {})
        return [
            f"- status round-trip p50: {_fmt_seconds(idle['p50_s'])} idle, "
            f"{_fmt_seconds(busy['p50_s'])} during a run",
            f"- status throughput: {throughput['requests_per_s']:.0f} req/s "
            f"over {throughput['connections']} connections",
        ]
    if name == "BENCH_store":
        rehydrate = data.get("cold_rehydrate_s", {})
        return [
            f"- write-behind snapshot overhead: "
            f"{data['write_behind_overhead']:+.1%} per iteration "
            f"(inline writes: {data['inline_overhead']:+.1%})",
            f"- cold rehydration: {_fmt_seconds(rehydrate['best'])} for a "
            f"{data['checkpoint_bytes'] / 1024:.0f} KiB checkpoint; "
            f"flush drain {_fmt_seconds(data['flush_drain_s'])}",
        ]
    if name == "BENCH_cache":
        bounded = data.get("bounded_memory", {})
        cold = data.get("delta_reuse", {}).get("cold_sweep", {})
        return [
            f"- bounded memory: peak {bounded['peak_total_bytes'] / 1024:.0f} KiB "
            f"under a {bounded['budget_bytes'] / 1024:.0f} KiB budget "
            f"({bounded['evictions']} evictions; same workload unbounded: "
            f"{data['unbounded_reference_bytes'] / 1024:.0f} KiB)",
            f"- cold E1 sweep over fresh polluted states: "
            f"{cold['transform_hit_rate']:.0%} transform-layer hit rate "
            f"({cold['block_hits']} block hits, {cold['delta_hits']} delta patches)",
            f"- cached predictions bit-identical: "
            f"{data['delta_reuse']['identical_predictions']}",
        ]
    if name == "BENCH_frame_cow":
        token = data.get("signature_cost", {}).get("token", {})
        digest = data.get("signature_cost", {}).get("digest", {})
        lines = []
        if token and digest:
            lines.append(
                f"- signature cost on large frames: token "
                f"{_fmt_seconds(token['large_s'])} vs digest "
                f"{_fmt_seconds(digest['large_s'])}"
            )
        for key, entry in data.items():
            rate = entry.get("token", {}).get("fit_hit_rate")
            if rate is not None:
                lines.append(f"- {key}: fit-cache hit rate {rate:.0%}")
        return lines
    # Unknown benchmark: quote its first few numeric leaves verbatim.
    return [f"- {path}: {value:g}" for path, value in _walk(data)[:4]]


def render() -> str:
    sections = [HEADER]
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        data = json.loads(path.read_text())
        sections.append(f"\n## {path.stem}\n")
        workload = data.get("workload")
        if workload:
            sections.append(f"Workload: {workload}\n")
        sections.append("\n".join(_headlines(path.stem, data)) + "\n")
    return "".join(sections)


def main(argv: list[str]) -> int:
    text = render()
    if "--check" in argv:
        current = OUTPUT.read_text() if OUTPUT.exists() else ""
        if current != text:
            print("BENCHMARKS.md is stale; run: python benchmarks/summarize.py")
            return 1
        print("BENCHMARKS.md is up to date")
        return 0
    OUTPUT.write_text(text)
    print(f"wrote {OUTPUT} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
