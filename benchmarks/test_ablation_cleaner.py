"""Ablation: ground-truth Cleaner vs. automatic detect-and-impute Cleaner.

The paper simulates a perfect (expert) Cleaner with ground truth; §3 also
allows algorithm-based Cleaners. This bench runs the same COMET sessions
with both and reports the F1 each achieves — quantifying how much of
COMET's benefit survives imperfect, imputation-based repairs.
"""

import numpy as np
from _helpers import comparison_config, report

from repro.core import Comet, CometConfig
from repro.detect import AlgorithmicCleaner
from repro.experiments import build_polluted

_GRID = np.arange(0.0, 9.0)


def test_ablation_cleaner(benchmark):
    config = comparison_config("cmc", "lor", ("missing",), budget=8.0, n_rows=200)

    def run():
        rows = []
        for error in ("missing", "scaling"):
            cfg = comparison_config("cmc", "lor", (error,), budget=8.0, n_rows=200)
            polluted = build_polluted(cfg, seed=0)
            for name, cleaner in (
                ("ground-truth", None),
                ("algorithmic", AlgorithmicCleaner(step=cfg.step, rng=0)),
            ):
                comet = Comet(
                    polluted,
                    algorithm="lor",
                    error_types=[error],
                    budget=cfg.budget,
                    config=CometConfig(step=cfg.step),
                    rng=0,
                    cleaner=cleaner,
                )
                trace = comet.run()
                rows.append((error, name, trace.initial_f1, trace.final_f1))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{error:8s} {name:12s} F1 {before:.4f} -> {after:.4f} ({after - before:+.4f})"
        for error, name, before, after in rows
    ]
    report("ablation_cleaner", "Ablation: ground-truth vs algorithmic Cleaner", lines)
    # Both cleaners must produce valid runs; the automatic one should
    # recover a nontrivial share of the expert gain on detectable errors.
    assert all(np.isfinite(after) for *__, after in rows)
