"""Ablation: sensitivity of COMET to the Estimator's probing effort —
number of pollution steps and sampled cell combinations (DESIGN.md §5).

More probing means better estimates but more model fits per iteration;
this bench reports the quality/runtime trade-off.
"""

import time

import numpy as np
from _helpers import comparison_config, report

from repro.core import CometConfig
from repro.experiments import build_polluted, run_method

_GRID = np.arange(0.0, 9.0)


def test_ablation_pollution(benchmark):
    config = comparison_config("cmc", "lor", ("missing",), budget=8.0, n_rows=200)

    def run():
        polluted = build_polluted(config, seed=0)
        rows = []
        for n_steps, n_combinations in [(1, 1), (2, 1), (3, 1), (2, 2)]:
            config.comet_config = CometConfig(
                step=config.step,
                n_pollution_steps=n_steps,
                n_combinations=n_combinations,
            )
            start = time.perf_counter()
            trace = run_method("comet", polluted, config, rng=0)
            elapsed = time.perf_counter() - start
            rows.append((n_steps, n_combinations, trace.f1_at(_GRID).mean(), elapsed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"steps={s} combos={c}: mean-F1={f1:.4f} runtime={t:6.2f}s"
        for s, c, f1, t in rows
    ]
    report("ablation_pollution", "Ablation: pollution probing effort", lines)
    # More probing must cost more runtime (sanity of the trade-off axis).
    assert rows[3][3] > rows[0][3] * 0.8
    assert all(np.isfinite(r[2]) for r in rows)
