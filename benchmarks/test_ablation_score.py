"""Ablations of the Recommender's design choices (DESIGN.md §5).

(1) the uncertainty term in Eq. 4 — ``(gain − U)/C`` vs ``gain/C``;
(2) the revert-on-decrease strategy with the cleaning buffer.

Reported as final-F1 and mean-F1 per variant on the same pre-pollution
settings; the full COMET configuration should be at least competitive with
each ablated variant.
"""

import numpy as np
from _helpers import comparison_config, report

from repro.core import CometConfig
from repro.experiments import average_curve, build_polluted, run_method

_GRID = np.arange(0.0, 11.0)


def _variant_curve(polluted, config, comet_config):
    config.comet_config = comet_config
    traces = [run_method("comet", polluted, config, rng=r) for r in range(2)]
    return average_curve(traces, _GRID)


def test_ablation_score(benchmark):
    config = comparison_config("cmc", "svm", ("missing",), budget=10.0, n_rows=200)

    def run():
        curves = {}
        for seed in (0, 1):
            polluted = build_polluted(config, seed=seed)
            variants = {
                "full": CometConfig(step=config.step),
                "no-uncertainty": CometConfig(step=config.step, use_uncertainty=False),
                "no-revert": CometConfig(step=config.step, revert_on_decrease=False),
                "no-adjustment": CometConfig(step=config.step, adjust_predictions=False),
            }
            for name, comet_config in variants.items():
                curve = _variant_curve(polluted, config, comet_config)
                curves.setdefault(name, []).append(curve)
        return {name: np.mean(cs, axis=0) for name, cs in curves.items()}

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:16s} mean={curve.mean():+.4f} final={curve[-1]:+.4f}"
        for name, curve in curves.items()
    ]
    report("ablation_score", "Ablation: Recommender design choices", lines)
    # The full configuration must not be badly dominated by any ablation.
    full = curves["full"].mean()
    for name, curve in curves.items():
        assert full > curve.mean() - 0.05, f"full COMET dominated by {name}"
