"""Micro-benchmark: one Estimator E1 sweep on the distributed backend.

Times the same ``estimate_many`` candidate sweep as
``test_runtime_backends.py`` on the serial backend and on a 2-worker
local-loopback :class:`~repro.runtime.DistributedBackend` (auto-spawned
``repro worker`` subprocesses speaking the JSON-lines protocol),
verifies the predictions are bit-identical, and writes
``benchmarks/results/BENCH_distributed.json``.

Two topology-appropriate assertions, matching the acceptance criteria:
on a host with ≥2 CPUs the 2-worker sweep must be ≥1.5× serial; on a
1-CPU host real parallel speedup is impossible, so instead the wire
protocol must cost ≤35% over serial at ``workers=1`` — i.e. shipping
pickled fit-score tasks over loopback sockets stays cheap relative to
the fits themselves. The sweep itself is ~0.5 s, so the 1-CPU margin is
tens of milliseconds of absolute budget; it is deliberately loose
enough to survive scheduler noise on a shared single core (typical
measured overhead is ~4-10%) while still catching a wire-protocol
regression that doubles the round-trip cost.
"""

import json
import os
import time

import numpy as np
from _helpers import RESULTS_DIR

from repro.core import CometConfig, CometEstimator
from repro.datasets import load_dataset, pollute
from repro.errors import MissingValues
from repro.ml import clear_fit_cache, make_classifier
from repro.runtime import DistributedBackend, SerialBackend


def _sweep(backend, polluted, candidates):
    """One full E1+E2 candidate sweep on ``backend``; returns predictions.

    MLP learner for the same reason as the backend bench: per-fit cost
    (~40 ms) dominates dispatch, so the numbers measure the topology,
    not pool mechanics.
    """
    estimator = CometEstimator(
        make_classifier("mlp"),
        label="label",
        config=CometConfig(step=0.04, n_pollution_steps=2, n_combinations=2),
        rng=5,
    )
    return estimator.estimate_many(polluted.train, polluted.test, candidates, 0.8, backend=backend)


def _timed(backend, polluted, candidates, repeats=5):
    """Best-of-``repeats`` wall clock for one sweep, plus the predictions.

    The first repeat warms the featurization memo (and, for the
    distributed backend, amortizes worker registration); best-of then
    measures the steady state every topology reaches in a real session.
    """
    best = float("inf")
    predictions = None
    clear_fit_cache()
    with backend:
        for __ in range(repeats):
            start = time.perf_counter()
            predictions = _sweep(backend, polluted, candidates)
            best = min(best, time.perf_counter() - start)
    return best, predictions


def test_estimator_sweep_distributed(benchmark):
    dataset = load_dataset("eeg", n_rows=240, rng=0)
    polluted = pollute(dataset, error_types=["missing"], rng=1)
    candidates = [(f, MissingValues()) for f in polluted.feature_names[:6]]
    n_tasks = len(candidates) * 2 * 2  # candidates × combinations × steps
    multi_cpu = (os.cpu_count() or 1) >= 2

    def run():
        serial_s, serial_preds = _timed(SerialBackend(), polluted, candidates)
        # jobs=1: one remote worker — isolates pure wire/pickle overhead.
        one_s, one_preds = _timed(
            DistributedBackend(1), polluted, candidates
        )
        two_s, two_preds = _timed(
            DistributedBackend(2), polluted, candidates
        )
        results = {
            "workload": "estimate_many: 6 candidates x 2 combinations x 2 steps (eeg/mlp)",
            "n_tasks": n_tasks,
            "topology": "loopback listener + auto-spawned `repro worker` subprocesses",
            "cpu_count": os.cpu_count(),
            "serial_s": serial_s,
            "distributed_1w_s": one_s,
            "distributed_2w_s": two_s,
            "overhead_1w": one_s / serial_s - 1.0,
            "speedup_2w": serial_s / two_s,
            "identical": all(
                s.predicted_f1 == a.predicted_f1 == b.predicted_f1
                and np.array_equal(s.scores, a.scores)
                and np.array_equal(s.scores, b.scores)
                for s, a, b in zip(serial_preds, one_preds, two_preds)
            ),
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_distributed.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    print(f"\n{json.dumps(results, indent=2)}")

    assert results["identical"], "distributed sweep diverged from serial"
    if multi_cpu:
        assert results["speedup_2w"] >= 1.5, (
            f"2-worker distributed sweep only {results['speedup_2w']:.2f}x "
            f"serial on a {os.cpu_count()}-CPU host"
        )
    else:
        assert results["overhead_1w"] <= 0.35, (
            f"loopback wire overhead {results['overhead_1w']:.1%} at "
            "workers=1 exceeds the 35% budget"
        )
