"""Figure 3: COMET vs FIR/RR/CL for SVM, multiple error types and diverse
cost functions, on the four pre-polluted datasets.

Shape claims checked: COMET's mean advantage over FIR and RR is positive
across the budget range (the paper reports up to ~11 %pt on CMC and
consistent superiority; S-Credit margins are smaller).
"""

import numpy as np
import pytest
from _helpers import PREPOLLUTED_DATASETS, advantage_lines, applicable_errors, comparison_config, report


@pytest.mark.parametrize("dataset", PREPOLLUTED_DATASETS)
def test_fig03(benchmark, dataset):
    config = comparison_config(
        dataset, "svm", applicable_errors(dataset), cost_model="paper"
    )

    def run():
        return advantage_lines(config, methods=("fir", "rr", "cl"), n_settings=2)

    lines, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig03_{dataset}", f"Figure 3 ({dataset}): COMET vs FIR/RR/CL, SVM, multi-error", lines)
    # Soft shape check: COMET should not be dominated by the naive
    # baselines on average over the budget range.
    mean_adv = np.mean([data["curves"]["fir"].mean(), data["curves"]["rr"].mean()])
    assert mean_adv > -0.02
