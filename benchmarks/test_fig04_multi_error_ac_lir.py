"""Figure 4: COMET vs ActiveClean for LIR, multiple error types and diverse
cost functions, on the four pre-polluted datasets.

Shape claims checked: COMET dominates AC with large margins (the paper
reports ~20 %pt typical, up to ~50 %pt on Churn).
"""

import numpy as np
import pytest
from _helpers import PREPOLLUTED_DATASETS, advantage_lines, applicable_errors, comparison_config, report


@pytest.mark.parametrize("dataset", PREPOLLUTED_DATASETS)
def test_fig04(benchmark, dataset):
    config = comparison_config(
        dataset, "lir", applicable_errors(dataset), cost_model="paper"
    )

    def run():
        return advantage_lines(config, methods=("ac",), n_settings=2)

    lines, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig04_{dataset}", f"Figure 4 ({dataset}): COMET vs AC, LIR, multi-error", lines)
    # COMET should clearly beat ActiveClean on average.
    assert data["curves"]["ac"].mean() > 0.0
