"""Figure 5: COMET vs FIR/RR/CL for MLP, one error type at a time, constant
costs, on the four pre-polluted datasets.

The paper notes MLP is COMET's weakest algorithm, so this grid is its
worst-case comparison; advantages are smaller but still mostly positive.
EEG skips categorical shift (numeric-only data).
"""

import numpy as np
import pytest
from _helpers import (
    PREPOLLUTED_DATASETS,
    advantage_lines,
    applicable_errors,
    comparison_config,
    report,
)


@pytest.mark.parametrize("dataset", PREPOLLUTED_DATASETS)
def test_fig05(benchmark, dataset):
    def run():
        all_lines = []
        means = []
        for error in applicable_errors(dataset):
            config = comparison_config(
                dataset, "mlp", (error,), budget=10.0, n_rows=200
            )
            lines, data = advantage_lines(
                config, methods=("fir", "rr", "cl"), n_settings=1,
                grid=np.arange(0.0, 11.0),
            )
            all_lines.append(f"[{error}]")
            all_lines.extend(lines)
            means.append(np.mean([c.mean() for c in data["curves"].values()]))
        return all_lines, means

    lines, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig05_{dataset}", f"Figure 5 ({dataset}): COMET vs FIR/RR/CL, MLP, single error", lines)
    # Worst-case algorithm: demand only that COMET is not badly dominated.
    assert np.mean(means) > -0.05
