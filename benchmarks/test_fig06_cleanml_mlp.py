"""Figure 6: COMET vs FIR/RR/CL for MLP on the CleanML datasets
(Airbnb/scaling, Credit/scaling, Titanic/missing values)."""

import numpy as np
import pytest
from _helpers import CLEANML_CASES, advantage_lines, comparison_config, report


@pytest.mark.parametrize("dataset,error", CLEANML_CASES)
def test_fig06(benchmark, dataset, error):
    config = comparison_config(
        dataset, "mlp", (error,), cleanml=True, budget=10.0, n_rows=200
    )

    def run():
        return advantage_lines(
            config, methods=("fir", "rr", "cl"), n_settings=1,
            grid=np.arange(0.0, 11.0),
        )

    lines, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"fig06_{dataset}",
        f"Figure 6 ({dataset} - {error}): COMET vs FIR/RR/CL, MLP, CleanML",
        lines,
    )
    assert all(np.isfinite(c).all() for c in data["curves"].values())
