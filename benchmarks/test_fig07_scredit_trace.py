"""Figure 7: the cleaning-trace example — S-Credit, categorical shift, MLP.

Plots (as text series) the absolute F1 per budget for COMET, FIR, RR, CL,
the Oracle, and the fully-cleaned reference line, for one pre-pollution
setting. Shape claims: the Oracle tracks at or near the top; COMET stays in
the upper group; the fully-cleaned line is a horizontal reference that
strategic cleaning can temporarily exceed.
"""

import numpy as np
from _helpers import STEP, comparison_config, report

from repro.experiments import average_curve, build_polluted, format_series, run_method
from repro.ml import TabularModel, make_classifier


def test_fig07(benchmark):
    config = comparison_config("s-credit", "mlp", ("categorical",), budget=10.0, n_rows=200)
    grid = np.arange(0.0, 11.0)

    def run():
        polluted = build_polluted(config, seed=3)
        curves = {}
        for method in ("comet", "fir", "rr", "cl", "oracle"):
            trace = run_method(method, polluted, config, rng=0)
            curves[method] = trace.f1_at(grid)
        # "Cleaned" line: F1 with the ground-truth clean data.
        model = TabularModel(make_classifier("mlp"), label=polluted.label)
        cleaned_f1 = model.fit_score(polluted.clean_train, polluted.clean_test)
        return curves, cleaned_f1

    curves, cleaned_f1 = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        format_series(method.upper(), grid, series, every=2)
        for method, series in curves.items()
    ]
    lines.append(f"{'CLEANED':<28s} constant {cleaned_f1:+.3f}")
    report("fig07", "Figure 7: S-Credit trace, categorical shift, MLP", lines)
    # The Oracle's endpoint should be at least roughly as good as random's.
    assert curves["oracle"][-1] >= curves["rr"][-1] - 0.05
