"""Figure 8: COMET vs ActiveClean (AC-SVM) per error type, constant costs,
four pre-polluted datasets.

Shape claims: COMET generally outperforms AC; AC's curves are erratic
(large step-to-step swings), the consequence of its SGD updates.
"""

import numpy as np
import pytest
from _helpers import (
    PREPOLLUTED_DATASETS,
    advantage_lines,
    applicable_errors,
    comparison_config,
    report,
)


@pytest.mark.parametrize("dataset", PREPOLLUTED_DATASETS)
def test_fig08(benchmark, dataset):
    def run():
        all_lines = []
        means = []
        for error in applicable_errors(dataset):
            config = comparison_config(dataset, "ac_svm", (error,))
            lines, data = advantage_lines(config, methods=("ac",), n_settings=1)
            all_lines.append(f"[{error}]")
            all_lines.extend(lines)
            means.append(data["curves"]["ac"].mean())
        return all_lines, means

    lines, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig08_{dataset}", f"Figure 8 ({dataset}): COMET vs AC, AC-SVM, single error", lines)
    assert np.mean(means) > -0.05
