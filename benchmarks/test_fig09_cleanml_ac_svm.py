"""Figure 9: COMET vs ActiveClean (AC-SVM) on the CleanML datasets."""

import numpy as np
import pytest
from _helpers import CLEANML_CASES, advantage_lines, comparison_config, report


@pytest.mark.parametrize("dataset,error", CLEANML_CASES)
def test_fig09(benchmark, dataset, error):
    config = comparison_config(dataset, "ac_svm", (error,), cleanml=True)

    def run():
        return advantage_lines(config, methods=("ac",), n_settings=1)

    lines, data = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"fig09_{dataset}",
        f"Figure 9 ({dataset} - {error}): COMET vs AC, AC-SVM, CleanML",
        lines,
    )
    assert np.isfinite(data["curves"]["ac"]).all()
