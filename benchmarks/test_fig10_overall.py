"""Figure 10: overall performance of COMET.

(a) mean F1 advantage grouped by ML algorithm — GB/KNN/MLP/SVM against
FIR+RR+CL, and AC-SVM/LIR/LOR against AC;
(b) mean F1 advantage grouped by error type (single-error scenario).

Shape claims: the advantage over AC (tens of points, LIR largest) clearly
exceeds the advantage over FIR/RR/CL (a few points); categorical shift and
missing values give larger advantages than Gaussian noise and scaling.
"""

import numpy as np
from _helpers import applicable_errors, comparison_config, report, results_grid

from repro.experiments import (
    advantage_by_algorithm,
    advantage_by_error_type,
)

_CLASSIC = ("gb", "knn", "mlp", "svm")
_CONVEX = ("ac_svm", "lir", "lor")


def _runs():
    """A reduced grid: every algorithm on CMC, every error type on EEG+CMC.

    Each group's configurations go through one ``run_configurations``
    fan-out (the PR 2 backend wiring), which parallelizes the grid while
    returning exactly what the historical per-config loop returned.
    """
    runs = []
    # (a) by algorithm — missing values on CMC.
    classic_configs = [
        comparison_config("cmc", algorithm, ("missing",), budget=8.0, n_rows=200)
        for algorithm in _CLASSIC
    ]
    for algorithm, config, results in zip(
        _CLASSIC,
        classic_configs,
        results_grid(classic_configs, methods=("comet", "fir", "rr", "cl")),
    ):
        runs.append(
            {"algorithm": algorithm, "error_type": "missing", "budget": config.budget,
             "comet": results["comet"],
             "baselines": {m: results[m] for m in ("fir", "rr", "cl")}}
        )
    convex_configs = [
        comparison_config("cmc", algorithm, ("missing",), budget=8.0, n_rows=200)
        for algorithm in _CONVEX
    ]
    for algorithm, config, results in zip(
        _CONVEX, convex_configs, results_grid(convex_configs, methods=("comet", "ac"))
    ):
        runs.append(
            {"algorithm": algorithm, "error_type": "missing", "budget": config.budget,
             "comet": results["comet"], "baselines": {"ac": results["ac"]}}
        )
    # (b) by error type — SVM on CMC across all four error types.
    errors = applicable_errors("cmc")
    error_configs = [
        comparison_config("cmc", "svm", (error,), budget=8.0, n_rows=200)
        for error in errors
    ]
    for error, config, results in zip(
        errors,
        error_configs,
        results_grid(error_configs, methods=("comet", "fir", "rr", "cl"), seed=1),
    ):
        runs.append(
            {"algorithm": "svm", "error_type": error, "budget": config.budget,
             "comet": results["comet"],
             "baselines": {m: results[m] for m in ("fir", "rr", "cl")}}
        )
    return runs


def test_fig10(benchmark):
    runs = benchmark.pedantic(_runs, rounds=1, iterations=1)
    by_algorithm = advantage_by_algorithm(runs[: len(_CLASSIC) + len(_CONVEX)])
    by_error = advantage_by_error_type(runs[len(_CLASSIC) + len(_CONVEX):])
    lines = ["(a) grouped by ML algorithm"]
    lines += [f"  {alg:8s} {adv:+.4f}" for alg, adv in by_algorithm.items()]
    lines += ["(b) grouped by error type"]
    lines += [f"  {err:12s} {adv:+.4f}" for err, adv in by_error.items()]
    report("fig10", "Figure 10: overall performance of COMET", lines)
    # The AC-side advantage should exceed the FIR/RR/CL-side advantage.
    ac_side = np.mean([by_algorithm[a] for a in _CONVEX])
    classic_side = np.mean([by_algorithm[a] for a in _CLASSIC])
    assert ac_side > classic_side
