"""Figure 11: MAE of COMET's Estimator predictions, grouped by error type
and ML algorithm.

Shape claims: the MAE stays small (the paper reports 0.0007–0.05 across
its grid), i.e. the Bayesian regression's one-step-ahead F1 predictions
track the realized F1.
"""

import numpy as np
from _helpers import comparison_config, report

from repro.experiments import estimator_mae, run_configuration

_GRID = [
    ("missing", "svm"),
    ("missing", "knn"),
    ("missing", "gb"),
    ("noise", "svm"),
    ("categorical", "svm"),
    ("scaling", "svm"),
]


def test_fig11(benchmark):
    def run():
        cells = []
        for error, algorithm in _GRID:
            config = comparison_config("cmc", algorithm, (error,), budget=8.0, n_rows=200)
            results = run_configuration(config, methods=("comet",), n_settings=1)
            cells.append((error, algorithm, estimator_mae(results["comet"])))
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{error:12s} {algorithm:6s} MAE={mae:.4f}" for error, algorithm, mae in cells]
    report("fig11", "Figure 11: MAE of COMET's predictions", lines)
    maes = [mae for __, __, mae in cells if np.isfinite(mae)]
    assert maes, "at least one configuration must produce predictions"
    # Laptop-scale models are noisier than the paper's tuned cluster runs;
    # the predictions must still land within a few F1 points.
    assert np.mean(maes) < 0.10
