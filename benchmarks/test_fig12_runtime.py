"""Figure 12: COMET's first-iteration recommendation runtime per ML
algorithm and error type.

Shape claims (relative, not absolute — the paper ran a Slurm cluster):
runtimes scale with the candidate sweep, and categorical-shift/missing
settings on categorical-heavy data cost more than noise/scaling on the
same data because one-hot encoding widens the model input.
"""

import numpy as np
from _helpers import comparison_config, report

from repro.experiments import first_iteration_runtime

_ALGORITHMS = ("gb", "knn", "mlp", "svm", "lir", "lor")
_ERRORS = ("categorical", "noise", "missing", "scaling")


def test_fig12(benchmark):
    def run():
        cells = {}
        for algorithm in _ALGORITHMS:
            for error in _ERRORS:
                config = comparison_config(
                    "cmc", algorithm, (error,), budget=2.0, n_rows=200
                )
                cells[(algorithm, error)] = first_iteration_runtime(config)
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{algorithm:6s} {error:12s} {seconds:8.3f}s"
        for (algorithm, error), seconds in cells.items()
    ]
    report("fig12", "Figure 12: COMET first-iteration runtimes", lines)
    assert all(s > 0 for s in cells.values())
    # KNN/linear models should be far cheaper than the MLP sweep.
    assert np.mean([cells[("knn", e)] for e in _ERRORS]) < np.mean(
        [cells[("mlp", e)] for e in _ERRORS]
    ) * 5
