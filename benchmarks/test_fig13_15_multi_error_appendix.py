"""Figures 13–15 (appendix): the Figure 3 comparison repeated for MLP,
KNN, and GB — COMET vs FIR/RR/CL, multiple error types, diverse costs.

To bound laptop runtime, each algorithm runs on two of the four
pre-polluted datasets (CMC and EEG); the reduced grid is recorded in
EXPERIMENTS.md.
"""

import numpy as np
import pytest
from _helpers import advantage_lines, applicable_errors, comparison_config, report

_FIGURES = {"mlp": "fig13", "knn": "fig14", "gb": "fig15"}


@pytest.mark.parametrize("algorithm", ["mlp", "knn", "gb"])
def test_fig13_15(benchmark, algorithm):
    def run():
        all_lines = []
        means = []
        for dataset in ("cmc", "eeg"):
            config = comparison_config(
                dataset, algorithm, applicable_errors(dataset),
                cost_model="paper", budget=10.0, n_rows=200,
            )
            lines, data = advantage_lines(
                config, methods=("fir", "rr", "cl"), n_settings=1,
                grid=np.arange(0.0, 11.0),
            )
            all_lines.extend(lines)
            means.append(np.mean([c.mean() for c in data["curves"].values()]))
        return all_lines, means

    lines, means = benchmark.pedantic(run, rounds=1, iterations=1)
    figure = _FIGURES[algorithm]
    report(figure, f"Figures 13-15 ({algorithm}): COMET vs FIR/RR/CL, multi-error", lines)
    assert np.mean(means) > -0.05
