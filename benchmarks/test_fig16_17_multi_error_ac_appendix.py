"""Figures 16–17 (appendix): the Figure 4 comparison repeated for LOR and
AC-SVM — COMET vs ActiveClean, multiple error types, diverse costs.

Reduced grid: CMC and EEG (see EXPERIMENTS.md).
"""

import numpy as np
import pytest
from _helpers import advantage_lines, applicable_errors, comparison_config, report

_FIGURES = {"lor": "fig16", "ac_svm": "fig17"}


@pytest.mark.parametrize("algorithm", ["lor", "ac_svm"])
def test_fig16_17(benchmark, algorithm):
    def run():
        all_lines = []
        means = []
        for dataset in ("cmc", "eeg"):
            config = comparison_config(
                dataset, algorithm, applicable_errors(dataset),
                cost_model="paper", budget=10.0, n_rows=200,
            )
            lines, data = advantage_lines(
                config, methods=("ac",), n_settings=1, grid=np.arange(0.0, 11.0)
            )
            all_lines.extend(lines)
            means.append(data["curves"]["ac"].mean())
        return all_lines, means

    lines, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        _FIGURES[algorithm],
        f"Figures 16-17 ({algorithm}): COMET vs AC, multi-error",
        lines,
    )
    # COMET should beat ActiveClean on average across the reduced grid.
    assert np.mean(means) > -0.02
