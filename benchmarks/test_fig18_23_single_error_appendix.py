"""Figures 18–23 (appendix): the Figure 5/6 single-error comparison
repeated for GB, KNN, and SVM, including one CleanML case per algorithm.

Reduced grid: CMC (all applicable error types) + CleanML Titanic/missing
per algorithm (see EXPERIMENTS.md).
"""

import numpy as np
import pytest
from _helpers import advantage_lines, applicable_errors, comparison_config, report

_FIGURES = {"gb": "fig18_19", "knn": "fig20_21", "svm": "fig22_23"}


@pytest.mark.parametrize("algorithm", ["gb", "knn", "svm"])
def test_fig18_23(benchmark, algorithm):
    def run():
        all_lines = []
        means = []
        grid = np.arange(0.0, 11.0)
        for error in applicable_errors("cmc"):
            config = comparison_config("cmc", algorithm, (error,), budget=10.0, n_rows=200)
            lines, data = advantage_lines(
                config, methods=("fir", "rr", "cl"), n_settings=1, grid=grid
            )
            all_lines.append(f"[cmc/{error}]")
            all_lines.extend(lines)
            means.append(np.mean([c.mean() for c in data["curves"].values()]))
        config = comparison_config(
            "titanic", algorithm, ("missing",), cleanml=True, budget=10.0, n_rows=200
        )
        lines, data = advantage_lines(
            config, methods=("fir", "rr", "cl"), n_settings=1, grid=grid
        )
        all_lines.append("[cleanml titanic/missing]")
        all_lines.extend(lines)
        means.append(np.mean([c.mean() for c in data["curves"].values()]))
        return all_lines, means

    lines, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        _FIGURES[algorithm],
        f"Figures 18-23 ({algorithm}): COMET vs FIR/RR/CL, single error",
        lines,
    )
    assert np.mean(means) > -0.05
