"""Figures 24–27 (appendix): the Figure 8/9 AC comparison repeated for LIR
and LOR, including one CleanML case per algorithm.

Reduced grid: CMC (all applicable error types) + CleanML Credit/scaling
(see EXPERIMENTS.md).
"""

import numpy as np
import pytest
from _helpers import advantage_lines, applicable_errors, comparison_config, report

_FIGURES = {"lir": "fig24_25", "lor": "fig26_27"}


@pytest.mark.parametrize("algorithm", ["lir", "lor"])
def test_fig24_27(benchmark, algorithm):
    def run():
        all_lines = []
        means = []
        grid = np.arange(0.0, 11.0)
        for error in applicable_errors("cmc"):
            config = comparison_config("cmc", algorithm, (error,), budget=10.0, n_rows=200)
            lines, data = advantage_lines(config, methods=("ac",), n_settings=1, grid=grid)
            all_lines.append(f"[cmc/{error}]")
            all_lines.extend(lines)
            means.append(data["curves"]["ac"].mean())
        config = comparison_config(
            "credit", algorithm, ("scaling",), cleanml=True, budget=10.0, n_rows=200
        )
        lines, data = advantage_lines(config, methods=("ac",), n_settings=1, grid=grid)
        all_lines.append("[cleanml credit/scaling]")
        all_lines.extend(lines)
        means.append(data["curves"]["ac"].mean())
        return all_lines, means

    lines, means = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        _FIGURES[algorithm],
        f"Figures 24-27 ({algorithm}): COMET vs AC, single error",
        lines,
    )
    assert np.mean(means) > -0.02
