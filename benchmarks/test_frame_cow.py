"""Micro-benchmark: the COW frame layer's O(1) signatures and cache wins.

Three measurements, written to ``benchmarks/results/BENCH_frame_cow.json``:

1. *Signature cost vs column length* — a token signature must cost the
   same at 2k and 200k rows (it is an identity read), while the digest
   baseline re-hashes the column bytes and scales linearly.
2. *E1 sweep hit rate on CleanML* — one cold ``estimate_many`` sweep over
   the polluted Titanic frame, token signatures vs the digest baseline.
   Tokens must win measurably: the sweep's states share every untouched
   column, and only tokens let categorical columns participate.
3. *Repeated fit over an unchanged frame* — the transformed-matrix memo
   must make repeat featurization disappear (the repeated-retraining
   access pattern of concurrent sessions).
"""

import json
import timeit

import numpy as np
from _helpers import RESULTS_DIR

from repro.core import CometConfig, CometEstimator
from repro.datasets import load_cleanml
from repro.errors import MissingValues
from repro.frame import Column
from repro.ml import TabularModel, clear_fit_cache, fit_cache_stats, make_classifier
from repro.ml.preprocessing import _column_signature, signature_mode

SMALL_ROWS, LARGE_ROWS = 2_000, 200_000


def _best_call_s(fn, number=200, repeat=5):
    """Per-call seconds, best of ``repeat`` timed loops (noise floor)."""
    return min(timeit.repeat(fn, number=number, repeat=repeat)) / number


def _signature_costs():
    rng = np.random.default_rng(0)
    small = Column("x", rng.normal(size=SMALL_ROWS))
    large = Column("x", rng.normal(size=LARGE_ROWS))
    out = {}
    for mode in ("token", "digest"):
        with signature_mode(mode):
            small_s = _best_call_s(lambda: _column_signature(small))
            large_s = _best_call_s(lambda: _column_signature(large))
        out[mode] = {
            "small_s": small_s,
            "large_s": large_s,
            "large_over_small": large_s / small_s,
        }
    return out


def _e1_sweep_rates():
    polluted = load_cleanml("titanic", n_rows=160, rng=0)
    candidates = [(f, MissingValues()) for f in polluted.feature_names]
    out = {}
    for mode in ("token", "digest"):
        with signature_mode(mode):  # clears caches on entry and exit
            estimator = CometEstimator(
                make_classifier("lor"),
                label=polluted.label,
                config=CometConfig(step=0.04, n_pollution_steps=2, n_combinations=1),
                rng=5,
            )
            predictions = estimator.estimate_many(
                polluted.train, polluted.test, candidates, 0.8
            )
            stats = fit_cache_stats()
        lookups = stats["hits"] + stats["misses"]
        out[mode] = {
            **stats,
            "fit_hit_rate": stats["hits"] / lookups if lookups else 0.0,
            "final_predictions": [p.predicted_f1 for p in predictions],
        }
    return out


def _repeated_fit(repeats=5):
    polluted = load_cleanml("titanic", n_rows=160, rng=0)
    out = {}
    for mode in ("token", "digest"):
        with signature_mode(mode):
            model = TabularModel(make_classifier("lor"), label=polluted.label)
            start = timeit.default_timer()
            scores = [
                model.fit_score(polluted.train, polluted.test) for __ in range(repeats)
            ]
            elapsed = timeit.default_timer() - start
            stats = fit_cache_stats()
        out[mode] = {
            "repeats": repeats,
            "total_s": elapsed,
            "transform_hits": stats["transform_hits"],
            "transform_misses": stats["transform_misses"],
            "scores_identical": len(set(scores)) == 1,
        }
    return out


def test_frame_cow(benchmark):
    def run():
        clear_fit_cache()
        return {
            "signature_cost": _signature_costs(),
            "e1_sweep_cleanml_titanic": _e1_sweep_rates(),
            "repeated_fit_score": _repeated_fit(),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_frame_cow.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    print(f"\n{json.dumps(results, indent=2)}")

    signature = results["signature_cost"]
    # Token signatures are O(1): 100x more rows must not change the cost
    # class (loose factor for timer noise on shared runners), and at
    # large n they must beat the digest by a wide margin.
    assert signature["token"]["large_over_small"] < 10.0
    assert signature["digest"]["large_s"] > signature["token"]["large_s"] * 5.0

    sweep = results["e1_sweep_cleanml_titanic"]
    # Caching must never change results...
    assert sweep["token"]["final_predictions"] == sweep["digest"]["final_predictions"]
    # ...and the token layer must not lose the hit-rate comparison. (The
    # digest baseline now caches categorical columns too — by content
    # digest, so its *rate* rivals tokens; the token win is the O(1)
    # signature cost asserted above plus the layers digest mode lacks,
    # asserted below.)
    assert sweep["token"]["fit_hit_rate"] >= sweep["digest"]["fit_hit_rate"] - 0.05
    assert sweep["token"]["fit_hit_rate"] > 0.5
    # The shared-cache block layer pays on *fresh* polluted states —
    # reuse below the whole-matrix level that digest mode never gets.
    assert sweep["token"]["block_hits"] > 0
    assert sweep["digest"]["block_hits"] == 0

    repeated = results["repeated_fit_score"]
    assert repeated["token"]["scores_identical"]
    # Four of five repeats skip featurization entirely under tokens; the
    # digest baseline has no transformed-matrix memo at all.
    assert repeated["token"]["transform_hits"] >= 8  # train+test, 4 repeats
    assert repeated["digest"]["transform_hits"] == 0
