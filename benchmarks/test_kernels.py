"""Micro-benchmark: vectorized columnar kernels vs the reference kernels.

Times the pollute → detect → repair hot path at 2k and 200k rows under
both kernel modes and writes ``benchmarks/results/BENCH_kernels.json``.
The equivalence suite (``tests/test_kernels_equivalence.py``) proves the
two modes bit-identical; this benchmark proves the rewrite is *worth it*:
the combined per-iteration cost at 200k rows must drop at least 5×.

Three phases, mirroring one COMET iteration's inner work:

* *pollute* — all five injectors corrupting one step's worth (1 %) of
  cells, timed per ``corrupt`` call;
* *detect* — the four detectors, including FD discovery from a cold
  pair-stats cache (the reference path is the original zip-loop code);
* *repair* — mean/median/mode/conditional-mode imputation over one
  step's worth of flagged cells.

A fourth section measures the token-keyed FD pair-stats cache: a warm
``discover_fds`` sweep must be far cheaper than a cold one.
"""

import json
import timeit

import numpy as np
from _helpers import RESULTS_DIR

from repro.detect import (
    CategoricalShiftDetector,
    ConditionalModeRepairer,
    MeanRepairer,
    MedianRepairer,
    MissingValueDetector,
    ModeRepairer,
    NoiseDetector,
    ScalingDetector,
    clear_fd_cache,
    discover_fds,
    fd_cache_stats,
)
from repro.errors import (
    CategoricalShift,
    GaussianNoise,
    InconsistentRepresentation,
    MissingValues,
    Scaling,
)
from repro.frame import DataFrame
from repro.kernels import use_kernels

SMALL_ROWS, LARGE_ROWS = 2_000, 200_000


def _build_frame(n_rows: int) -> DataFrame:
    """A frame shaped like a polluted dataset mid-session: an FD-bearing
    categorical pair with shift/missing damage and a numeric column with
    scaling outliers, noise, and missing cells."""
    rng = np.random.default_rng(0)
    group = rng.choice([f"g{i}" for i in range(8)], n_rows).astype(object)
    dep = np.array(["d_" + g for g in group], dtype=object)
    dep[rng.choice(n_rows, n_rows // 50, replace=False)] = "d_g0"
    dep[rng.choice(n_rows, n_rows // 100, replace=False)] = None
    num = rng.normal(40.0, 4.0, n_rows)
    num[rng.choice(n_rows, n_rows // 50, replace=False)] *= 100.0
    num[rng.choice(n_rows, n_rows // 100, replace=False)] = np.nan
    return DataFrame({"dep": dep, "group": group, "num": num})


def _best_call_s(fn, number, repeat=3):
    """Per-call seconds, best of ``repeat`` timed loops (noise floor)."""
    return min(timeit.repeat(fn, number=number, repeat=repeat)) / number


def _measure_mode(mode: str, n_rows: int) -> dict:
    frame = _build_frame(n_rows)
    n_cells = max(1, n_rows // 100)
    pick = np.random.default_rng(42)
    rows = np.sort(pick.choice(n_rows, n_cells, replace=False))
    number = 10 if n_rows <= SMALL_ROWS else 1

    injectors = [
        (MissingValues(), "num"),
        (GaussianNoise(), "num"),
        (Scaling(), "num"),
        (CategoricalShift(), "dep"),
        (InconsistentRepresentation(), "dep"),
    ]
    detectors = [
        (MissingValueDetector(), "num"),
        (ScalingDetector(), "num"),
        (NoiseDetector(), "num"),
        (CategoricalShiftDetector(min_confidence=0.5), "dep"),
    ]
    repairers = [
        (MeanRepairer(), "num"),
        (MedianRepairer(), "num"),
        (ModeRepairer(), "dep"),
        (ConditionalModeRepairer(condition_on="group"), "dep"),
    ]

    out = {"pollute_s": 0.0, "detect_s": 0.0, "repair_s": 0.0}
    with use_kernels(mode):
        for error, feature in injectors:
            column = frame[feature]
            out["pollute_s"] += _best_call_s(
                lambda: error.corrupt(column, rows, np.random.default_rng(1)),
                number=number,
            )
        for detector, feature in detectors:
            def run_detect():
                clear_fd_cache()  # cold FD stats: time the real work
                return detector.detect(frame, feature)

            out["detect_s"] += _best_call_s(run_detect, number=number)
        for repairer, feature in repairers:
            def run_repair():
                clear_fd_cache()
                return repairer.repair(frame, feature, rows)

            out["repair_s"] += _best_call_s(run_repair, number=number)
    clear_fd_cache()
    out["combined_s"] = out["pollute_s"] + out["detect_s"] + out["repair_s"]
    return out


def _measure_fd_cache(n_rows: int) -> dict:
    frame = _build_frame(n_rows)

    def cold():
        clear_fd_cache()
        return discover_fds(frame, min_confidence=0.5)

    cold_s = _best_call_s(cold, number=1)
    clear_fd_cache()
    fd_cache_stats(reset=True)
    discover_fds(frame, min_confidence=0.5)  # prime the cache
    warm_s = _best_call_s(lambda: discover_fds(frame, min_confidence=0.5), number=5)
    stats = fd_cache_stats()
    clear_fd_cache()
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_over_warm": cold_s / warm_s,
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def test_kernels(benchmark):
    def run():
        results = {}
        for label, n_rows in (("small_2k", SMALL_ROWS), ("large_200k", LARGE_ROWS)):
            per_mode = {
                mode: _measure_mode(mode, n_rows)
                for mode in ("reference", "vectorized")
            }
            per_mode["speedup"] = {
                phase: per_mode["reference"][f"{phase}_s"]
                / per_mode["vectorized"][f"{phase}_s"]
                for phase in ("pollute", "detect", "repair", "combined")
            }
            results[label] = per_mode
        results["fd_cache_200k"] = _measure_fd_cache(LARGE_ROWS)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    print(f"\n{json.dumps(results, indent=2)}")

    # The acceptance bar: one combined pollute+detect+repair iteration
    # over a 200k-row frame must be at least 5× cheaper vectorized.
    assert results["large_200k"]["speedup"]["combined"] >= 5.0
    # The win must come from doing less work per row, so it grows with
    # frame size — the large-frame speedup dominates the small-frame one.
    assert (
        results["large_200k"]["speedup"]["combined"]
        >= results["small_2k"]["speedup"]["combined"] * 0.5
    )
    # A warm token-keyed FD cache skips the factorized pass entirely.
    assert results["fd_cache_200k"]["cold_over_warm"] > 5.0
