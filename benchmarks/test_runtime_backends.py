"""Micro-benchmark: one Estimator E1 sweep, serial vs pooled backends.

Times the exact hot path the execution engine parallelizes — a full
``estimate_many`` candidate sweep — on the serial and thread backends
(plus the process backend when the host has ≥2 CPUs), verifies the
results are bit-identical, and writes the wall-clock numbers to
``benchmarks/results/BENCH_estimator_sweep.json`` so runtime regressions
are visible across PRs.
"""

import json
import os
import time

import numpy as np
from _helpers import RESULTS_DIR

from repro.cache import cache_stats
from repro.core import CometConfig, CometEstimator
from repro.datasets import load_dataset, pollute
from repro.errors import MissingValues
from repro.ml import clear_fit_cache, fit_cache_stats, make_classifier
from repro.runtime import ProcessBackend, SerialBackend, ThreadBackend

WORKERS = 2


def _sweep(backend, polluted, candidates):
    """One full E1+E2 candidate sweep on ``backend``; returns predictions.

    Uses the MLP learner: its per-fit cost (~40 ms) is large against the
    dispatch overhead, so backend comparisons measure parallelism, not
    pool mechanics.
    """
    estimator = CometEstimator(
        make_classifier("mlp"),
        label="label",
        config=CometConfig(step=0.04, n_pollution_steps=2, n_combinations=2),
        rng=5,
    )
    return estimator.estimate_many(polluted.train, polluted.test, candidates, 0.8, backend=backend)


def _timed(backend, polluted, candidates, repeats=3):
    """Best-of-``repeats`` wall clock for one sweep, plus the predictions.

    The repeats deliberately share the featurization memo (per-worker for
    process pools, process-wide otherwise): the first repeat warms it and
    best-of-``repeats`` then measures the steady-state sweep every backend
    reaches in a real session, so the comparison is like-for-like.
    """
    best = float("inf")
    predictions = None
    clear_fit_cache()  # every backend starts from the same cold state
    fit_cache_stats(reset=True)
    with backend:
        for __ in range(repeats):
            start = time.perf_counter()
            predictions = _sweep(backend, polluted, candidates)
            best = min(best, time.perf_counter() - start)
    return best, predictions, _hit_rates(fit_cache_stats(reset=True))


def _hit_rates(stats):
    """Featurization-cache hit rates over one backend's timed repeats.

    Process-backend fits run in the workers, whose counters are not
    visible here — its entry reflects only parent-side activity.
    """
    lookups = stats["hits"] + stats["misses"]
    transforms = stats["transform_hits"] + stats["transform_misses"]
    blocks = stats["block_hits"] + stats["block_misses"]
    return {
        **stats,
        "fit_hit_rate": stats["hits"] / lookups if lookups else None,
        "transform_hit_rate": (
            stats["transform_hits"] / transforms if transforms else None
        ),
        "block_hit_rate": stats["block_hits"] / blocks if blocks else None,
    }


def test_estimator_sweep_backends(benchmark):
    dataset = load_dataset("eeg", n_rows=240, rng=0)
    polluted = pollute(dataset, error_types=["missing"], rng=1)
    candidates = [(f, MissingValues()) for f in polluted.feature_names[:6]]
    n_tasks = len(candidates) * 2 * 2  # candidates × combinations × steps

    def run():
        serial_s, serial_preds, serial_cache = _timed(SerialBackend(), polluted, candidates)
        thread_s, thread_preds, thread_cache = _timed(ThreadBackend(WORKERS), polluted, candidates)
        results = {
            "workload": "estimate_many: 6 candidates x 2 combinations x 2 steps (eeg/mlp)",
            "n_tasks": n_tasks,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_s": serial_s,
            "thread_s": thread_s,
            "thread_speedup": serial_s / thread_s,
            "fit_cache": {"serial": serial_cache, "thread": thread_cache},
            # Byte-level view of the same namespaces on the shared cache.
            "shared_cache": {
                ns: {k: entry[k] for k in ("hits", "misses", "evictions", "bytes")}
                for ns, entry in cache_stats()["namespaces"].items()
            },
        }
        identical = all(
            s.predicted_f1 == t.predicted_f1 and np.array_equal(s.scores, t.scores)
            for s, t in zip(serial_preds, thread_preds)
        )
        if (os.cpu_count() or 1) >= 2:
            process_s, process_preds, process_cache = _timed(
                ProcessBackend(WORKERS), polluted, candidates
            )
            results["process_s"] = process_s
            results["process_speedup"] = serial_s / process_s
            results["fit_cache"]["process_parent_side"] = process_cache
            identical = identical and all(
                s.predicted_f1 == p.predicted_f1
                for s, p in zip(serial_preds, process_preds)
            )
        results["identical"] = identical
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_estimator_sweep.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    print(f"\n{json.dumps(results, indent=2)}")

    assert results["identical"], "backends disagreed on the sweep results"
    # Thread dispatch must not meaningfully slow the sweep down even on a
    # single-CPU host (pool overhead is bounded); with ≥2 CPUs the process
    # backend must show a measurable speedup over serial. The margins are
    # deliberately loose — shared CI runners are noisy, and the JSON
    # artifact carries the precise numbers.
    assert results["thread_s"] <= results["serial_s"] * 1.5
    if (os.cpu_count() or 1) >= 2:
        assert results["process_speedup"] > 1.05
