"""Micro-benchmark: the networked service's control-plane latency.

Measures what the transport layer adds on top of the in-process verbs,
written to ``benchmarks/results/BENCH_service_latency.json``:

1. *``status`` round-trip over TCP* — p50/p95 of a cheap verb through
   the full socket → frame → dispatch → frame path. This is the verb
   that must stay responsive while other sessions sweep, so its tail is
   the service's interactivity budget.
2. *``status`` while a sweep runs* — the same measurement with another
   session mid-``run`` on the scheduler, demonstrating that iteration
   work does not queue ahead of the control plane.
3. *Multi-connection throughput* — total ``status`` requests/second
   across 4 concurrent client connections (ThreadingTCPServer's
   one-thread-per-connection scaling).
4. *Secured path* — the same ``status`` round-trip over a token-
   authenticated, TLS-wrapped connection, pinning what the HMAC
   handshake amortizes to and what TLS record framing adds per call
   (the handshakes are per-connection, the per-call cost is crypto on
   ~100-byte frames).
"""

import json
import shutil
import subprocess
import threading
import time

from _helpers import RESULTS_DIR

from repro.security import TransportSecurity
from repro.service import CometClient, CometService, CometTCPServer

_PARAMS = {
    "dataset": "cmc",
    "algorithm": "lor",
    "errors": ["missing"],
    "budget": 4,
    "rows": 130,
    "step": 0.05,
    "seed": 0,
}


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _timed_status(client, calls):
    latencies = []
    for _ in range(calls):
        started = time.perf_counter()
        client.status()
        latencies.append(time.perf_counter() - started)
    return latencies


def _secured_roundtrip(service, calls=200):
    """``status`` p50/p95 over a token-authenticated (and, when openssl
    can mint a cert, TLS-wrapped) connection."""
    import tempfile

    token = "bench-token"
    tls = shutil.which("openssl") is not None
    with tempfile.TemporaryDirectory() as tmp:
        cert = key = None
        if tls:
            cert, key = f"{tmp}/cert.pem", f"{tmp}/key.pem"
            subprocess.run(
                [
                    "openssl", "req", "-x509", "-newkey", "rsa:2048",
                    "-keyout", key, "-out", cert, "-days", "2", "-nodes",
                    "-subj", "/CN=localhost",
                    "-addext", "subjectAltName=IP:127.0.0.1,DNS:localhost",
                ],
                check=True,
                capture_output=True,
            )
        server = CometTCPServer(
            service,
            security=TransportSecurity(token=token, certfile=cert, keyfile=key),
        )
        server.serve_background()
        try:
            connect_started = time.perf_counter()
            with CometClient(
                server.port,
                timeout=120,
                tls=cert if tls else None,
                auth_token=token,
            ) as client:
                connect_s = time.perf_counter() - connect_started
                secured = _timed_status(client, calls)
        finally:
            server.shutdown()
            server.server_close()
    return {
        "calls": len(secured),
        "p50_s": _percentile(secured, 0.50),
        "p95_s": _percentile(secured, 0.95),
        "tls": tls,
        "auth": "hmac-token",
        "connect_handshake_s": connect_s,
    }


def test_service_latency_benchmark():
    out = {}
    with CometService(workers=2) as service:
        server = CometTCPServer(service)
        server.serve_background()
        try:
            with CometClient(server.port, timeout=120) as client:
                client.create("bench", _PARAMS)

                idle = _timed_status(client, 200)
                out["status_roundtrip_idle"] = {
                    "calls": len(idle),
                    "p50_s": _percentile(idle, 0.50),
                    "p95_s": _percentile(idle, 0.95),
                }

                client.run("bench", wait=False)
                busy = _timed_status(client, 200)
                out["status_roundtrip_during_run"] = {
                    "calls": len(busy),
                    "p50_s": _percentile(busy, 0.50),
                    "p95_s": _percentile(busy, 0.95),
                    "run_still_active": service.scheduler.running("bench"),
                }
                outcome = client.result("bench")
                assert outcome["ready"] and outcome["finished"]

                # Throughput: 4 connections hammering status concurrently.
                counts = []
                duration = 2.0

                def hammer():
                    with CometClient(server.port, timeout=120) as worker:
                        done = 0
                        deadline = time.perf_counter() + duration
                        while time.perf_counter() < deadline:
                            worker.status()
                            done += 1
                        counts.append(done)

                threads = [threading.Thread(target=hammer) for _ in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                out["status_throughput"] = {
                    "connections": len(threads),
                    "duration_s": duration,
                    "requests_per_s": sum(counts) / duration,
                }
        finally:
            server.shutdown()
            server.server_close()

        out["status_roundtrip_secured"] = _secured_roundtrip(service)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service_latency.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))

    # Loose sanity floors (CI boxes are noisy; these catch regressions of
    # kind, not degree): the control plane answers in well under a second
    # even while a sweep runs, and throughput is comfortably interactive.
    assert out["status_roundtrip_idle"]["p95_s"] < 0.25
    assert out["status_roundtrip_during_run"]["p95_s"] < 1.0
    assert out["status_throughput"]["requests_per_s"] > 50
    # Auth + TLS must stay control-plane cheap: same order of magnitude
    # as the open path, still interactive by a wide margin.
    assert out["status_roundtrip_secured"]["p95_s"] < 0.25
