"""Micro-benchmark: the shared eviction-aware cache under byte budgets.

Two measurements, written to ``benchmarks/results/BENCH_cache.json``:

1. *Bounded memory* — a multi-session sweep (several COMET sessions over
   differently-seeded pollutions of the same dataset) that previously
   grew the featurization/FD caches without limit. Under a byte budget
   the steady-state cache size must stay at or below the budget, with
   eviction — never an error — absorbing the pressure; the run also
   records how far the same workload grows with an effectively unbounded
   budget, which is the number the quota exists to cap.
2. *E1 pollution-delta reuse* — one cold ``estimate_many`` sweep over
   freshly polluted CleanML states. The whole-matrix memo never hits on
   a fresh state (every pollution mints new tokens), which used to mean
   a 0% transform-layer hit rate; the sub-frame block cache must lift
   that above zero (unchanged columns reuse blocks, polluted categorical
   columns masked-scatter-patch the base state's block) while the warm
   repeat of the same sweep confirms identical predictions and the
   speedup the reuse buys.
"""

import json
import time

from _helpers import RESULTS_DIR

from repro.cache import (
    DEFAULT_MAX_BYTES,
    cache_stats,
    set_cache_budget,
    shared_cache,
)
from repro.core import CometConfig, CometEstimator
from repro.datasets import load_cleanml, load_dataset, pollute
from repro.detect import AlgorithmicCleaner, clear_fd_cache
from repro.errors import CategoricalShift, MissingValues
from repro.ml import clear_fit_cache, fit_cache_stats, make_classifier
from repro.session import CleaningSession

BUDGET_BYTES = 256 * 1024
N_SESSIONS = 3


def _run_session(seed: int) -> None:
    dataset = load_dataset("cmc", n_rows=150, rng=0)
    polluted = pollute(dataset, error_types=["missing"], rng=seed)
    session = CleaningSession.create(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=4.0,
        config=CometConfig(step=0.05),
        rng=0,
        cleaner=AlgorithmicCleaner(step=0.05, rng=0),
    )
    try:
        session.run()
    finally:
        session.close()


def _multi_session_bytes(budget: int) -> dict:
    """Peak/steady cache bytes across N differently-polluted sessions."""
    set_cache_budget(budget)
    clear_fit_cache()
    clear_fd_cache()
    peak = 0
    for seed in range(N_SESSIONS):
        _run_session(seed=seed)
        peak = max(peak, shared_cache().total_bytes())
    stats = cache_stats()
    return {
        "budget_bytes": budget,
        "sessions": N_SESSIONS,
        "peak_total_bytes": peak,
        "steady_state_bytes": stats["total_bytes"],
        "evictions": stats["evictions"],
        "namespaces": {
            ns: {k: entry[k] for k in ("bytes", "entries", "evictions")}
            for ns, entry in stats["namespaces"].items()
        },
    }


def _delta_reuse() -> dict:
    """Block/delta hit rates of one cold E1 sweep over fresh states."""
    polluted = load_cleanml("titanic", n_rows=160, rng=0)
    # Missing-value pollution shifts a column's fitted stats (imputation
    # mean, category set), which rules the stats-keyed base block out of
    # patching; categorical shifts stay inside the observed category set,
    # so those candidates exercise the masked-scatter delta path too.
    candidates = [
        (f, CategoricalShift() if polluted.train[f].is_categorical else MissingValues())
        for f in polluted.feature_names
    ]

    def sweep():
        estimator = CometEstimator(
            make_classifier("lor"),
            label=polluted.label,
            config=CometConfig(step=0.04, n_pollution_steps=2, n_combinations=1),
            rng=5,
        )
        start = time.perf_counter()
        predictions = estimator.estimate_many(
            polluted.train, polluted.test, candidates, 0.8
        )
        elapsed = time.perf_counter() - start
        return [p.predicted_f1 for p in predictions], elapsed

    clear_fit_cache()
    clear_fd_cache()
    fit_cache_stats(reset=True)
    cold_preds, cold_s = sweep()
    cold = fit_cache_stats(reset=True)
    warm_preds, warm_s = sweep()
    warm = fit_cache_stats(reset=True)

    def rates(stats):
        blocks = stats["block_hits"] + stats["block_misses"]
        matrix = stats["transform_hits"] + stats["transform_misses"]
        served = stats["transform_hits"] + stats["block_hits"]
        lookups = matrix + blocks
        return {
            **stats,
            "block_hit_rate": stats["block_hits"] / blocks if blocks else 0.0,
            "matrix_hit_rate": stats["transform_hits"] / matrix if matrix else 0.0,
            # The acceptance number: transform-layer work served from
            # cache (matrix or block) over all transform-layer lookups.
            "transform_hit_rate": served / lookups if lookups else 0.0,
        }

    return {
        "cold_sweep": {**rates(cold), "elapsed_s": cold_s},
        "warm_sweep": {**rates(warm), "elapsed_s": warm_s},
        "warm_speedup": cold_s / warm_s if warm_s else None,
        "identical_predictions": cold_preds == warm_preds,
    }


def test_cache(benchmark):
    def run():
        try:
            bounded = _multi_session_bytes(BUDGET_BYTES)
            unbounded = _multi_session_bytes(DEFAULT_MAX_BYTES)
            set_cache_budget(DEFAULT_MAX_BYTES)
            clear_fit_cache()
            clear_fd_cache()
            delta = _delta_reuse()
        finally:
            set_cache_budget(DEFAULT_MAX_BYTES)
            clear_fit_cache()
            clear_fd_cache()
        return {
            "workload": (
                f"{N_SESSIONS} COMET sessions (cmc/lor, distinct pollutions) "
                f"under a {BUDGET_BYTES // 1024} KiB budget; one E1 sweep "
                "(titanic/lor) cold vs warm"
            ),
            "bounded_memory": bounded,
            "unbounded_reference_bytes": unbounded["peak_total_bytes"],
            "delta_reuse": delta,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cache.json").write_text(
        json.dumps(results, indent=2) + "\n"
    )
    print(f"\n{json.dumps(results, indent=2)}")

    bounded = results["bounded_memory"]
    # (a) Bounded memory: the budget is a hard bound at every boundary
    # the benchmark observes, and the same workload demonstrably wants
    # more than the budget (otherwise this asserts nothing).
    assert bounded["peak_total_bytes"] <= bounded["budget_bytes"]
    assert bounded["steady_state_bytes"] <= bounded["budget_bytes"]
    assert bounded["evictions"] > 0
    assert results["unbounded_reference_bytes"] > bounded["budget_bytes"]

    delta = results["delta_reuse"]
    # (b) E1 pollution-delta reuse: fresh polluted states must be served
    # partly from cache (was exactly 0 before the block layer)...
    assert delta["cold_sweep"]["transform_hit_rate"] > 0.0
    assert delta["cold_sweep"]["block_hits"] > 0
    assert delta["cold_sweep"]["delta_hits"] > 0
    # ...without changing a single prediction.
    assert delta["identical_predictions"]
