"""Micro-benchmark: what session durability costs.

Measures the two prices of the ``repro.store`` write-behind design,
written to ``benchmarks/results/BENCH_store.json``:

1. *Write-behind overhead per iteration* — the same session stepped to
   completion bare, with a write-behind store snapshotting every
   iteration boundary (the ``serve --state-dir`` configuration; only
   the synchronous pickle is on the verb path), and with inline writes
   (``write_behind=False`` — what a naive design would pay, fsync and
   all, on every boundary).
2. *Cold-rehydration latency* — ``store.load`` on a fresh store over
   the same directory: the first-verb cost of a lazily resumed session
   after a restart.
"""

import json
import tempfile
import time
from pathlib import Path

from _helpers import RESULTS_DIR

from repro.experiments import Configuration, build_polluted
from repro.session import CleaningSession
from repro.store import DirectorySessionStore

_CONFIG = Configuration(
    dataset="cmc",
    algorithm="lor",
    error_types=("missing",),
    n_rows=200,
    budget=16.0,
    step=0.02,
)
_SEED = 0


def _fresh_session() -> CleaningSession:
    dataset = build_polluted(_CONFIG, seed=_SEED)
    return CleaningSession.create(
        dataset,
        algorithm=_CONFIG.algorithm,
        error_types=list(_CONFIG.error_types),
        budget=_CONFIG.budget,
        cost_model=_CONFIG.make_cost_model(),
        config=_CONFIG.make_comet_config(),
        rng=_SEED,
    )


def _step_out(session: CleaningSession, store=None, name="bench") -> tuple[int, float]:
    """Step the session to completion, snapshotting each boundary."""
    iterations = 0
    started = time.perf_counter()
    while not session.is_finished:
        if session.step() is None:
            break
        iterations += 1
        if store is not None:
            state = session.state
            store.put(
                name,
                state,
                meta={"iteration": state.iteration, "finished": state.is_finished},
            )
    return iterations, time.perf_counter() - started


def test_store_benchmark():
    out = {
        "workload": (
            f"{_CONFIG.dataset}/{_CONFIG.algorithm}, {_CONFIG.n_rows} rows, "
            f"budget {_CONFIG.budget:g}, one snapshot per iteration"
        )
    }

    iterations, bare_s = _step_out(_fresh_session())
    assert iterations > 0
    out["iterations"] = iterations
    out["bare_per_iter_s"] = bare_s / iterations

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        root = Path(tmp) / "state"

        with DirectorySessionStore(root) as store:
            wb_iters, wb_s = _step_out(_fresh_session(), store)
            flush_started = time.perf_counter()
            store.flush()
            out["flush_drain_s"] = time.perf_counter() - flush_started
            out["checkpoint_bytes"] = store.stats()["bytes"]
        assert wb_iters == iterations  # durability must not change the run
        out["write_behind_per_iter_s"] = wb_s / iterations
        out["write_behind_overhead"] = wb_s / bare_s - 1.0

        with DirectorySessionStore(root, write_behind=False) as store:
            inline_iters, inline_s = _step_out(_fresh_session(), store)
        assert inline_iters == iterations
        out["inline_per_iter_s"] = inline_s / iterations
        out["inline_overhead"] = inline_s / bare_s - 1.0

        # Cold rehydration: a fresh store over the same directory, as the
        # first verb after `serve --state-dir` restarts would see it.
        samples = []
        for _ in range(5):
            with DirectorySessionStore(root) as store:
                started = time.perf_counter()
                state = store.load("bench")
                samples.append(time.perf_counter() - started)
            assert state.iteration == iterations
        out["cold_rehydrate_s"] = {"best": min(samples), "mean": sum(samples) / len(samples)}

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_store.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(json.dumps(out, indent=2))

    # Loose sanity floors (kind, not degree): the write-behind snapshot
    # must stay a small fraction of an iteration, and a rehydration must
    # be interactive.
    assert out["write_behind_overhead"] < 0.5
    assert out["cold_rehydrate_s"]["best"] < 1.0
