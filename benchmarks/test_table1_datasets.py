"""Table 1: overview of the seven datasets.

Regenerates the dataset-characteristics table (#rows, #categorical,
#numerical, #classes) and verifies the generated data actually matches it.
"""

from _helpers import report

from repro.datasets import dataset_summaries, load_dataset
from repro.experiments import format_table

EXPECTED = {
    "cmc": (1473, 7, 2, 3),
    "churn": (7032, 16, 3, 2),
    "eeg": (14980, 0, 14, 2),
    "s-credit": (1000, 17, 3, 2),
    "airbnb": (26288, 3, 37, 2),
    "credit": (11985, 0, 10, 2),
    "titanic": (891, 6, 2, 2),
}


def test_table1(benchmark):
    def build():
        rows = dataset_summaries()
        # Materialize one (scaled) dataset per entry to verify the schema.
        for row in rows:
            frame = load_dataset(row["name"], n_rows=200).frame
            features = [n for n in frame.column_names if n != "label"]
            assert len(frame.categorical_columns()) == row["n_categorical"]
            assert len([f for f in features if frame[f].is_numeric]) == row["n_numerical"]
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    for row in rows:
        expected = EXPECTED[row["name"]]
        assert (
            row["n_rows"],
            row["n_categorical"],
            row["n_numerical"],
            row["n_classes"],
        ) == expected
    report("table1", "Table 1: Overview of our used datasets", [format_table(rows)])
