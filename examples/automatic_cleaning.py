"""Scenario: fully automatic cleaning — no domain expert, no ground truth.

COMET's recommendations normally go to a human Cleaner (simulated with
ground truth in the paper's experiments). Here the Cleaner is an
algorithm: per recommended (feature, error) it *detects* suspicious cells
(outlier tests for scaling, FD violations for categorical shifts, mask
scans for missing values) and repairs them by imputation. The example
contrasts the detect-and-impute pipeline against the perfect expert on the
same dirty dataset.

Run:  python examples/automatic_cleaning.py
"""

from repro import Comet, CometConfig, load_dataset, pollute
from repro.detect import AlgorithmicCleaner, ScalingDetector, discover_fds


def main() -> None:
    dataset = load_dataset("cmc", n_rows=300)
    polluted = pollute(dataset, error_types=["missing", "scaling"], rng=13)

    # Peek at the detectors before any cleaning.
    print("what the detectors see (vs hidden ground truth):")
    for feature in polluted.feature_names:
        if not polluted.train[feature].is_numeric:
            continue
        detection = ScalingDetector().detect(polluted.train, feature)
        truth = polluted.dirty_train.rows(feature, "scaling")
        print(f"  {feature:8s} flagged {len(detection):3d} cells "
              f"(truly scaled: {len(truth)})")
    fds = discover_fds(polluted.train, min_confidence=0.9)
    print(f"  approximate FDs among categoricals: {len(fds)}")

    results = {}
    for name, cleaner in (
        ("expert (ground truth)", None),
        ("automatic (detect+impute)", AlgorithmicCleaner(step=0.02, rng=0)),
    ):
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing", "scaling"],
            budget=10.0,
            config=CometConfig(step=0.02),
            rng=0,
            cleaner=cleaner,
        )
        trace = comet.run()
        results[name] = trace
        print(f"\n{name}: F1 {trace.initial_f1:.3f} -> {trace.final_f1:.3f} "
              f"({trace.final_f1 - trace.initial_f1:+.3f}, "
              f"{len(trace.records)} cleaning steps)")

    expert = results["expert (ground truth)"]
    auto = results["automatic (detect+impute)"]
    expert_gain = expert.final_f1 - expert.initial_f1
    auto_gain = auto.final_f1 - auto.initial_f1
    if expert_gain > 0:
        print(f"\nautomatic cleaning recovered "
              f"{100 * auto_gain / expert_gain:.0f}% of the expert's F1 gain")


if __name__ == "__main__":
    main()
