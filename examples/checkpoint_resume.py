"""Checkpoint a cleaning session mid-run and resume it bit-identically.

Long cleaning campaigns should survive restarts: this example starts a
session, streams progress through an observer, checkpoints after two
iterations, *discards* the live session, resumes from the checkpoint in
a "new process" (here: a fresh engine), and verifies the combined trace
equals an uninterrupted run's — COMET's determinism contract extended
across restarts.

Run:  python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

from repro import CleaningSession, CometConfig, SessionObserver, load_dataset, pollute


class ProgressPrinter(SessionObserver):
    """Streams accepted cleanings as they happen (the on_* hook API)."""

    def on_accept(self, session, record):
        print(
            f"  [observer] iteration {record.iteration}: cleaned "
            f"{record.feature} (F1 {record.f1_before:.3f} -> {record.f1_after:.3f})"
        )

    def on_revert(self, session, feature, error):
        print(f"  [observer] reverted {feature}/{error} into the buffer")


def make_session(**kwargs):
    dataset = load_dataset("cmc", n_rows=300)
    polluted = pollute(dataset, error_types=["missing"], rng=7)
    return CleaningSession.create(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=8.0,
        config=CometConfig(step=0.03),
        rng=0,
        **kwargs,
    )


def main() -> None:
    checkpoint = Path(tempfile.gettempdir()) / "comet_session.ckpt"

    # Reference: one uninterrupted run.
    print("uninterrupted run:")
    full = make_session().run()
    print(f"  {len(full.records)} iterations, final F1 {full.final_f1:.3f}")

    # Interrupted run: two iterations, checkpoint, drop the session.
    print("\ninterrupted run (2 iterations, then checkpoint):")
    session = make_session(observers=(ProgressPrinter(),))
    session.step()
    session.step()
    session.save(checkpoint)
    status = session.status()
    print(
        f"  checkpointed at iteration {status['iteration']} "
        f"({status['budget_spent']:g}/{status['budget_total']:g} budget spent) "
        f"-> {checkpoint}"
    )
    del session

    # Resume from disk and run to completion.
    print("\nresumed run:")
    resumed = CleaningSession.load(checkpoint, observers=(ProgressPrinter(),))
    combined = resumed.run()
    print(f"  {len(combined.records)} iterations, final F1 {combined.final_f1:.3f}")

    identical = combined == full
    print(f"\nresumed trace bit-identical to uninterrupted run: {identical}")
    assert identical, "determinism contract violated"
    checkpoint.unlink()


if __name__ == "__main__":
    main()
