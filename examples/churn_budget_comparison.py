"""Scenario: a telco churn model with a limited cleaning budget.

The paper's motivating setting: a (dirty) customer dataset, a deployed
churn classifier, and a domain expert whose time is the budget. This
example compares how far the same 12 units of expert effort go under four
strategies — COMET, feature-importance ordering (FIR), random ordering
(RR), and COMET-light (CL) — and prints the F1-per-budget curves.

Run:  python examples/churn_budget_comparison.py
"""

import numpy as np

from repro import load_dataset, pollute
from repro.experiments import (
    Configuration,
    average_curve,
    format_series,
    run_method,
)


def main() -> None:
    config = Configuration(
        dataset="churn",
        algorithm="gb",
        error_types=("missing",),
        n_rows=250,
        budget=8.0,
        step=0.02,
        cost_model="paper",
        rr_repeats=3,
    )
    dataset = load_dataset(config.dataset, n_rows=config.n_rows)
    polluted = pollute(
        dataset, error_types=list(config.error_types), step=config.step, rng=11
    )
    grid = np.arange(0.0, config.budget + 1.0)

    print(f"churn-like dataset: {polluted.train.n_rows} train rows, "
          f"{len(polluted.feature_names)} features, budget {config.budget:.0f}")
    curves = {}
    for method in ("comet", "fir", "rr", "cl"):
        repeats = config.rr_repeats if method == "rr" else 1
        traces = [
            run_method(method, polluted, config, rng=r) for r in range(repeats)
        ]
        curves[method] = average_curve(traces, grid)

    print("\nF1 over spent budget:")
    for method, curve in curves.items():
        print(format_series(method.upper(), grid, curve, every=3))

    best = max(curves, key=lambda m: curves[m][-1])
    print(f"\nbest strategy at budget exhaustion: {best.upper()} "
          f"(F1 {curves[best][-1]:.3f})")


if __name__ == "__main__":
    main()
