"""Scenario: inspect COMET's Estimator — the incremental-pollution idea.

Reproduces Figure 1 in text form: for each feature of an EEG-like dataset,
the Estimator injects two extra pollution steps, measures the F1 response,
fits a Bayesian regression, and extrapolates one *cleaning* step backwards.
The printout shows the measured (level → F1) curves, the predicted
post-cleaning F1, its uncertainty, and — because the ground truth is known
here — the realized F1 after actually cleaning, so you can judge the
prediction quality yourself (the paper's Figure 11 analysis).

Run:  python examples/estimator_diagnostics.py
"""

from repro import CometConfig, load_dataset, pollute
from repro.cleaning import GroundTruthCleaner
from repro.core import CometEstimator
from repro.errors import MissingValues
from repro.ml import TabularModel, make_classifier


def main() -> None:
    dataset = load_dataset("eeg", n_rows=400)
    polluted = pollute(dataset, error_types=["missing"], rng=9, scale=0.10)
    config = CometConfig(step=0.02, n_pollution_steps=2)
    estimator = CometEstimator(
        make_classifier("knn"), label=polluted.label, config=config, rng=0
    )
    baseline = estimator.measure_baseline(polluted.train, polluted.test)
    print(f"baseline F1 (dirty): {baseline:.3f}\n")
    print(f"{'feature':8s} {'measured F1 @ +1%,+2% pollution':34s} "
          f"{'predicted':>9s} {'+/-':>6s} {'realized':>9s}")

    cleaner = GroundTruthCleaner(step=config.step, rng=0)
    for feature in polluted.feature_names[:8]:
        prediction = estimator.estimate(
            polluted.train, polluted.test, feature, MissingValues(), baseline
        )
        # Actually clean one step (on a scratch copy) to get the truth.
        scratch = polluted.copy()
        cleaner.clean_step(scratch, feature, "missing",
                           priority_train_rows=prediction.polluted_rows)
        model = TabularModel(make_classifier("knn"), label=polluted.label)
        realized = model.fit_score(scratch.train, scratch.test)
        measured = "  ".join(f"{s:.3f}" for s in prediction.scores)
        print(f"{feature:8s} [{measured}]"
              f" {prediction.predicted_f1:9.3f} {prediction.uncertainty:6.3f}"
              f" {realized:9.3f}")

    print("\nFeatures whose pollution curve slopes down are the ones whose")
    print("cleaning COMET predicts to help — compare 'predicted' vs 'realized'.")


if __name__ == "__main__":
    main()
