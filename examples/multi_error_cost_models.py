"""Scenario: mixed error types with realistic, error-specific cleaning costs.

Sensor data (Gaussian noise, linear cost — subtle deviations get harder to
find), survey categoricals (categorical shift, constant cost), unit
mistakes (scaling, constant cost), and gaps (missing values, one-shot
imputation cost) all in one dataset. COMET's Recommender trades predicted
F1 gain against these heterogeneous costs; this example shows the chosen
(feature, error, cost) sequence and the cleaning buffer in action.

Run:  python examples/multi_error_cost_models.py
"""

from repro import Comet, CometConfig, load_dataset, paper_cost_model, pollute


def main() -> None:
    dataset = load_dataset("s-credit", n_rows=350)
    polluted = pollute(
        dataset,
        error_types=["missing", "noise", "categorical", "scaling"],
        rng=5,
    )
    print("ground-truth dirt per (feature, error type):")
    for feature, error in polluted.dirty_train.pairs():
        print(f"  {feature:8s} {error:12s} "
              f"{polluted.dirty_train.dirty_count(feature, error):4d} cells")

    comet = Comet(
        polluted,
        algorithm="lor",
        error_types=["missing", "noise", "categorical", "scaling"],
        budget=14.0,
        cost_model=paper_cost_model(),
        config=CometConfig(step=0.02),
        rng=0,
    )
    trace = comet.run()

    print(f"\nF1 dirty: {trace.initial_f1:.3f}")
    for record in trace.records:
        note = ""
        if record.from_buffer:
            note = " (replayed from cleaning buffer, free)"
        elif record.used_fallback:
            note = " (fallback)"
        if record.rejected:
            note += f" [reverted first: {', '.join(f'{f}/{e}' for f, e in record.rejected)}]"
        print(
            f"  {record.feature:8s} {record.error:12s} cost={record.cost:3.0f}"
            f" F1 {record.f1_before:.3f} -> {record.f1_after:.3f}{note}"
        )
    print(f"F1 after budget: {trace.final_f1:.3f} "
          f"({trace.final_f1 - trace.initial_f1:+.3f})")

    by_error: dict[str, float] = {}
    for record in trace.records:
        by_error[record.error] = by_error.get(record.error, 0.0) + record.cost
    print("\nbudget allocation by error type:")
    for error, cost in sorted(by_error.items()):
        print(f"  {error:12s} {cost:5.0f} units")


if __name__ == "__main__":
    main()
