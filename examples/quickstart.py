"""Quickstart: get step-by-step cleaning recommendations from COMET.

Loads a CMC-like classification dataset, pollutes it with missing values
(establishing ground truth), and lets COMET spend a 15-unit cleaning budget
— printing, per iteration, which feature it recommends cleaning next and
what that did to the model's F1.

Run:  python examples/quickstart.py
"""

from repro import Comet, CometConfig, load_dataset, pollute


def main() -> None:
    # A clean dataset plus a sampled "pre-pollution setting": per-feature
    # dirt levels drawn from an exponential distribution, as in the paper.
    dataset = load_dataset("cmc", n_rows=400)
    polluted = pollute(dataset, error_types=["missing"], rng=7)
    print(f"dataset: {polluted.name}, features: {len(polluted.feature_names)}")
    print("dirty cells per feature (ground truth, hidden from COMET):")
    for feature in polluted.feature_names:
        count = polluted.dirty_train.dirty_count(feature)
        if count:
            print(f"  {feature:8s} {count:4d}")

    comet = Comet(
        polluted,
        algorithm="svm",
        error_types=["missing"],
        budget=15.0,
        config=CometConfig(step=0.02),
        rng=0,
    )
    trace = comet.run()

    print(f"\nF1 before any cleaning: {trace.initial_f1:.3f}")
    for record in trace.records:
        marker = " (fallback)" if record.used_fallback else ""
        print(
            f"iteration {record.iteration:2d}: clean {record.feature:8s}"
            f" cost={record.cost:.0f} spent={record.budget_spent:4.0f}"
            f" F1 {record.f1_before:.3f} -> {record.f1_after:.3f}{marker}"
        )
    print(f"\nF1 after spending {trace.total_spent:.0f} units: {trace.final_f1:.3f}")
    print(f"improvement: {trace.final_f1 - trace.initial_f1:+.3f}")


if __name__ == "__main__":
    main()
