"""Scenario: COMET on a regression task (the paper's §6 extension).

A sensor-calibration regression: predict a continuous target from noisy
channel readings. Gaussian noise pollutes the channels; COMET optimizes R²
instead of F1 — the loop (pollute → estimate → recommend → clean → verify)
is metric-agnostic, so only ``task="regression"`` and a regressor change.

Run:  python examples/regression_cleaning.py
"""

from repro import Comet, CometConfig
from repro.datasets.synth import SyntheticSpec, synthesize_regression
from repro.errors import PrePollution
from repro.ml import LinearRegression
from repro.ml.model_selection import train_test_split


def main() -> None:
    spec = SyntheticSpec(n_rows=400, n_numeric=6, n_categorical=0)
    frame = synthesize_regression(spec, rng=3)
    train_idx, test_idx = train_test_split(400, rng=0)
    pre = PrePollution(["noise"], rng=8, scale=0.15)
    polluted = pre.apply(
        frame.take(train_idx), frame.take(test_idx), label="target",
        name="sensor-calibration",
    )
    print("noisy channels (ground truth):")
    for feature in polluted.feature_names:
        count = polluted.dirty_train.dirty_count(feature)
        if count:
            print(f"  {feature:8s} {count:4d} noisy cells")

    comet = Comet(
        polluted,
        algorithm=LinearRegression(),
        error_types=["noise"],
        budget=10.0,
        config=CometConfig(step=0.02),
        rng=0,
        task="regression",
    )
    trace = comet.run()

    print(f"\nR² before cleaning: {trace.initial_f1:.3f}")
    for record in trace.records:
        print(
            f"  clean {record.feature:8s} spent={record.budget_spent:4.0f}"
            f"  R² {record.f1_before:.3f} -> {record.f1_after:.3f}"
        )
    print(f"R² after budget:    {trace.final_f1:.3f} "
          f"({trace.final_f1 - trace.initial_f1:+.3f})")


if __name__ == "__main__":
    main()
