"""Drive a networked COMET service with the programmatic client.

Two concurrent users share one `python -m repro serve --port ...`
process: the example spawns a server (or connects to one you started,
via ``--port``), opens two sessions, dispatches an *asynchronous* run on
the first (``wait=False``), and keeps interacting with the second — live
``status``, recommendations, a cleaning step — while the first session's
sweep is still running on the server's scheduler. It finishes by
collecting the async result, closing both sessions, and shutting the
server down.

Run:  python examples/service_client.py              # self-contained
      python examples/service_client.py --port 8765  # reuse a server
"""

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.service import CometClient

SLOW_PARAMS = {
    # A CleanML scenario whose sweeps take long enough to observe mid-run.
    "dataset": "titanic", "cleanml": True, "algorithm": "mlp",
    "budget": 50, "step": 0.02, "seed": 0,
}
FAST_PARAMS = {
    "dataset": "cmc", "algorithm": "lor", "errors": ["missing"],
    "budget": 2, "rows": 130, "step": 0.05, "seed": 0,
}


def spawn_server() -> tuple[subprocess.Popen, int]:
    """Start `repro serve --port 0` and read the bound port back."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--max-sessions", "8"],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    ready = proc.stdout.readline().strip()  # "serving tcp on 127.0.0.1:N"
    print(f"spawned server: {ready}")
    return proc, int(ready.rsplit(":", 1)[1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--port", type=int, default=None,
        help="connect to an already-running serve --port (default: spawn one)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="server host (with --port)",
    )
    args = parser.parse_args()

    proc = None
    if args.port is None:
        proc, port, host = *spawn_server(), "127.0.0.1"
    else:
        port, host = args.port, args.host

    try:
        with CometClient(port, host, timeout=600) as client:
            print(f"service: {client.status()}")

            print("\ncreating sessions 'slow' (CleanML/MLP) and 'fast' (cmc):")
            created = client.create("slow", SLOW_PARAMS)
            print(f"  slow: {created['open_candidates']} candidates")
            created = client.create("fast", FAST_PARAMS)
            print(f"  fast: {created['open_candidates']} candidates")

            print("\ndispatching async run on 'slow' (wait=False):")
            print(f"  {client.run('slow', max_iterations=3, wait=False)}")

            print("while 'slow' iterates, 'fast' stays interactive:")
            for candidate in client.recommend("fast", k=2):
                print(
                    f"  recommend: clean {candidate['feature']!r} "
                    f"(predicted F1 {candidate['predicted_f1']:.3f})"
                )
            stepped = client.step("fast")
            record = stepped["record"]
            print(
                f"  step: cleaned {record['feature']!r} "
                f"(F1 {record['f1_before']:.3f} -> {record['f1_after']:.3f})"
            )
            started = time.perf_counter()
            status = client.status("fast")
            print(
                f"  status('fast') answered in "
                f"{time.perf_counter() - started:.3f}s while "
                f"running={client.status('slow')['running']} on 'slow'"
            )

            print("\ncollecting the async run:")
            outcome = client.result("slow")
            trace = outcome["trace"]
            final_f1 = (
                trace["records"][-1]["f1_after"]
                if trace["records"]
                else trace["initial_f1"]
            )
            print(
                f"  {len(trace['records'])} records, F1 "
                f"{trace['initial_f1']:.3f} -> {final_f1:.3f}"
            )

            client.close_session("slow")
            client.close_session("fast")
            print(f"sessions closed; shutting down: {client.shutdown_server()}")
    finally:
        if proc is not None:
            try:
                code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()  # e.g. the client failed before shutdown_server
                code = proc.wait()
            print(f"server exited with code {code}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
