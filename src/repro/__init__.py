"""COMET reproduction: step-by-step data cleaning recommendations for ML.

Reproduces Mohammed, Naumann & Harmouch, "Step-by-Step Data Cleaning
Recommendations to Improve ML Prediction Accuracy" (EDBT 2025), including
every substrate the paper relies on: a mini dataframe, from-scratch ML
algorithms, Bayesian regression, Shapley values, the JENGA-style error
injector, cost models, the COMET loop itself, and all evaluation baselines.

Quickstart::

    from repro import load_dataset, pollute, Comet

    dataset = pollute(load_dataset("cmc", rng=0), error_types=["missing"], rng=0)
    comet = Comet(dataset, algorithm="svm", error_types=["missing"], budget=20, rng=0)
    trace = comet.run()
    print(trace.initial_f1, "->", trace.final_f1)
"""

from repro.cache import cache_stats, clear_shared_cache, set_cache_budget
from repro.cleaning import Budget, CostModel, paper_cost_model, uniform_cost_model
from repro.core import CleaningTrace, Comet, CometConfig
from repro.datasets import dataset_summaries, load_dataset, pollute
from repro.errors import PollutedDataset, Polluter, PrePollution
from repro.frame import Column, DataFrame
from repro.kernels import kernel_mode, set_kernel_mode, use_kernels
from repro.runtime import available_backends, make_backend
from repro.security import TransportSecurity, generate_token, load_token
from repro.service import CometClient, CometService, SessionQuotas
from repro.session import (
    CheckpointVersionError,
    CleaningSession,
    SessionObserver,
    SessionState,
)
from repro.store import DirectorySessionStore, SessionStore

__version__ = "1.0.0"

__all__ = [
    "Comet",
    "CometConfig",
    "CleaningSession",
    "SessionState",
    "SessionObserver",
    "CheckpointVersionError",
    "CometService",
    "CometClient",
    "SessionQuotas",
    "SessionStore",
    "DirectorySessionStore",
    "CleaningTrace",
    "Budget",
    "CostModel",
    "paper_cost_model",
    "uniform_cost_model",
    "PrePollution",
    "PollutedDataset",
    "Polluter",
    "DataFrame",
    "Column",
    "load_dataset",
    "pollute",
    "dataset_summaries",
    "make_backend",
    "available_backends",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernels",
    "cache_stats",
    "set_cache_budget",
    "clear_shared_cache",
    "TransportSecurity",
    "generate_token",
    "load_token",
    "__version__",
]
