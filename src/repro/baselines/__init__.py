"""Evaluation baselines (§4.5).

* :class:`RandomCleaner` (RR) — random feature selection each step.
* :class:`FeatureImportanceCleaner` (FIR) — Shapley ranking on the dirty
  data, cleaned top-down.
* :class:`CometLight` (CL) — COMET's Estimator run once; the resulting
  static ranking drives all subsequent steps (with COMET's revert and
  fallback behaviour).
* :class:`ActiveClean` (AC) — gradient-based record selection per Krishnan
  et al. (VLDB 2016), adapted to the feature-wise budget accounting.
* :class:`OracleCleaner` — the step-wise local optimum used as an upper
  reference.
"""

from repro.baselines.activeclean import ActiveClean
from repro.baselines.base import BaseCleaningStrategy
from repro.baselines.comet_light import CometLight
from repro.baselines.feature_importance import FeatureImportanceCleaner
from repro.baselines.oracle import OracleCleaner
from repro.baselines.random_rec import RandomCleaner

__all__ = [
    "BaseCleaningStrategy",
    "RandomCleaner",
    "FeatureImportanceCleaner",
    "CometLight",
    "ActiveClean",
    "OracleCleaner",
]
