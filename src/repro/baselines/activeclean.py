"""AC: ActiveClean (Krishnan et al., VLDB 2016), adapted per §4.5/§5.3.

ActiveClean treats cleaning as stochastic gradient descent: records whose
loss gradients are largest are cleaned first. Following the paper's
adaptation of the authors' published code:

* the model is pre-trained on the records that are already clean (AC lacks
  gradient information before any cleaning);
* each iteration selects a cleaning-step-sized sample of dirty train
  records with probability proportional to their current gradient norms,
  cleans them **across all features**, and retrains;
* budget accounting is feature-wise: an iteration is charged the next-step
  cost of every (feature, error type) pair it touched — this is how
  record-wise cleaning "corrects different error types across multiple
  features during each cleaning step" and burns budget faster than COMET;
* the model is updated with a *stochastic gradient step* on each cleaned
  batch (decaying step size), not retrained from scratch — that is the
  published algorithm's defining mechanism and the source of the erratic
  F1 behaviour §5.3 reports;
* the reported F1 per step is that SGD-updated model's score on the test
  split;
* the test split is cleaned at the same rate (uniformly random records,
  since no gradients exist for unlabeled deployment data), keeping the
  train/test pollution symmetry of the experimental setup.

Only convex learners expose ``gradient_norms``/``sgd_step``: ``ac_svm``,
``lir``, ``lor``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseCleaningStrategy
from repro.core.trace import IterationRecord
from repro.ml.pipeline import TabularModel

__all__ = ["ActiveClean"]

_CONVEX = {"ac_svm", "lir", "lor", "svm"}


class ActiveClean(BaseCleaningStrategy):
    """Gradient-guided record-wise cleaning."""

    def __init__(self, *args, learning_rate: float = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not hasattr(self.model, "gradient_norms"):
            raise ValueError(
                "ActiveClean needs a convex learner with per-sample gradients "
                f"(one of {sorted(_CONVEX)}); got {self.algorithm_name!r}"
            )
        self.learning_rate = learning_rate
        self._fitted: TabularModel | None = None
        self._pretrain()

    def select_pair(self, baseline_f1: float):  # pragma: no cover - unused
        """Choose the next (feature, error) to clean; ``None`` stops."""
        raise NotImplementedError("ActiveClean overrides step() directly")

    def measure_f1(self, refresh: bool = False) -> float:
        """F1 of *ActiveClean's own* (SGD-updated) model on the test split."""
        if refresh or self._current_f1 is None:
            from repro.ml.metrics import f1_score

            y_true = self.dataset.test.label_array(self.dataset.label)
            pred = self._fitted.model_.predict(
                self._fitted.preprocessor_.transform(self.dataset.test)
            )
            self._current_f1 = f1_score(y_true, pred)
        return self._current_f1

    # ------------------------------------------------------------------ #
    def _pretrain(self) -> None:
        """Fit the initial model on the already-clean train records."""
        from repro.ml.preprocessing import TabularPreprocessor

        dirty_rows = self._dirty_rows(self.dataset.dirty_train)
        clean_rows = np.setdiff1d(np.arange(self.dataset.train.n_rows), dirty_rows)
        y = self.dataset.train.label_array(self.dataset.label)
        # The preprocessor must know the full frame (all categories, full
        # scaling statistics) even when the classifier only sees the clean
        # subset, so later transforms stay dimension-compatible; the model
        # reuses it pre-fit instead of refitting on the training subset.
        model = TabularModel(
            self.model,
            label=self.dataset.label,
            preprocessor=TabularPreprocessor(self.dataset.feature_names).fit(
                self.dataset.train
            ),
        )
        # Pre-training needs every class present; fall back to all records.
        if clean_rows.size >= 10 and len(np.unique(y[clean_rows])) == len(np.unique(y)):
            model.fit(self.dataset.train.take(clean_rows))
        else:
            model.fit(self.dataset.train)
        self._fitted = model

    @staticmethod
    def _dirty_rows(cells) -> np.ndarray:
        rows: set[int] = set()
        for feature, error in cells.pairs():
            rows.update(cells.rows(feature, error).tolist())
        return np.array(sorted(rows), dtype=int)

    def step(self) -> IterationRecord | None:
        """Run one cleaning iteration; ``None`` when the run is over."""
        dirty_rows = self._dirty_rows(self.dataset.dirty_train)
        if dirty_rows.size == 0 or self.budget.exhausted():
            return None
        baseline = self.measure_f1()
        batch = self._select_batch(dirty_rows)
        touched = self._touched_pairs(batch)
        cost = sum(self.cost_model.next_cost(f, e) for f, e in touched)
        if not self.budget.can_afford(cost):
            return None
        for feature, error in touched:
            self.cost_model.record_step(feature, error)
        self.budget.charge(cost)
        self._iteration += 1
        self._clean_records(batch)
        self._clean_test_records()
        for pair in touched:
            self.mark_if_clean(pair)
        # ActiveClean's model update: one SGD step on the freshly cleaned
        # batch, with a 1/√t decaying step size.
        X_batch = self._fitted.preprocessor_.transform(self.dataset.train.take(batch))
        y_batch = self.dataset.train.label_array(self.dataset.label)[batch]
        self._fitted.model_.sgd_step(
            X_batch, y_batch, lr=self.learning_rate / np.sqrt(self._iteration)
        )
        f1_after = self.measure_f1(refresh=True)
        feature, error = touched[0] if touched else ("", "")
        return IterationRecord(
            iteration=self._iteration,
            feature=feature,
            error=error,
            cost=cost,
            budget_spent=self.budget.spent,
            f1_before=baseline,
            f1_after=f1_after,
        )

    # ------------------------------------------------------------------ #
    def _select_batch(self, dirty_rows: np.ndarray) -> np.ndarray:
        """Sample dirty records proportional to their gradient norms."""
        size = min(
            self.cleaner.cells_per_step(self.dataset.train.n_rows), dirty_rows.size
        )
        X = self._fitted.preprocessor_.transform(self.dataset.train.take(dirty_rows))
        y = self.dataset.train.label_array(self.dataset.label)[dirty_rows]
        norms = self._fitted.model_.gradient_norms(X, y)
        total = norms.sum()
        if total <= 0.0 or not np.isfinite(total):
            probs = None
        else:
            # Hinge-type losses zero out gradients of well-classified
            # records; smooth with a uniform floor so sampling without
            # replacement always has enough support (AC's detector/sampler
            # mixes in uniform exploration for the same reason).
            probs = norms / total
            floor = 1.0 / (10.0 * len(probs))
            probs = probs + floor
            probs /= probs.sum()
        chosen = self._rng.choice(dirty_rows, size=size, replace=False, p=probs)
        return np.asarray(chosen, dtype=int)

    def _touched_pairs(self, batch: np.ndarray) -> list[tuple[str, str]]:
        batch_set = set(batch.tolist())
        touched = []
        for feature, error in self.dataset.dirty_train.pairs():
            rows = set(self.dataset.dirty_train.rows(feature, error).tolist())
            if rows & batch_set:
                touched.append((feature, error))
        return touched

    def _clean_records(self, batch: np.ndarray) -> None:
        """Restore ground truth for every dirty cell of the batch records.

        The in-place ``set_values`` below are copy-on-write: the working
        frames came from ``dataset.copy()``, so the caller's dataset (and
        the clean ground truth) never see these mutations.
        """
        batch_set = set(batch.tolist())
        for feature, error in self.dataset.dirty_train.pairs():
            rows = self.dataset.dirty_train.rows(feature, error)
            hit = np.array(sorted(set(rows.tolist()) & batch_set), dtype=int)
            if hit.size == 0:
                continue
            column = self.dataset.train[feature]
            clean = self.dataset.clean_train[feature]
            column.set_values(hit, clean.values[hit])
            truly_missing = hit[clean.missing_mask[hit]]
            if truly_missing.size:
                column.set_missing(truly_missing)
            self.dataset.dirty_train.remove(feature, error, hit)

    def _clean_test_records(self) -> None:
        """Clean a step-sized random sample of dirty test records."""
        dirty_rows = self._dirty_rows(self.dataset.dirty_test)
        if dirty_rows.size == 0:
            return
        size = min(
            self.cleaner.cells_per_step(self.dataset.test.n_rows), dirty_rows.size
        )
        batch = set(self._rng.choice(dirty_rows, size=size, replace=False).tolist())
        for feature, error in self.dataset.dirty_test.pairs():
            rows = self.dataset.dirty_test.rows(feature, error)
            hit = np.array(sorted(set(rows.tolist()) & batch), dtype=int)
            if hit.size == 0:
                continue
            column = self.dataset.test[feature]
            clean = self.dataset.clean_test[feature]
            column.set_values(hit, clean.values[hit])
            truly_missing = hit[clean.missing_mask[hit]]
            if truly_missing.size:
                column.set_missing(truly_missing)
            self.dataset.dirty_test.remove(feature, error, hit)
