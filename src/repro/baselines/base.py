"""Shared machinery for feature-wise cleaning baselines.

Every baseline owns a working copy of the dataset, a budget, a cost model,
and the same simulated Cleaner COMET uses, and emits the same
:class:`~repro.core.trace.CleaningTrace` so the experiments can compare
F1-per-budget curves directly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cleaning import Budget, CostModel, GroundTruthCleaner, uniform_cost_model
from repro.core.trace import CleaningTrace, IterationRecord
from repro.errors.base import ErrorType, make_error
from repro.errors.prepollution import PollutedDataset
from repro.ml.base import BaseEstimator
from repro.ml.pipeline import TabularModel
from repro.ml.registry import make_classifier

__all__ = ["BaseCleaningStrategy"]


class BaseCleaningStrategy(abc.ABC):
    """Budgeted feature-wise cleaning loop with a pluggable selection rule."""

    def __init__(
        self,
        dataset: PollutedDataset,
        algorithm: str | BaseEstimator = "svm",
        error_types=("missing",),
        budget: float = 50.0,
        cost_model: CostModel | None = None,
        step: float = 0.01,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.dataset = dataset.copy()
        self._rng = np.random.default_rng(rng)
        if isinstance(algorithm, str):
            self.algorithm_name = algorithm
            self.model = make_classifier(algorithm)
        else:
            self.algorithm_name = type(algorithm).__name__
            self.model = algorithm
        if not isinstance(error_types, (list, tuple)):
            error_types = [error_types]
        self.errors: list[ErrorType] = [
            make_error(e) if isinstance(e, str) else e for e in error_types
        ]
        self.budget = Budget(budget)
        self.cost_model = (cost_model or uniform_cost_model()).copy()
        self.cleaner = GroundTruthCleaner(step=step, rng=self._rng.integers(2**63))
        self._active: list[tuple[str, str]] = [
            (feature, error.name)
            for feature in self.dataset.feature_names
            for error in self.errors
            if error.applies_to(self.dataset.train[feature])
        ]
        self._iteration = 0
        self._current_f1: float | None = None

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def select_pair(self, baseline_f1: float) -> tuple[str, str] | None:
        """Choose the next (feature, error) to clean; ``None`` stops."""

    def run(self) -> CleaningTrace:
        """Iterate until the budget is spent or everything is clean."""
        trace = CleaningTrace(initial_f1=self.measure_f1())
        while True:
            record = self.step()
            if record is None:
                break
            trace.append(record)
        return trace

    def step(self) -> IterationRecord | None:
        """Run one cleaning iteration; ``None`` when the run is over."""
        if not self._active or self.budget.exhausted():
            return None
        baseline = self.measure_f1()
        pair = self.select_pair(baseline)
        if pair is None:
            return None
        cost = self.cost_model.next_cost(*pair)
        if not self.budget.can_afford(cost):
            return None
        self._iteration += 1
        return self.clean_pair(pair, baseline)

    def clean_pair(
        self, pair: tuple[str, str], baseline: float
    ) -> IterationRecord:
        """Charge, clean one step, measure, and mark clean when done."""
        feature, error = pair
        cost = self.cost_model.record_step(feature, error)
        self.budget.charge(cost)
        self.cleaner.clean_step(self.dataset, feature, error)
        f1_after = self.measure_f1(refresh=True)
        self.mark_if_clean(pair)
        return IterationRecord(
            iteration=self._iteration,
            feature=feature,
            error=error,
            cost=cost,
            budget_spent=self.budget.spent,
            f1_before=baseline,
            f1_after=f1_after,
        )

    # ------------------------------------------------------------------ #
    def measure_f1(self, refresh: bool = False) -> float:
        """Current model F1 on the test split (cached)."""
        if refresh or self._current_f1 is None:
            model = TabularModel(self.model, label=self.dataset.label)
            self._current_f1 = model.fit_score(self.dataset.train, self.dataset.test)
        return self._current_f1

    def mark_if_clean(self, pair: tuple[str, str]) -> None:
        """Drop the pair from the open candidates once clean."""
        feature, error = pair
        if (
            self.dataset.dirty_train.dirty_count(feature, error) == 0
            and self.dataset.dirty_test.dirty_count(feature, error) == 0
            and pair in self._active
        ):
            self._active.remove(pair)

    def open_candidates(self) -> list[tuple[str, str]]:
        """(feature, error) pairs not yet marked clean."""
        return list(self._active)

    def affordable_candidates(self) -> list[tuple[str, str]]:
        """Open candidates whose next step fits the budget."""
        return [
            pair
            for pair in self._active
            if self.budget.can_afford(self.cost_model.next_cost(*pair))
        ]
