"""CL: the light version of COMET (§4.5).

COMET's Estimator runs exactly once, on the initial dirty data, producing a
static ranked candidate list. Every subsequent step cleans the
highest-ranked candidate that is still open — with COMET's revert-to-buffer
and fallback behaviour, but without re-estimating. The ranking therefore
goes stale as the data changes, the effect §5.2 observes on EEG.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaseCleaningStrategy
from repro.cleaning import CleaningBuffer
from repro.core.config import CometConfig
from repro.core.estimator import CometEstimator
from repro.core.recommender import CometRecommender
from repro.core.trace import IterationRecord

__all__ = ["CometLight"]


class CometLight(BaseCleaningStrategy):
    """Static one-shot COMET ranking, dynamic cleaning loop."""

    def __init__(self, *args, config: CometConfig | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.config = config or CometConfig(step=self.cleaner.step)
        self.estimator = CometEstimator(
            self.model,
            label=self.dataset.label,
            config=self.config,
            rng=self._rng.integers(2**63),
        )
        self.recommender = CometRecommender(self.config)
        self.buffer = CleaningBuffer()
        self._ranking: list[tuple[str, str]] | None = None

    def _compute_ranking(self, baseline: float) -> list[tuple[str, str]]:
        """One COMET estimation pass over all open candidates."""
        error_by_name = {e.name: e for e in self.errors}
        predictions = [
            self.estimator.estimate(
                self.dataset.train,
                self.dataset.test,
                feature,
                error_by_name[error_name],
                baseline,
            )
            for feature, error_name in self._active
        ]
        scored = self.recommender.rank(predictions, baseline, self.cost_model)
        ranked = [(c.feature, c.error) for c in scored]
        # Non-positive candidates go after the scored ones, in stable order.
        ranked += [pair for pair in self._active if pair not in set(ranked)]
        return ranked

    def select_pair(self, baseline_f1: float):  # pragma: no cover - unused
        """Choose the next (feature, error) to clean; ``None`` stops."""
        raise NotImplementedError("CometLight overrides step() directly")

    def step(self) -> IterationRecord | None:
        """Run one cleaning iteration; ``None`` when the run is over."""
        if not self._active or self.budget.exhausted():
            return None
        baseline = self.measure_f1()
        if self._ranking is None:
            self._ranking = self._compute_ranking(baseline)
        self._iteration += 1
        rejected: list[tuple[str, str]] = []
        for pair in [p for p in self._ranking if p in self._active]:
            from_buffer = pair in self.buffer
            if not from_buffer and not self.budget.can_afford(
                self.cost_model.next_cost(*pair)
            ):
                continue
            cost = self._perform(pair)
            f1_after = self.measure_f1(refresh=True)
            self.recommender.record_outcome(*pair, f1_after)
            if f1_after >= baseline - 1e-12:
                self.mark_if_clean(pair)
                return IterationRecord(
                    iteration=self._iteration,
                    feature=pair[0],
                    error=pair[1],
                    cost=cost,
                    budget_spent=self.budget.spent,
                    f1_before=baseline,
                    f1_after=f1_after,
                    from_buffer=from_buffer,
                    rejected=list(rejected),
                )
            self.cleaner.revert(self.dataset, self._last_action)
            self.buffer.put(self._last_action)
            self._current_f1 = baseline
            rejected.append(pair)
        return self._fallback(baseline)

    def _perform(self, pair: tuple[str, str]) -> float:
        buffered = self.buffer.pop(*pair)
        if buffered is not None:
            self.cleaner.apply(self.dataset, buffered)
            self._last_action = buffered
            return 0.0
        cost = self.cost_model.record_step(*pair)
        self.budget.charge(cost)
        self._last_action = self.cleaner.clean_step(self.dataset, *pair)
        return cost

    def _fallback(self, baseline: float) -> IterationRecord | None:
        affordable = [
            pair
            for pair in self._active
            if pair in self.buffer
            or self.budget.can_afford(self.cost_model.next_cost(*pair))
        ]
        pair = self.recommender.fallback_candidate(affordable)
        if pair is None:
            return None
        cost = self._perform(pair)
        f1_after = self.measure_f1(refresh=True)
        self.recommender.record_outcome(*pair, f1_after)
        self.mark_if_clean(pair)
        return IterationRecord(
            iteration=self._iteration,
            feature=pair[0],
            error=pair[1],
            cost=cost,
            budget_spent=self.budget.spent,
            f1_before=baseline,
            f1_after=f1_after,
            used_fallback=True,
        )
