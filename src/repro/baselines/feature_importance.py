"""FIR: feature-importance-based recommendations (§4.5).

Shapley values are computed once on the dirty input data; the
highest-ranked feature that is still polluted is cleaned until the Cleaner
marks it fully clean, then the ranking advances — a static strategy whose
information goes stale as cleaning progresses (the effect §5.4 discusses).
"""

from __future__ import annotations

from repro.baselines.base import BaseCleaningStrategy
from repro.explain import shapley_values
from repro.ml.pipeline import TabularModel

__all__ = ["FeatureImportanceCleaner"]


class FeatureImportanceCleaner(BaseCleaningStrategy):
    """Clean features top-down by dirty-data Shapley importance."""

    def __init__(self, *args, n_permutations: int = 6, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.n_permutations = n_permutations
        self._ranking: list[str] | None = None

    def _compute_ranking(self) -> list[str]:
        model = TabularModel(self.model, label=self.dataset.label)
        model.fit(self.dataset.train)
        values = shapley_values(
            model,
            self.dataset.test,
            n_permutations=self.n_permutations,
            rng=self._rng.integers(2**63),
        )
        return sorted(values, key=lambda f: values[f], reverse=True)

    def select_pair(self, baseline_f1: float):
        """Choose the next (feature, error) to clean; ``None`` stops."""
        if self._ranking is None:
            self._ranking = self._compute_ranking()
        affordable = set(self.affordable_candidates())
        if not affordable:
            return None
        for feature in self._ranking:
            # Within a feature, clean its error types in registry order.
            for pair in sorted(affordable):
                if pair[0] == feature:
                    return pair
        # Features outside the ranking (should not happen) — take anything.
        return sorted(affordable)[0]
