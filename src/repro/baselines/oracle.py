"""Oracle: the step-wise local optimum (§4.5).

At every step the Oracle actually tries each open candidate — cleans it on
a scratch copy, measures the realized F1 — and commits the one with the
best (F1 gain / cost) ratio. Greedy, not globally optimal (the paper notes
COMET can beat it on stretches), but a strong upper reference on average.
"""

from __future__ import annotations

from repro.baselines.base import BaseCleaningStrategy

__all__ = ["OracleCleaner"]


class OracleCleaner(BaseCleaningStrategy):
    """Greedy lookahead over realized cleaning gains."""

    def select_pair(self, baseline_f1: float):
        """Choose the next (feature, error) to clean; ``None`` stops."""
        affordable = self.affordable_candidates()
        if not affordable:
            return None
        best_pair = None
        best_ratio = -float("inf")
        for pair in affordable:
            ratio = self._realized_ratio(pair, baseline_f1)
            if ratio > best_ratio:
                best_ratio = ratio
                best_pair = pair
        return best_pair

    def _realized_ratio(self, pair: tuple[str, str], baseline_f1: float) -> float:
        """Gain-per-cost of actually cleaning ``pair`` (on a scratch copy)."""
        feature, error = pair
        scratch = self.dataset.copy()
        action = self.cleaner.clean_step(scratch, feature, error)
        from repro.ml.pipeline import TabularModel

        model = TabularModel(self.model, label=scratch.label)
        f1 = model.fit_score(scratch.train, scratch.test)
        cost = self.cost_model.next_cost(feature, error)
        return (f1 - baseline_f1) / max(cost, 0.25)
