"""RR: random cleaning recommendations (§4.5).

Each step picks a uniformly random candidate among those still marked to be
cleaned. The experiments average five RR runs per pre-pollution setting;
that repetition lives in :mod:`repro.experiments`.
"""

from __future__ import annotations

__all__ = ["RandomCleaner"]

from repro.baselines.base import BaseCleaningStrategy


class RandomCleaner(BaseCleaningStrategy):
    """The non-strategic contrast baseline."""

    def select_pair(self, baseline_f1: float):
        """Choose the next (feature, error) to clean; ``None`` stops."""
        affordable = self.affordable_candidates()
        if not affordable:
            return None
        return affordable[self._rng.integers(len(affordable))]
