"""Bayesian regression used by COMET's Estimator (E2).

The Estimator fits a Bayesian regression to the (pollution level → F1)
measurements and extrapolates one cleaning step backwards; the predictive
credible interval supplies the uncertainty term of the Recommender score.
"""

from repro.bayes.linear_regression import BayesianLinearRegression, polynomial_design

__all__ = ["BayesianLinearRegression", "polynomial_design"]
