"""Conjugate Bayesian linear regression with evidence-approximation
hyperparameters (the from-scratch counterpart of sklearn's BayesianRidge)."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["BayesianLinearRegression", "polynomial_design"]


def polynomial_design(x: np.ndarray, degree: int = 1) -> np.ndarray:
    """Design matrix ``[1, x, x², …]`` for a scalar regressor."""
    x = np.asarray(x, dtype=float).ravel()
    return np.vander(x, N=degree + 1, increasing=True)


class BayesianLinearRegression:
    """Gaussian-prior linear regression with closed-form posterior.

    Model: ``y = Xw + ε``, ``w ~ N(0, α⁻¹I)``, ``ε ~ N(0, β⁻¹)``.
    ``α`` and ``β`` are optimized by MacKay's fixed-point evidence updates,
    which keeps the model well behaved on the three-to-five point series the
    COMET Estimator feeds it.

    Parameters
    ----------
    max_iter:
        Evidence-update iterations.
    alpha_init / beta_init:
        Starting precisions.
    """

    def __init__(
        self,
        max_iter: int = 50,
        tol: float = 1e-6,
        alpha_init: float = 1.0,
        beta_init: float = 10.0,
    ) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_init = alpha_init
        self.beta_init = beta_init

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BayesianLinearRegression":
        """Fit on the given training data and return ``self``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        n, d = X.shape
        alpha, beta = self.alpha_init, self.beta_init
        eye = np.eye(d)
        gram = X.T @ X
        Xty = X.T @ y
        eigvals = np.linalg.eigvalsh(gram)
        mean = np.zeros(d)
        for __ in range(self.max_iter):
            cov_inv = alpha * eye + beta * gram
            cov = np.linalg.inv(cov_inv)
            mean = beta * cov @ Xty
            gamma = float(np.sum(beta * eigvals / (alpha + beta * eigvals)))
            alpha_new = gamma / max(float(mean @ mean), 1e-12)
            residual = y - X @ mean
            denom = max(float(residual @ residual), 1e-12)
            beta_new = max(n - gamma, 1e-12) / denom
            alpha_new = float(np.clip(alpha_new, 1e-10, 1e10))
            beta_new = float(np.clip(beta_new, 1e-10, 1e10))
            if abs(alpha_new - alpha) < self.tol * alpha and abs(beta_new - beta) < self.tol * beta:
                alpha, beta = alpha_new, beta_new
                break
            alpha, beta = alpha_new, beta_new
        self.alpha_ = alpha
        self.beta_ = beta
        self.coef_ = mean
        self.cov_ = np.linalg.inv(alpha * eye + beta * gram)
        return self

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior-predictive mean (and optionally standard deviation)."""
        X = np.asarray(X, dtype=float)
        mean = X @ self.coef_
        if not return_std:
            return mean
        var = 1.0 / self.beta_ + np.einsum("ij,jk,ik->i", X, self.cov_, X)
        return mean, np.sqrt(np.maximum(var, 0.0))

    def credible_interval(
        self, X: np.ndarray, level: float = 0.95
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Predictive mean with symmetric ``level`` credible bounds."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        mean, std = self.predict(X, return_std=True)
        z = stats.norm.ppf(0.5 + level / 2.0)
        return mean, mean - z * std, mean + z * std
