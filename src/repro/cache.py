"""Process-wide, size-accounted cache shared by every memoization layer.

Before this module each memo owned its own dictionary with its own ad-hoc
bound: the featurization fit/transform memos in ``repro.ml.preprocessing``
counted entries (and the transform memo bytes, with hard-coded limits),
the FD pair-stats cache in ``repro.detect.fd`` counted entries only, and
none of them were visible to — let alone governed by — the service's
:class:`~repro.service.quotas.SessionQuotas`. That is fine for one sweep
and wrong for a long-lived multi-tenant service: caches must be *shared*
(identical CleanML column tokens across sessions hit the same entries)
and *bounded in bytes* process-wide.

:class:`SharedCache` is that single layer. Entries live in namespaces
(``"fit"``, ``"transform"``, ``"blocks"``, ``"fd"``, …), every entry is
charged its payload ``nbytes`` plus a fixed per-key overhead, and one
global LRU order spans all namespaces. Eviction — never an error — keeps
the total under the byte budget:

- the LRU walk first skips entries whose namespace is at or below its
  *floor* (a small per-namespace reservation, so pressure from one
  namespace cannot completely starve another);
- if respecting floors cannot get under the budget, a second pass evicts
  in pure LRU order — the budget is a hard bound, floors are best-effort;
- entries larger than an admission cap (a fraction of the budget) are
  rejected outright and counted, not cached.

Per-namespace counters (hits, misses, puts, evictions, rejected, bytes,
entries) plus the global totals are exposed via :func:`cache_stats`,
which the service's ``status`` verb and the benchmarks report. The
budget is wired to ``SessionQuotas.max_cache_bytes`` (and ``serve
--max-cache-bytes``) by the service layer; see :func:`set_cache_budget`.

Caching here never changes results: callers key entries by content-
proving signatures (column identity tokens or delta signatures, see
:mod:`repro.frame.column`), so a hit returns exactly what a recompute
would. Eviction only costs a future recompute.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

__all__ = [
    "SharedCache",
    "shared_cache",
    "cache_stats",
    "set_cache_budget",
    "clear_shared_cache",
    "DEFAULT_MAX_BYTES",
    "KEY_OVERHEAD_BYTES",
]

#: Default process-wide budget: roomy for a workstation sweep, small
#: enough that a long-lived service cannot hoard matrices unnoticed.
DEFAULT_MAX_BYTES = 128 * 1024 * 1024

#: Flat per-entry charge covering the key tuple, the OrderedDict slot,
#: and bookkeeping — so even nbytes=0 entries (small fit tuples) cannot
#: grow the cache without limit.
KEY_OVERHEAD_BYTES = 256

#: No single entry may take more than this fraction of the budget; a
#: matrix that large would evict everything else for one once-used value.
_ADMISSION_FRACTION = 8


def estimate_nbytes(value: Any) -> int:
    """Byte estimate for a cached payload (arrays exactly, rest coarsely)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(estimate_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v) for v in value.values())
    arrays = getattr(value, "__dict__", None)
    if arrays:
        return sum(
            int(v.nbytes) for v in arrays.values() if isinstance(v, np.ndarray)
        )
    return 64


def _zero_namespace_stats() -> dict[str, int]:
    return {
        "hits": 0,
        "misses": 0,
        "puts": 0,
        "evictions": 0,
        "rejected": 0,
        "bytes": 0,
        "entries": 0,
    }


class SharedCache:
    """A namespaced LRU cache with byte accounting and floor-aware eviction.

    Thread-safe behind a single lock: sessions in a service run on
    scheduler worker threads but share this one cache, and the lock also
    makes counter read-and-reset atomic (a reset can no longer lose a
    racing update, which the per-module caches it replaces could).
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._lock = threading.RLock()
        #: (namespace, key) → (value, charged cost) in LRU order.
        self._entries: OrderedDict[tuple[str, Hashable], tuple[Any, int]] = (
            OrderedDict()
        )
        self._max_bytes = int(max_bytes)
        self._floors: dict[str, int] = {}
        self._stats: dict[str, dict[str, int]] = {}
        self._bytes: dict[str, int] = {}
        self._total_bytes = 0

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @property
    def max_bytes(self) -> int:
        """The process-wide byte budget currently enforced."""
        with self._lock:
            return self._max_bytes

    def register(self, namespace: str, floor_bytes: int = 0) -> str:
        """Declare a namespace (idempotent) with an eviction floor.

        The floor is a best-effort reservation: global pressure prefers
        evicting namespaces that sit above their floor. Re-registering
        keeps the larger floor, so import order cannot shrink one.
        """
        if floor_bytes < 0:
            raise ValueError(f"floor_bytes must be >= 0, got {floor_bytes}")
        with self._lock:
            self._floors[namespace] = max(
                self._floors.get(namespace, 0), int(floor_bytes)
            )
            self._stats.setdefault(namespace, _zero_namespace_stats())
            self._bytes.setdefault(namespace, 0)
        return namespace

    def configure(
        self,
        max_bytes: int | None = None,
        floors: dict[str, int] | None = None,
    ) -> None:
        """Change the budget and/or floors; evicts immediately if shrunk."""
        with self._lock:
            if max_bytes is not None:
                if max_bytes <= 0:
                    raise ValueError(
                        f"max_bytes must be positive, got {max_bytes}"
                    )
                self._max_bytes = int(max_bytes)
            if floors:
                for namespace, floor in floors.items():
                    if floor < 0:
                        raise ValueError(
                            f"floor for {namespace!r} must be >= 0, got {floor}"
                        )
                    self._floors[namespace] = int(floor)
                    self._stats.setdefault(namespace, _zero_namespace_stats())
                    self._bytes.setdefault(namespace, 0)
            self._evict_to_budget()

    # ------------------------------------------------------------------ #
    # the cache protocol
    # ------------------------------------------------------------------ #
    def get(self, namespace: str, key: Hashable) -> Any | None:
        """The cached value, or ``None``; counts the hit/miss either way."""
        full_key = (namespace, key)
        with self._lock:
            stats = self._namespace_stats(namespace)
            entry = self._entries.get(full_key)
            if entry is None:
                stats["misses"] += 1
                return None
            self._entries.move_to_end(full_key)
            stats["hits"] += 1
            return entry[0]

    def put(
        self, namespace: str, key: Hashable, value: Any, nbytes: int | None = None
    ) -> bool:
        """Admit ``value`` under ``(namespace, key)``; returns False if
        rejected (oversized). Eviction, never an error, restores the
        budget afterwards."""
        if nbytes is None:
            nbytes = estimate_nbytes(value)
        cost = int(nbytes) + KEY_OVERHEAD_BYTES
        full_key = (namespace, key)
        with self._lock:
            stats = self._namespace_stats(namespace)
            if cost > max(self._max_bytes // _ADMISSION_FRACTION, 1):
                stats["rejected"] += 1
                return False
            existing = self._entries.get(full_key)
            if existing is not None:
                self._charge(namespace, -existing[1])
            self._entries[full_key] = (value, cost)
            self._entries.move_to_end(full_key)
            self._charge(namespace, cost)
            stats["puts"] += 1
            self._evict_to_budget()
            return True

    def clear(self, namespace: str | None = None, counters: bool = True) -> None:
        """Drop entries (one namespace or all); optionally zero counters."""
        with self._lock:
            if namespace is None:
                self._entries.clear()
                for ns in self._bytes:
                    self._bytes[ns] = 0
                self._total_bytes = 0
                if counters:
                    for ns in self._stats:
                        self._stats[ns] = _zero_namespace_stats()
                return
            doomed = [k for k in self._entries if k[0] == namespace]
            for full_key in doomed:
                __, cost = self._entries.pop(full_key)
                self._charge(namespace, -cost)
            if counters:
                self._stats[namespace] = _zero_namespace_stats()

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self, namespace: str | None = None) -> dict:
        """Counters and sizes — per namespace, or the full picture."""
        with self._lock:
            if namespace is not None:
                out = dict(self._namespace_stats(namespace))
                out["bytes"] = self._bytes.get(namespace, 0)
                out["entries"] = sum(
                    1 for k in self._entries if k[0] == namespace
                )
                out["floor_bytes"] = self._floors.get(namespace, 0)
                return out
            namespaces = {}
            for ns in sorted(self._stats):
                entry = dict(self._stats[ns])
                entry["bytes"] = self._bytes.get(ns, 0)
                entry["entries"] = sum(1 for k in self._entries if k[0] == ns)
                entry["floor_bytes"] = self._floors.get(ns, 0)
                namespaces[ns] = entry
            return {
                "max_bytes": self._max_bytes,
                "total_bytes": self._total_bytes,
                "entries": len(self._entries),
                "evictions": sum(s["evictions"] for s in self._stats.values()),
                "namespaces": namespaces,
            }

    def total_bytes(self) -> int:
        """Charged bytes currently held (payload + key overhead)."""
        with self._lock:
            return self._total_bytes

    @property
    def lock(self) -> threading.RLock:
        """The cache's lock — callers co-locate their own counters under
        it so read-and-reset stays atomic against puts (see
        ``repro.ml.preprocessing`` / ``repro.detect.fd``)."""
        return self._lock

    # ------------------------------------------------------------------ #
    # internals (lock held)
    # ------------------------------------------------------------------ #
    def _namespace_stats(self, namespace: str) -> dict[str, int]:
        stats = self._stats.get(namespace)
        if stats is None:
            stats = self._stats[namespace] = _zero_namespace_stats()
            self._bytes.setdefault(namespace, 0)
        return stats

    def _charge(self, namespace: str, delta: int) -> None:
        self._bytes[namespace] = self._bytes.get(namespace, 0) + delta
        self._total_bytes += delta
        stats = self._namespace_stats(namespace)
        stats["bytes"] = self._bytes[namespace]

    def _evict_to_budget(self) -> None:
        if self._total_bytes <= self._max_bytes:
            return
        # First pass: LRU order, but spare namespaces at/below their
        # floor so one namespace's burst cannot starve the others.
        for full_key in list(self._entries):
            if self._total_bytes <= self._max_bytes:
                return
            namespace = full_key[0]
            floor = self._floors.get(namespace, 0)
            if self._bytes.get(namespace, 0) <= floor:
                continue
            self._evict_one(full_key)
        # Second pass: the budget is a hard bound — floors yield.
        for full_key in list(self._entries):
            if self._total_bytes <= self._max_bytes:
                return
            self._evict_one(full_key)

    def _evict_one(self, full_key: tuple[str, Hashable]) -> None:
        __, cost = self._entries.pop(full_key)
        namespace = full_key[0]
        self._charge(namespace, -cost)
        self._namespace_stats(namespace)["evictions"] += 1


# ---------------------------------------------------------------------- #
# the process-wide instance
# ---------------------------------------------------------------------- #
_SHARED = SharedCache()


def shared_cache() -> SharedCache:
    """The process-wide cache every memoization layer shares."""
    return _SHARED


def cache_stats() -> dict:
    """Global + per-namespace counters of the shared cache (the service's
    ``status`` verb reports this payload verbatim)."""
    return _SHARED.stats()


def set_cache_budget(
    max_bytes: int | None = None, floors: dict[str, int] | None = None
) -> None:
    """Set the process-wide byte budget (and optional per-namespace
    floors); over-budget entries are evicted immediately. ``None`` leaves
    the current budget untouched."""
    _SHARED.configure(max_bytes=max_bytes, floors=floors)


def clear_shared_cache(namespace: str | None = None) -> None:
    """Drop cached entries (one namespace, or everything) and counters."""
    _SHARED.clear(namespace)
