"""Cleaning substrate: cost models (§4.2), budget accounting, the simulated
ground-truth Cleaner, and the cleaning buffer used for reverts (§3.3)."""

from repro.cleaning.buffer import CleaningBuffer
from repro.cleaning.cleaner import CleaningAction, GroundTruthCleaner
from repro.cleaning.cost import (
    Budget,
    ConstantCost,
    CostFunction,
    CostModel,
    LinearCost,
    OneShotCost,
    paper_cost_model,
    uniform_cost_model,
)

__all__ = [
    "Budget",
    "CostFunction",
    "ConstantCost",
    "OneShotCost",
    "LinearCost",
    "CostModel",
    "paper_cost_model",
    "uniform_cost_model",
    "CleaningAction",
    "GroundTruthCleaner",
    "CleaningBuffer",
]
