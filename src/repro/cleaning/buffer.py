"""The cleaning buffer (§3.3, step D).

When a cleaning step decreases prediction accuracy, COMET reverts the data
to its pre-cleaning state but *retains the cleaned data* in a buffer. If the
Recommender later selects the same (feature, error) again, the buffered
cleaning is replayed instead of paying the Cleaner for new work.
"""

from __future__ import annotations

from repro.cleaning.cleaner import CleaningAction

__all__ = ["CleaningBuffer"]


class CleaningBuffer:
    """Holds reverted cleaning steps keyed by (feature, error)."""

    def __init__(self) -> None:
        self._actions: dict[tuple[str, str], list[CleaningAction]] = {}

    def put(self, action: CleaningAction) -> None:
        """Store a reverted cleaning action for later replay."""
        key = (action.feature, action.error)
        self._actions.setdefault(key, []).append(action)

    def pop(self, feature: str, error: str) -> CleaningAction | None:
        """Remove and return the oldest buffered step, or ``None``."""
        key = (feature, error)
        actions = self._actions.get(key)
        if not actions:
            return None
        action = actions.pop(0)
        if not actions:
            del self._actions[key]
        return action

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._actions

    def __len__(self) -> int:
        return sum(len(v) for v in self._actions.values())
