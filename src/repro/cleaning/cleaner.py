"""The simulated Cleaner: restores ground-truth values one step at a time.

The paper's Cleaner is a domain expert or cleaning algorithm; in the
experiments it is simulated with the ground-truth clean dataset (exactly as
the paper does for its pre-polluted and CleanML datasets). A cleaning step
restores up to "1 % of the rows" per split, preferring the cells the
Polluter flagged in the recommendation, then other dirty cells, then — if
the feature has fewer dirty cells than a step — random already-clean cells
(which cost effort but change nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors.prepollution import PollutedDataset
from repro.frame import Column

__all__ = ["CleaningAction", "GroundTruthCleaner"]


@dataclass
class CleaningAction:
    """Everything needed to revert or re-apply one cleaning step."""

    feature: str
    error: str
    train_rows: np.ndarray
    test_rows: np.ndarray
    train_before: Column
    test_before: Column
    train_after: Column
    test_after: Column
    #: Rows removed from the dirty bookkeeping, per split.
    dirty_train_removed: np.ndarray
    dirty_test_removed: np.ndarray


class GroundTruthCleaner:
    """Cleans a :class:`PollutedDataset` against its clean ground truth.

    Parameters
    ----------
    step:
        Cleaning step size as a fraction of each split (1 % in the paper).
    """

    def __init__(self, step: float = 0.01, rng: np.random.Generator | int | None = None) -> None:
        if not 0.0 < step <= 1.0:
            raise ValueError(f"step must be in (0, 1], got {step}")
        self.step = step
        self._rng = np.random.default_rng(rng)

    def cells_per_step(self, n_rows: int) -> int:
        """Number of cells one cleaning step covers."""
        return max(1, int(round(self.step * n_rows)))

    def clean_step(
        self,
        dataset: PollutedDataset,
        feature: str,
        error: str,
        priority_train_rows: np.ndarray | None = None,
    ) -> CleaningAction:
        """Perform one cleaning step on ``(feature, error)`` in place."""
        train_rows, dirty_train_removed = self._select_rows(
            dataset.dirty_train.rows(feature, error),
            dataset.train.n_rows,
            self.cells_per_step(dataset.train.n_rows),
            priority_train_rows,
        )
        test_rows, dirty_test_removed = self._select_rows(
            dataset.dirty_test.rows(feature, error),
            dataset.test.n_rows,
            self.cells_per_step(dataset.test.n_rows),
            None,
        )
        # O(1) COW snapshots: the in-place restore below materializes
        # private arrays before writing, so the before/after images (and
        # any E1 task frames still sharing this column) stay intact.
        train_before = dataset.train[feature].copy()
        test_before = dataset.test[feature].copy()
        self._restore(dataset.train[feature], dataset.clean_train[feature], train_rows)
        self._restore(dataset.test[feature], dataset.clean_test[feature], test_rows)
        dataset.dirty_train.remove(feature, error, dirty_train_removed)
        dataset.dirty_test.remove(feature, error, dirty_test_removed)
        return CleaningAction(
            feature=feature,
            error=error,
            train_rows=train_rows,
            test_rows=test_rows,
            train_before=train_before,
            test_before=test_before,
            train_after=dataset.train[feature].copy(),
            test_after=dataset.test[feature].copy(),
            dirty_train_removed=dirty_train_removed,
            dirty_test_removed=dirty_test_removed,
        )

    def revert(self, dataset: PollutedDataset, action: CleaningAction) -> None:
        """Undo a cleaning step (data and dirty bookkeeping)."""
        dataset.train.set_column(action.train_before.copy())
        dataset.test.set_column(action.test_before.copy())
        dataset.dirty_train.add(action.feature, action.error, action.dirty_train_removed)
        dataset.dirty_test.add(action.feature, action.error, action.dirty_test_removed)

    def apply(self, dataset: PollutedDataset, action: CleaningAction) -> None:
        """Re-apply a previously reverted cleaning step from the buffer."""
        dataset.train.set_column(action.train_after.copy())
        dataset.test.set_column(action.test_after.copy())
        dataset.dirty_train.remove(action.feature, action.error, action.dirty_train_removed)
        dataset.dirty_test.remove(action.feature, action.error, action.dirty_test_removed)

    # ------------------------------------------------------------------ #
    def _select_rows(
        self,
        dirty_rows: np.ndarray,
        n_rows: int,
        n_cells: int,
        priority_rows: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pick the rows a step cleans: flagged dirty → other dirty → random.

        Returns (all selected rows, the dirty subset among them).
        """
        dirty_set = set(dirty_rows.tolist())
        selected: list[int] = []
        if priority_rows is not None:
            flagged_dirty = [int(r) for r in priority_rows if int(r) in dirty_set]
            self._rng.shuffle(flagged_dirty)
            selected.extend(flagged_dirty[:n_cells])
        if len(selected) < n_cells:
            remaining = [r for r in dirty_set if r not in set(selected)]
            self._rng.shuffle(remaining)
            selected.extend(remaining[: n_cells - len(selected)])
        if len(selected) < n_cells:
            pool = np.setdiff1d(np.arange(n_rows), np.array(selected, dtype=int))
            extra = self._rng.choice(
                pool, size=min(n_cells - len(selected), len(pool)), replace=False
            )
            selected.extend(int(r) for r in extra)
        rows = np.array(sorted(selected), dtype=int)
        dirty_selected = np.array(sorted(set(selected) & dirty_set), dtype=int)
        return rows, dirty_selected

    @staticmethod
    def _restore(column: Column, clean_column: Column, rows: np.ndarray) -> None:
        """Copy ground-truth cells into ``column`` (in place, via COW)."""
        if rows.size:
            column.set_values(rows, clean_column.values[rows])
            # Ground truth may itself contain genuine missing cells (CleanML
            # Titanic); propagate the clean missing mask.
            truly_missing = rows[clean_column.missing_mask[rows]]
            if truly_missing.size:
                column.set_missing(truly_missing)
