"""Cleaning cost models and budget accounting (§4.2).

The paper pairs error types with cost shapes: categorical shifts and
scaling errors cost a constant unit per step; missing values have a
one-shot cost (2 units for the first step — detection plus a column-wide
imputation setup — then free); Gaussian noise costs linearly more with
every step (subtle deviations get harder to find).
"""

from __future__ import annotations

import abc

__all__ = [
    "CostFunction",
    "ConstantCost",
    "OneShotCost",
    "LinearCost",
    "CostModel",
    "Budget",
    "paper_cost_model",
    "uniform_cost_model",
]


class CostFunction(abc.ABC):
    """Maps "how many steps were already performed" to the next step's cost."""

    @abc.abstractmethod
    def cost(self, steps_done: int) -> float:
        """Cost of the ``steps_done + 1``-th cleaning step."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ConstantCost(CostFunction):
    """Every step costs the same ``unit``."""

    def __init__(self, unit: float = 1.0) -> None:
        if unit <= 0:
            raise ValueError("unit must be positive")
        self.unit = unit

    def cost(self, steps_done: int) -> float:
        """Cost of the ``steps_done + 1``-th cleaning step."""
        return self.unit


class OneShotCost(CostFunction):
    """High initial cost, free afterwards (missing-value imputation)."""

    def __init__(self, initial: float = 2.0, subsequent: float = 0.0) -> None:
        if initial <= 0 or subsequent < 0:
            raise ValueError("initial must be positive, subsequent non-negative")
        self.initial = initial
        self.subsequent = subsequent

    def cost(self, steps_done: int) -> float:
        """Cost of the ``steps_done + 1``-th cleaning step."""
        return self.initial if steps_done == 0 else self.subsequent


class LinearCost(CostFunction):
    """Each step costs ``increment`` more than the previous one."""

    def __init__(self, initial: float = 1.0, increment: float = 1.0) -> None:
        if initial <= 0 or increment < 0:
            raise ValueError("initial must be positive, increment non-negative")
        self.initial = initial
        self.increment = increment

    def cost(self, steps_done: int) -> float:
        """Cost of the ``steps_done + 1``-th cleaning step."""
        return self.initial + self.increment * steps_done


class CostModel:
    """Per-(feature, error) cleaning cost with step history.

    Parameters
    ----------
    by_error:
        Error-type name → :class:`CostFunction`. Unlisted error types fall
        back to ``default``.
    """

    def __init__(
        self,
        by_error: dict[str, CostFunction] | None = None,
        default: CostFunction | None = None,
    ) -> None:
        self.by_error = dict(by_error or {})
        self.default = default or ConstantCost()
        self._steps: dict[tuple[str, str], int] = {}

    def _function(self, error: str) -> CostFunction:
        return self.by_error.get(error, self.default)

    def next_cost(self, feature: str, error: str) -> float:
        """Cost of the next cleaning step on ``(feature, error)``."""
        return self._function(error).cost(self._steps.get((feature, error), 0))

    def record_step(self, feature: str, error: str) -> float:
        """Register one performed step and return what it cost."""
        done = self._steps.get((feature, error), 0)
        price = self._function(error).cost(done)
        self._steps[(feature, error)] = done + 1
        return price

    def steps_done(self, feature: str, error: str) -> int:
        """Cleaning steps already recorded for the pair."""
        return self._steps.get((feature, error), 0)

    def copy(self) -> "CostModel":
        """Deep copy (independent of the original)."""
        dup = CostModel(self.by_error, self.default)
        dup._steps = dict(self._steps)
        return dup


class Budget:
    """A spend-down cleaning budget (the paper caps runs at 50 units)."""

    def __init__(self, total: float = 50.0) -> None:
        if total <= 0:
            raise ValueError("total budget must be positive")
        self.total = total
        self.spent = 0.0

    @property
    def remaining(self) -> float:
        """Budget units still available."""
        return self.total - self.spent

    def can_afford(self, price: float) -> bool:
        """Whether ``price`` fits in the remaining budget."""
        return price <= self.remaining + 1e-9

    def charge(self, price: float) -> None:
        """Spend ``price`` from the budget (raises if unaffordable)."""
        if price < 0:
            raise ValueError("cannot charge a negative price")
        if not self.can_afford(price):
            raise ValueError(
                f"insufficient budget: {price} > remaining {self.remaining}"
            )
        self.spent += price

    def exhausted(self, min_price: float = 0.0) -> bool:
        """True when ``min_price`` (or, with the default, anything at all)
        can no longer be paid."""
        if min_price > 0.0:
            return not self.can_afford(min_price)
        return self.remaining <= 1e-9

    def __repr__(self) -> str:
        return f"Budget(spent={self.spent:g}, total={self.total:g})"


def paper_cost_model() -> CostModel:
    """The multi-error scenario cost assignment of §4.2."""
    return CostModel(
        by_error={
            "categorical": ConstantCost(1.0),
            "scaling": ConstantCost(1.0),
            "missing": OneShotCost(2.0, 0.0),
            "noise": LinearCost(1.0, 1.0),
        }
    )


def uniform_cost_model() -> CostModel:
    """Single-error scenario: every step costs one unit (§4.2)."""
    return CostModel(default=ConstantCost(1.0))
