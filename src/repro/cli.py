"""Command-line interface: run cleaning comparisons without writing code.

Examples::

    python -m repro list
    python -m repro run --dataset cmc --algorithm svm --errors missing \
        --methods comet rr fir --budget 10 --rows 240
    python -m repro recommend --dataset churn --algorithm gb --errors missing
    python -m repro serve --backend thread --jobs 4 < requests.jsonl
    python -m repro serve --port 8765 --workers 4 --max-sessions 8
    python -m repro serve --port 8766 --http
    python -m repro serve --port 8765 --state-dir /var/lib/repro/sessions
    python -m repro serve --host 0.0.0.0 --port 8765 \
        --auth-token-file /etc/repro/token --tls-cert cert.pem --tls-key key.pem
    python -m repro worker --connect 127.0.0.1:9000
    python -m repro worker --listen 0.0.0.0:9001 --auth-token-file /etc/repro/token
    python -m repro resume --checkpoint session.ckpt
    python -m repro sessions list /var/lib/repro/sessions
    python -m repro sessions migrate old-session.ckpt
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import Comet, CometConfig
from repro.datasets import DATASET_NAMES, dataset_summaries
from repro.errors import error_registry
from repro.experiments import (
    Configuration,
    METHOD_NAMES,
    average_curve,
    build_polluted,
    format_series,
    format_table,
    run_method,
)
from repro.ml import available_algorithms
from repro.runtime import available_backends
from repro.service import (
    CometHTTPServer,
    CometService,
    CometTCPServer,
    SessionQuotas,
    serve_stream,
)
from repro.session import CleaningSession

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMET reproduction: step-by-step cleaning recommendations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list datasets, algorithms, error types, methods")

    run = sub.add_parser("run", help="compare cleaning methods on one configuration")
    _common_args(run)
    run.add_argument(
        "--methods", nargs="+", default=["comet", "rr"], choices=METHOD_NAMES,
        help="cleaning methods to compare",
    )
    run.add_argument("--seed", type=int, default=0)

    rec = sub.add_parser(
        "recommend", help="print COMET's next-k cleaning recommendations"
    )
    _common_args(rec)
    rec.add_argument("-k", type=int, default=3, help="number of recommendations")
    rec.add_argument("--seed", type=int, default=0)

    srv = sub.add_parser(
        "serve",
        help="serve many named cleaning sessions over JSON lines "
             "(stdin/stdout by default; --port for TCP, --http for HTTP)",
    )
    srv.add_argument(
        "--no-checkpoint-io", action="store_true",
        help="disable the checkpoint verbs (file write / pickle load at "
             "request-supplied paths) for less-trusted request streams",
    )
    srv.add_argument(
        "--state-dir", default=None,
        help="durable session store directory: sessions are persisted on "
             "iteration boundaries and auto-resumed after a restart "
             "(created if missing; inspect with 'repro sessions')",
    )
    srv.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for networked serving (default: loopback only)",
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="serve line-delimited JSON over TCP on this port instead of "
             "stdio (0 picks an ephemeral port, printed at startup)",
    )
    srv.add_argument(
        "--http", action="store_true",
        help="serve the HTTP/1.1 adapter (POST /rpc, POST /<verb>, "
             "GET /status) instead of raw JSON lines; requires --port",
    )
    srv.add_argument(
        "--workers", type=_positive_int, default=4,
        help="session-scheduler worker threads: how many sweep verbs "
             "(recommend/step/run) may iterate concurrently "
             "(status/checkpoint never queue behind them)",
    )
    srv.add_argument(
        "--max-sessions", type=_positive_int, default=None,
        help="quota: concurrent sessions one client may hold open",
    )
    srv.add_argument(
        "--max-iterations", type=_positive_int, default=None,
        help="quota: estimation sweeps one session may consume in total",
    )
    srv.add_argument(
        "--max-seconds", type=_positive_float, default=None,
        help="quota: accumulated engine wall-clock seconds per session",
    )
    srv.add_argument(
        "--max-cache-bytes", type=_positive_int, default=None,
        help="quota: byte budget for the process-wide featurization/FD "
             "caches, enforced by LRU eviction (never by failing a "
             "verb); default keeps the built-in 128 MiB budget",
    )
    srv.add_argument(
        "--conn-timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-connection idle timeout for networked serving: a peer "
             "silent this long has its socket closed so idle connections "
             "cannot pin handler threads (default: 300; 0 disables)",
    )
    srv.add_argument(
        "--allow-remote-shutdown", action="store_true",
        help="let non-loopback peers use the shutdown verb on an "
             "UNauthenticated server (with --auth-token the verb already "
             "requires the token and this flag is moot)",
    )
    _security_args(srv, role="serve")
    _backend_args(srv)

    wrk = sub.add_parser(
        "worker",
        help="run one distributed-sweep worker process "
             "(pairs with --backend distributed; trusted networks only — "
             "the task protocol exchanges pickles)",
    )
    topology = wrk.add_mutually_exclusive_group(required=True)
    topology.add_argument(
        "--connect", metavar="HOST:PORT",
        help="dial a coordinator (a DistributedBackend listener) and "
             "serve its tasks until it disconnects",
    )
    topology.add_argument(
        "--listen", metavar="HOST:PORT",
        help="own this address instead and serve coordinators that dial "
             "in (port 0 picks an ephemeral port, printed at startup)",
    )
    wrk.add_argument(
        "--id", dest="worker_id", default=None,
        help="worker name shown in coordinator stats (default: host-pid)",
    )
    wrk.add_argument(
        "--retries", type=_positive_int, default=60,
        help="--connect: bounded connect retries for the startup race "
             "where workers launch before the coordinator listens",
    )
    wrk.add_argument(
        "--backoff", type=_positive_float, default=0.25,
        help="--connect: base seconds between connect retries",
    )
    wrk.add_argument(
        "--once", action="store_true",
        help="--listen: serve exactly one coordinator, then exit",
    )
    wrk.add_argument(
        "--tls-ca", metavar="PEM", default=None,
        help="--connect: verify the coordinator's TLS certificate against "
             "this CA bundle (point it at a self-signed cert to pin it)",
    )
    _security_args(wrk, role="worker")

    res = sub.add_parser(
        "resume", help="resume a checkpointed cleaning session and run it out"
    )
    res.add_argument(
        "--checkpoint", required=True, help="checkpoint written by session.save()"
    )
    res.add_argument(
        "--save", help="write the finished session back to this checkpoint path"
    )
    res.add_argument("--trace", help="write the final trace as JSON to this path")
    res.add_argument(
        "--migrate", action="store_true",
        help="upgrade old-but-migratable checkpoint versions in memory "
             "before resuming (the file is left untouched)",
    )
    _backend_args(res)

    ses = sub.add_parser(
        "sessions",
        help="inspect and maintain a durable session state directory "
             "(the 'serve --state-dir' layout) and migrate old checkpoints",
    )
    ssub = ses.add_subparsers(dest="sessions_command", required=True)
    s_list = ssub.add_parser(
        "list", help="list every persisted session in a state directory"
    )
    s_list.add_argument("state_dir", help="state directory (serve --state-dir)")
    s_inspect = ssub.add_parser(
        "inspect",
        help="print one persisted session's envelope metadata and status",
    )
    s_inspect.add_argument("state_dir", help="state directory (serve --state-dir)")
    s_inspect.add_argument("name", help="session name as shown by 'sessions list'")
    s_compact = ssub.add_parser(
        "compact",
        help="reconcile a state directory: drop leftover tmp files and "
             "dangling index entries, adopt stray checkpoints",
    )
    s_compact.add_argument("state_dir", help="state directory (serve --state-dir)")
    s_compact.add_argument(
        "--drop-finished", action="store_true",
        help="also evict sessions whose last snapshot reported finished",
    )
    s_migrate = ssub.add_parser(
        "migrate",
        help="rewrite old checkpoint envelopes at the current version "
             "(a file, or every checkpoint in a state directory)",
    )
    s_migrate.add_argument(
        "target", help="a checkpoint file, or a state directory to sweep"
    )
    s_migrate.add_argument(
        "--out", default=None,
        help="write the migrated checkpoint here instead of in place "
             "(single-file mode only)",
    )
    return parser


def _security_args(parser: argparse.ArgumentParser, *, role: str) -> None:
    """The transport-security flags shared by ``serve`` and ``worker``."""
    group = parser.add_argument_group(
        "transport security",
        "shared-token authentication and TLS (see README 'Securing the "
        "service'); generate a token with "
        "\"python -c 'import repro; print(repro.generate_token())'\"",
    )
    group.add_argument(
        "--auth-token", metavar="TOKEN", default=None,
        help="shared secret peers must prove they hold (HMAC "
             "challenge-response on socket links, Authorization: Bearer "
             "over HTTP); prefer --auth-token-file or the "
             "REPRO_AUTH_TOKEN environment variable, which keep the "
             "secret out of the process list",
    )
    group.add_argument(
        "--auth-token-file", metavar="PATH", default=None,
        help="read the shared token from this file's first line "
             "(chmod 600 it)",
    )
    group.add_argument(
        "--tls-cert", metavar="PEM", default=None,
        help="serve TLS on accepted connections with this certificate "
             "(self-signed is fine: clients pin it by using the same "
             "file as their CA)",
    )
    group.add_argument(
        "--tls-key", metavar="PEM", default=None,
        help="private key for --tls-cert (omit when the cert file "
             "contains the key)",
    )
    group.add_argument(
        "--insecure", action="store_true",
        help=f"allow {role} to bind a non-loopback address without "
             "authentication (fail-closed is the default: any peer that "
             "can reach an open port can drive the service"
             + (", and worker task payloads are pickles - remote code "
                "execution)" if role == "worker" else ")"),
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    parser.add_argument("--algorithm", default="svm")
    parser.add_argument(
        "--errors", nargs="+", default=["missing"],
        choices=sorted(error_registry()),
    )
    parser.add_argument("--budget", type=float, default=10.0)
    parser.add_argument("--rows", type=int, default=240, help="scaled row count")
    parser.add_argument("--step", type=float, default=0.02)
    parser.add_argument(
        "--costs", choices=("uniform", "paper"), default="uniform",
        help="cost model: uniform (single-error §4.2) or paper (multi-error)",
    )
    _backend_args(parser)


def _backend_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=available_backends(), default="serial",
        help="execution backend for the estimation sweep "
             "(results are identical across backends for a fixed seed)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker count for pooled backends (1 = serial)",
    )


def _configuration(args: argparse.Namespace) -> Configuration:
    return Configuration(
        dataset=args.dataset,
        algorithm=args.algorithm,
        error_types=tuple(args.errors),
        n_rows=args.rows,
        budget=args.budget,
        step=args.step,
        cost_model=args.costs,
        backend=args.backend,
        jobs=args.jobs,
    )


def _cmd_list() -> int:
    print("datasets (Table 1):")
    print(format_table(dataset_summaries()))
    print(f"\nalgorithms: {', '.join(available_algorithms())}")
    print(f"error types: {', '.join(sorted(error_registry()))}")
    print(f"methods: {', '.join(METHOD_NAMES)}")
    print(f"backends: {', '.join(available_backends())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _configuration(args)
    polluted = build_polluted(config, seed=args.seed)
    grid = np.arange(0.0, config.budget + 1.0)
    print(
        f"{config.dataset} / {config.algorithm} / {'+'.join(config.error_types)} "
        f"(budget {config.budget:g}, {polluted.train.n_rows} train rows)\n"
    )
    for method in args.methods:
        trace = run_method(method, polluted, config, rng=args.seed)
        curve = average_curve([trace], grid)
        print(format_series(method.upper(), grid, curve, every=max(1, len(grid) // 6)))
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    config = _configuration(args)
    polluted = build_polluted(config, seed=args.seed)
    with Comet(
        polluted,
        algorithm=config.algorithm,
        error_types=list(config.error_types),
        budget=config.budget,
        cost_model=config.make_cost_model(),
        config=CometConfig(step=config.step),
        rng=args.seed,
        backend=args.backend,
        jobs=args.jobs,
    ) as comet:
        candidates = comet.recommend(k=args.k)
        if not candidates:
            print("no candidate is predicted to improve the model")
            return 0
        baseline = comet.measure_baseline()
    print(f"current F1: {baseline:.3f}")
    print(f"{'rank':>4s} {'feature':10s} {'error':12s} "
          f"{'pred. F1':>9s} {'+/-':>6s} {'cost':>5s} {'score':>7s}")
    for rank, c in enumerate(candidates, start=1):
        print(
            f"{rank:4d} {c.feature:10s} {c.error:12s} "
            f"{c.prediction.predicted_f1:9.3f} {c.prediction.uncertainty:6.3f} "
            f"{c.cost:5.1f} {c.score:7.3f}"
        )
    return 0


def _build_security(args: argparse.Namespace, command: str):
    """Resolve the CLI security flags into a ``TransportSecurity``.

    Returns ``(security_or_None, exit_code_or_None)`` — a misconfigured
    token source (empty file, empty env var) is an operator error
    reported on stderr, never a silently-open listener.
    """
    from repro.security import TransportSecurity, load_token

    if args.tls_key and not args.tls_cert:
        print(f"{command}: --tls-key requires --tls-cert", file=sys.stderr)
        return None, 2
    try:
        token = load_token(args.auth_token, args.auth_token_file)
    except (OSError, ValueError) as exc:
        print(f"{command}: {exc}", file=sys.stderr)
        return None, 2
    cafile = getattr(args, "tls_ca", None)
    if token is None and args.tls_cert is None and cafile is None:
        return None, None
    return (
        TransportSecurity(
            token=token,
            certfile=args.tls_cert,
            keyfile=args.tls_key,
            cafile=cafile,
        ),
        None,
    )


def _cmd_serve(args: argparse.Namespace, in_stream=None, out_stream=None) -> int:
    """Serve sessions over stdio JSON lines, TCP, or the HTTP adapter."""
    from repro.security import serve_security_error

    if args.http and args.port is None:
        print("serve: --http requires --port", file=sys.stderr)
        return 2
    security, code = _build_security(args, "serve")
    if code is not None:
        return code
    if args.port is not None:
        refusal = serve_security_error(
            args.host,
            token=security.token if security else None,
            tls=security.serves_tls if security else False,
            http=args.http,
            insecure=args.insecure,
        )
        if refusal is not None:
            print(f"serve: {refusal}", file=sys.stderr)
            return 2
    quotas = SessionQuotas(
        max_iterations=args.max_iterations,
        max_seconds=args.max_seconds,
        max_sessions=args.max_sessions,
        max_cache_bytes=args.max_cache_bytes,
    )
    store = None
    if args.state_dir is not None:
        from repro.store import DirectorySessionStore

        store = DirectorySessionStore(args.state_dir)
    with CometService(
        backend=args.backend,
        jobs=args.jobs,
        checkpoint_io=not args.no_checkpoint_io,
        quotas=quotas,
        workers=args.workers,
        store=store,
    ) as service:
        if store is not None:
            resumed = service.resume_persisted()
            # Parseable, like the readiness line: scripts can assert the
            # resume happened before driving the restarted service. In
            # stdio mode stdout carries JSON responses, so it goes to
            # stderr there.
            print(
                f"state dir {args.state_dir}: resumed {len(resumed)} "
                "persisted session(s)",
                file=sys.stderr if args.port is None else sys.stdout,
                flush=True,
            )
        if args.port is None:
            serve_stream(
                service,
                sys.stdin if in_stream is None else in_stream,
                sys.stdout if out_stream is None else out_stream,
            )
            return 0
        server_cls = CometHTTPServer if args.http else CometTCPServer
        with server_cls(
            service,
            (args.host, args.port),
            security=security,
            conn_timeout=args.conn_timeout if args.conn_timeout > 0 else None,
            allow_remote_shutdown=args.allow_remote_shutdown,
        ) as server:
            kind = "http" if args.http else "tcp"
            # Parseable readiness line: scripts read the bound (possibly
            # ephemeral) port from here before connecting. Its format is
            # load-bearing (CI greps it); the security summary goes on
            # its own line after.
            print(f"serving {kind} on {server.host}:{server.port}", flush=True)
            if security is not None:
                print(
                    "security: "
                    f"auth={'token' if security.requires_auth else 'off'} "
                    f"tls={'on' if security.serves_tls else 'off'}",
                    flush=True,
                )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one distributed-sweep worker until its coordinator lets go."""
    import os
    import socket as _socket

    from repro.runtime import listen_worker, run_worker
    from repro.runtime.wire import parse_address
    from repro.security import worker_security_error

    security, code = _build_security(args, "worker")
    if code is not None:
        return code
    if args.listen:
        # Fail fast, before the socket binds: this worker unpickles
        # frames from whoever completes the handshake.
        refusal = worker_security_error(
            parse_address(args.listen)[0],
            token=security.token if security else None,
            insecure=args.insecure,
        )
        if refusal is not None:
            print(f"worker: {refusal}", file=sys.stderr)
            return 2
    worker_id = args.worker_id or f"{_socket.gethostname()}-{os.getpid()}"
    try:
        if args.connect:
            print(f"worker {worker_id} connecting to {args.connect}", flush=True)
            served = run_worker(
                connect=args.connect,
                worker_id=worker_id,
                retries=args.retries,
                backoff=args.backoff,
                security=security,
            )
        else:
            served = listen_worker(
                listen=args.listen,
                worker_id=worker_id,
                once=args.once,
                # Parseable readiness line: scripts read the bound
                # (possibly ephemeral) port before pointing a
                # coordinator's connect=[...] at it.
                ready=lambda address: print(
                    f"worker listening on {address[0]}:{address[1]}", flush=True
                ),
                security=security,
                insecure=args.insecure,
            )
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    print(f"worker {worker_id} served {served} task(s)", flush=True)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Load a checkpoint, run it to completion, report the trace."""
    from repro.session import CheckpointVersionError

    try:
        session = CleaningSession.load(
            args.checkpoint,
            backend=args.backend,
            jobs=args.jobs,
            migrate=args.migrate,
        )
    except CheckpointVersionError as exc:
        # A version mismatch is an operator situation, not a crash: say
        # what was found and — when an upgrade chain exists — how to
        # move forward, instead of dumping a traceback.
        print(f"resume: {exc}", file=sys.stderr)
        if exc.migratable:
            print(
                "hint: upgrade it in place with "
                f"'repro sessions migrate {args.checkpoint}', or re-run "
                "resume with --migrate to upgrade in memory",
                file=sys.stderr,
            )
        return 1
    with session:
        done_before = len(session.trace.records) if session.trace else 0
        trace = session.run()
        status = session.status()
        if args.save:
            session.save(args.save)
    print(
        f"resumed {args.checkpoint}: {done_before} recorded iterations, "
        f"+{len(trace.records) - done_before} new"
    )
    print(
        f"F1 {trace.initial_f1:.3f} -> {trace.final_f1:.3f} "
        f"after {status['budget_spent']:g}/{status['budget_total']:g} budget units"
    )
    for record in trace.records[done_before:]:
        marker = " (fallback)" if record.used_fallback else ""
        print(
            f"iteration {record.iteration:2d}: clean {record.feature:10s}"
            f" cost={record.cost:.1f} spent={record.budget_spent:5.1f}"
            f" F1 {record.f1_before:.3f} -> {record.f1_after:.3f}{marker}"
        )
    if args.trace:
        trace.save(args.trace)
        print(f"trace written to {args.trace}")
    if args.save:
        print(f"checkpoint written to {args.save}")
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    """Inspect/maintain a durable state directory; migrate old envelopes."""
    from pathlib import Path

    from repro.store import DirectorySessionStore, migrate_checkpoint

    if args.sessions_command == "migrate":
        target = Path(args.target)
        if target.is_dir():
            if args.out:
                print("sessions migrate: --out needs a single checkpoint file",
                      file=sys.stderr)
                return 2
            sessions_dir = target / "sessions"
            checkpoints = sorted(
                (sessions_dir if sessions_dir.is_dir() else target).glob("*.ckpt")
            )
            if not checkpoints:
                print(f"no checkpoints found under {target}")
                return 0
        else:
            checkpoints = [target]
        migrated = 0
        for checkpoint in checkpoints:
            summary = migrate_checkpoint(checkpoint, out=args.out)
            if summary["migrated"]:
                migrated += 1
                print(
                    f"{summary['path']}: v{summary['from_version']} -> "
                    f"v{summary['to_version']} ({summary['out']})"
                )
            else:
                print(f"{summary['path']}: already v{summary['from_version']}")
        print(f"migrated {migrated} of {len(checkpoints)} checkpoint(s)")
        return 0

    state_dir = Path(args.state_dir)
    if not state_dir.is_dir():
        print(f"sessions: no state directory at {state_dir}", file=sys.stderr)
        return 2
    with DirectorySessionStore(state_dir) as store:
        if args.sessions_command == "list":
            names = store.names()
            if not names:
                print(f"{state_dir}: no persisted sessions")
                return 0
            print(f"{'name':24s} {'ver':>3s} {'iter':>5s} {'finished':>8s} "
                  f"{'bytes':>9s} {'client':12s}")
            for name in names:
                meta = store.meta(name)
                print(
                    f"{name:24s} {meta.get('checkpoint_version') or '?':>3} "
                    f"{meta.get('iteration', '?'):>5} "
                    f"{str(bool(meta.get('finished'))):>8s} "
                    f"{meta.get('bytes', 0):>9d} "
                    f"{str(meta.get('client') or 'local'):12s}"
                )
            return 0
        if args.sessions_command == "inspect":
            try:
                meta = store.meta(args.name)
            except KeyError:
                print(f"sessions: no persisted session named {args.name!r}",
                      file=sys.stderr)
                return 1
            state = store.load(args.name)
            print(f"session {args.name!r} in {state_dir}:")
            for key in sorted(meta):
                print(f"  {key}: {meta[key]}")
            print("status:")
            for key, value in state.status().items():
                print(f"  {key}: {value}")
            return 0
        if args.sessions_command == "compact":
            summary = store.compact(drop_finished=args.drop_finished)
            for key, value in summary.items():
                print(f"{key}: {value}")
            return 0
    raise AssertionError(f"unhandled sessions command {args.sessions_command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "sessions":
        return _cmd_sessions(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
