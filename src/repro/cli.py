"""Command-line interface: run cleaning comparisons without writing code.

Examples::

    python -m repro list
    python -m repro run --dataset cmc --algorithm svm --errors missing \
        --methods comet rr fir --budget 10 --rows 240
    python -m repro recommend --dataset churn --algorithm gb --errors missing
    python -m repro serve --backend thread --jobs 4 < requests.jsonl
    python -m repro serve --port 8765 --workers 4 --max-sessions 8
    python -m repro serve --port 8766 --http
    python -m repro worker --connect 127.0.0.1:9000
    python -m repro worker --listen 0.0.0.0:9001
    python -m repro resume --checkpoint session.ckpt
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import Comet, CometConfig
from repro.datasets import DATASET_NAMES, dataset_summaries
from repro.errors import error_registry
from repro.experiments import (
    Configuration,
    METHOD_NAMES,
    average_curve,
    build_polluted,
    format_series,
    format_table,
    run_method,
)
from repro.ml import available_algorithms
from repro.runtime import available_backends
from repro.service import (
    CometHTTPServer,
    CometService,
    CometTCPServer,
    SessionQuotas,
    serve_stream,
)
from repro.session import CleaningSession

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMET reproduction: step-by-step cleaning recommendations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list datasets, algorithms, error types, methods")

    run = sub.add_parser("run", help="compare cleaning methods on one configuration")
    _common_args(run)
    run.add_argument(
        "--methods", nargs="+", default=["comet", "rr"], choices=METHOD_NAMES,
        help="cleaning methods to compare",
    )
    run.add_argument("--seed", type=int, default=0)

    rec = sub.add_parser(
        "recommend", help="print COMET's next-k cleaning recommendations"
    )
    _common_args(rec)
    rec.add_argument("-k", type=int, default=3, help="number of recommendations")
    rec.add_argument("--seed", type=int, default=0)

    srv = sub.add_parser(
        "serve",
        help="serve many named cleaning sessions over JSON lines "
             "(stdin/stdout by default; --port for TCP, --http for HTTP)",
    )
    srv.add_argument(
        "--no-checkpoint-io", action="store_true",
        help="disable the checkpoint verbs (file write / pickle load at "
             "request-supplied paths) for less-trusted request streams",
    )
    srv.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for networked serving (default: loopback only)",
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="serve line-delimited JSON over TCP on this port instead of "
             "stdio (0 picks an ephemeral port, printed at startup)",
    )
    srv.add_argument(
        "--http", action="store_true",
        help="serve the HTTP/1.1 adapter (POST /rpc, POST /<verb>, "
             "GET /status) instead of raw JSON lines; requires --port",
    )
    srv.add_argument(
        "--workers", type=_positive_int, default=4,
        help="session-scheduler worker threads: how many sweep verbs "
             "(recommend/step/run) may iterate concurrently "
             "(status/checkpoint never queue behind them)",
    )
    srv.add_argument(
        "--max-sessions", type=_positive_int, default=None,
        help="quota: concurrent sessions one client may hold open",
    )
    srv.add_argument(
        "--max-iterations", type=_positive_int, default=None,
        help="quota: estimation sweeps one session may consume in total",
    )
    srv.add_argument(
        "--max-seconds", type=_positive_float, default=None,
        help="quota: accumulated engine wall-clock seconds per session",
    )
    _backend_args(srv)

    wrk = sub.add_parser(
        "worker",
        help="run one distributed-sweep worker process "
             "(pairs with --backend distributed; trusted networks only — "
             "the task protocol exchanges pickles)",
    )
    topology = wrk.add_mutually_exclusive_group(required=True)
    topology.add_argument(
        "--connect", metavar="HOST:PORT",
        help="dial a coordinator (a DistributedBackend listener) and "
             "serve its tasks until it disconnects",
    )
    topology.add_argument(
        "--listen", metavar="HOST:PORT",
        help="own this address instead and serve coordinators that dial "
             "in (port 0 picks an ephemeral port, printed at startup)",
    )
    wrk.add_argument(
        "--id", dest="worker_id", default=None,
        help="worker name shown in coordinator stats (default: host-pid)",
    )
    wrk.add_argument(
        "--retries", type=_positive_int, default=60,
        help="--connect: bounded connect retries for the startup race "
             "where workers launch before the coordinator listens",
    )
    wrk.add_argument(
        "--backoff", type=_positive_float, default=0.25,
        help="--connect: base seconds between connect retries",
    )
    wrk.add_argument(
        "--once", action="store_true",
        help="--listen: serve exactly one coordinator, then exit",
    )

    res = sub.add_parser(
        "resume", help="resume a checkpointed cleaning session and run it out"
    )
    res.add_argument(
        "--checkpoint", required=True, help="checkpoint written by session.save()"
    )
    res.add_argument(
        "--save", help="write the finished session back to this checkpoint path"
    )
    res.add_argument("--trace", help="write the final trace as JSON to this path")
    _backend_args(res)
    return parser


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    parser.add_argument("--algorithm", default="svm")
    parser.add_argument(
        "--errors", nargs="+", default=["missing"],
        choices=sorted(error_registry()),
    )
    parser.add_argument("--budget", type=float, default=10.0)
    parser.add_argument("--rows", type=int, default=240, help="scaled row count")
    parser.add_argument("--step", type=float, default=0.02)
    parser.add_argument(
        "--costs", choices=("uniform", "paper"), default="uniform",
        help="cost model: uniform (single-error §4.2) or paper (multi-error)",
    )
    _backend_args(parser)


def _backend_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=available_backends(), default="serial",
        help="execution backend for the estimation sweep "
             "(results are identical across backends for a fixed seed)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker count for pooled backends (1 = serial)",
    )


def _configuration(args: argparse.Namespace) -> Configuration:
    return Configuration(
        dataset=args.dataset,
        algorithm=args.algorithm,
        error_types=tuple(args.errors),
        n_rows=args.rows,
        budget=args.budget,
        step=args.step,
        cost_model=args.costs,
        backend=args.backend,
        jobs=args.jobs,
    )


def _cmd_list() -> int:
    print("datasets (Table 1):")
    print(format_table(dataset_summaries()))
    print(f"\nalgorithms: {', '.join(available_algorithms())}")
    print(f"error types: {', '.join(sorted(error_registry()))}")
    print(f"methods: {', '.join(METHOD_NAMES)}")
    print(f"backends: {', '.join(available_backends())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _configuration(args)
    polluted = build_polluted(config, seed=args.seed)
    grid = np.arange(0.0, config.budget + 1.0)
    print(
        f"{config.dataset} / {config.algorithm} / {'+'.join(config.error_types)} "
        f"(budget {config.budget:g}, {polluted.train.n_rows} train rows)\n"
    )
    for method in args.methods:
        trace = run_method(method, polluted, config, rng=args.seed)
        curve = average_curve([trace], grid)
        print(format_series(method.upper(), grid, curve, every=max(1, len(grid) // 6)))
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    config = _configuration(args)
    polluted = build_polluted(config, seed=args.seed)
    with Comet(
        polluted,
        algorithm=config.algorithm,
        error_types=list(config.error_types),
        budget=config.budget,
        cost_model=config.make_cost_model(),
        config=CometConfig(step=config.step),
        rng=args.seed,
        backend=args.backend,
        jobs=args.jobs,
    ) as comet:
        candidates = comet.recommend(k=args.k)
        if not candidates:
            print("no candidate is predicted to improve the model")
            return 0
        baseline = comet.measure_baseline()
    print(f"current F1: {baseline:.3f}")
    print(f"{'rank':>4s} {'feature':10s} {'error':12s} "
          f"{'pred. F1':>9s} {'+/-':>6s} {'cost':>5s} {'score':>7s}")
    for rank, c in enumerate(candidates, start=1):
        print(
            f"{rank:4d} {c.feature:10s} {c.error:12s} "
            f"{c.prediction.predicted_f1:9.3f} {c.prediction.uncertainty:6.3f} "
            f"{c.cost:5.1f} {c.score:7.3f}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace, in_stream=None, out_stream=None) -> int:
    """Serve sessions over stdio JSON lines, TCP, or the HTTP adapter."""
    if args.http and args.port is None:
        print("serve: --http requires --port", file=sys.stderr)
        return 2
    quotas = SessionQuotas(
        max_iterations=args.max_iterations,
        max_seconds=args.max_seconds,
        max_sessions=args.max_sessions,
    )
    with CometService(
        backend=args.backend,
        jobs=args.jobs,
        checkpoint_io=not args.no_checkpoint_io,
        quotas=quotas,
        workers=args.workers,
    ) as service:
        if args.port is None:
            serve_stream(
                service,
                sys.stdin if in_stream is None else in_stream,
                sys.stdout if out_stream is None else out_stream,
            )
            return 0
        server_cls = CometHTTPServer if args.http else CometTCPServer
        with server_cls(service, (args.host, args.port)) as server:
            kind = "http" if args.http else "tcp"
            # Parseable readiness line: scripts read the bound (possibly
            # ephemeral) port from here before connecting.
            print(f"serving {kind} on {server.host}:{server.port}", flush=True)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one distributed-sweep worker until its coordinator lets go."""
    import os
    import socket as _socket

    from repro.runtime import listen_worker, run_worker

    worker_id = args.worker_id or f"{_socket.gethostname()}-{os.getpid()}"
    try:
        if args.connect:
            print(f"worker {worker_id} connecting to {args.connect}", flush=True)
            served = run_worker(
                connect=args.connect,
                worker_id=worker_id,
                retries=args.retries,
                backoff=args.backoff,
            )
        else:
            served = listen_worker(
                listen=args.listen,
                worker_id=worker_id,
                once=args.once,
                # Parseable readiness line: scripts read the bound
                # (possibly ephemeral) port before pointing a
                # coordinator's connect=[...] at it.
                ready=lambda address: print(
                    f"worker listening on {address[0]}:{address[1]}", flush=True
                ),
            )
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    print(f"worker {worker_id} served {served} task(s)", flush=True)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    """Load a checkpoint, run it to completion, report the trace."""
    with CleaningSession.load(
        args.checkpoint, backend=args.backend, jobs=args.jobs
    ) as session:
        done_before = len(session.trace.records) if session.trace else 0
        trace = session.run()
        status = session.status()
        if args.save:
            session.save(args.save)
    print(
        f"resumed {args.checkpoint}: {done_before} recorded iterations, "
        f"+{len(trace.records) - done_before} new"
    )
    print(
        f"F1 {trace.initial_f1:.3f} -> {trace.final_f1:.3f} "
        f"after {status['budget_spent']:g}/{status['budget_total']:g} budget units"
    )
    for record in trace.records[done_before:]:
        marker = " (fallback)" if record.used_fallback else ""
        print(
            f"iteration {record.iteration:2d}: clean {record.feature:10s}"
            f" cost={record.cost:.1f} spent={record.budget_spent:5.1f}"
            f" F1 {record.f1_before:.3f} -> {record.f1_after:.3f}{marker}"
        )
    if args.trace:
        trace.save(args.trace)
        print(f"trace written to {args.trace}")
    if args.save:
        print(f"checkpoint written to {args.save}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "resume":
        return _cmd_resume(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
