"""COMET core: the paper's primary contribution (§3).

``Comet`` orchestrates the three modules of Figure 2 — the Polluter
(incremental pollution, §3.1), the Estimator (cleaning-impact estimation,
§3.2), and the Recommender (optimal feature selection, §3.3) — around a
Cleaner and a cleaning budget.
"""

from repro.core.comet import Comet
from repro.core.config import CometConfig
from repro.core.estimator import CometEstimator, Prediction
from repro.core.recommender import CometRecommender, ScoredCandidate
from repro.core.report import session_report
from repro.core.trace import CleaningTrace, IterationRecord

__all__ = [
    "Comet",
    "CometConfig",
    "CometEstimator",
    "Prediction",
    "CometRecommender",
    "ScoredCandidate",
    "CleaningTrace",
    "IterationRecord",
    "session_report",
]
