"""The COMET session façade (Figure 2).

``Comet`` is the stable, single-session public API. Since the session
protocol redesign it is a thin wrapper over :class:`~repro.session.
CleaningSession` (the engine) and :class:`~repro.session.SessionState`
(the serializable state): every attribute the historical monolithic class
exposed — ``dataset``, ``budget``, ``buffer``, ``trace``, the private
loop helpers — delegates to the session, so existing code keeps working
while new code can checkpoint (``save``/``load``), observe, or serve
sessions through the richer protocol.

One deliberate semantic change rides along: the session owns a *single*
cumulative trace. ``step()``/``iterate()`` now record into ``trace``
(which the historical class left ``None`` until ``run()``), and ``run()``
continues that trace instead of starting a fresh one per call — the
behavior checkpoint/resume requires. Traces of seeded start-to-finish
``run()`` calls are unchanged, bit for bit.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.cleaning import CostModel
from repro.core.config import CometConfig
from repro.core.recommender import ScoredCandidate
from repro.core.trace import CleaningTrace, IterationRecord
from repro.errors.prepollution import PollutedDataset
from repro.ml.base import BaseEstimator
from repro.runtime import ExecutionBackend
from repro.session import CleaningSession

__all__ = ["Comet"]


class Comet:
    """Cost-aware step-by-step cleaning recommendations.

    Parameters
    ----------
    dataset:
        The dirty dataset (with ground truth for the simulated Cleaner).
        The session works on a copy; the input is never mutated.
    algorithm:
        Registry name (``"svm"``, ``"knn"``, ``"mlp"``, ``"gb"``, …) or an
        unfitted estimator instance.
    error_types:
        Error types COMET should consider (names or instances). One for the
        single-error scenario, several for the multi-error scenario.
    budget:
        Total cleaning budget in cost units (50 in the paper).
    cost_model:
        Cleaning costs per error type; defaults to the uniform model.
    task:
        ``"classification"`` (the paper's setting, F1) or ``"regression"``
        (R² — the §6 extension; pass a regressor instance as ``algorithm``).
    cleaner:
        The Cleaner performing the actual cleaning. Defaults to the
        ground-truth simulation used in the paper's experiments; pass a
        :class:`~repro.detect.AlgorithmicCleaner` for a fully automatic
        detect-and-impute pipeline.
    backend:
        Execution backend for the Estimator's E1 sweep: a registry name
        (``"serial"``, ``"thread"``, ``"process"``) or an
        :class:`~repro.runtime.ExecutionBackend` instance. Traces are
        bit-identical across backends for a fixed ``rng`` (the
        ``repro.runtime`` determinism contract); the backend is purely a
        throughput knob.
    jobs:
        Worker count for pooled backends; ``1`` falls back to serial.
    """

    def __init__(
        self,
        dataset: PollutedDataset,
        algorithm: str | BaseEstimator = "svm",
        error_types=("missing",),
        budget: float = 50.0,
        cost_model: CostModel | None = None,
        config: CometConfig | None = None,
        rng: np.random.Generator | int | None = None,
        task: str = "classification",
        cleaner=None,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
    ) -> None:
        self._session = CleaningSession.create(
            dataset,
            algorithm=algorithm,
            error_types=error_types,
            budget=budget,
            cost_model=cost_model,
            config=config,
            rng=rng,
            task=task,
            cleaner=cleaner,
            backend=backend,
            jobs=jobs,
            own_backend=True,
        )

    # ------------------------------------------------------------------ #
    # the session protocol underneath
    # ------------------------------------------------------------------ #
    @property
    def session(self) -> CleaningSession:
        """The underlying :class:`~repro.session.CleaningSession` engine."""
        return self._session

    def save(self, path, *, meta: dict | None = None) -> None:
        """Checkpoint the session state; resume with :meth:`Comet.load`.

        ``meta`` extends the checkpoint's envelope header (see
        :meth:`SessionState.save`).
        """
        self._session.save(path, meta=meta)

    @classmethod
    def load(
        cls,
        path,
        *,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
        migrate: bool = False,
    ) -> "Comet":
        """Resume a checkpointed session behind the ``Comet`` façade.

        ``migrate=True`` upgrades old-but-migratable checkpoint versions
        in memory instead of raising ``CheckpointVersionError``.
        """
        comet = cls.__new__(cls)
        comet._session = CleaningSession.load(
            path, backend=backend, jobs=jobs, own_backend=True, migrate=migrate
        )
        return comet

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> CleaningTrace:
        """Iterate until the budget is spent or everything is marked clean."""
        return self._session.run()

    def step(self) -> IterationRecord | None:
        """Run one COMET iteration (single cleaning); ``None`` when over."""
        return self._session.step()

    def iterate(self, max_accepts: int | None = None) -> list[IterationRecord]:
        """One estimation sweep, cleaning up to ``max_accepts`` candidates.

        ``max_accepts`` defaults to ``config.batch_size``; values above 1
        implement the multi-feature-per-iteration extension (§6): the
        Polluter/Estimator sweep is paid once and several ranked candidates
        are cleaned from it.
        """
        return self._session.iterate(max_accepts)

    def recommend(self, k: int = 1) -> list[ScoredCandidate]:
        """Pure recommendation: the top-``k`` scored candidates, no cleaning.

        For human-in-the-loop use: inspect what COMET would clean next
        (with predicted F1, uncertainty, and cost) without touching data or
        budget.
        """
        return self._session.recommend(k)

    @property
    def is_finished(self) -> bool:
        """True once the budget is spent or nothing is left to clean."""
        return self._session.is_finished

    def close(self) -> None:
        """Release the execution backend's worker pool (if any).

        Safe to call repeatedly; the session stays usable afterwards
        (pooled backends restart lazily on the next sweep).
        """
        self._session.close()

    def __enter__(self) -> "Comet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def open_candidates(self) -> list[tuple[str, str]]:
        """(feature, error) pairs the Cleaner has not yet marked clean."""
        return self._session.open_candidates()

    def measure_baseline(self) -> float:
        """Fit on the current train split and score the test split."""
        return self._session.measure_baseline()

    def estimator_measure_baseline(self) -> float:
        """Deprecated alias for :meth:`measure_baseline`."""
        warnings.warn(
            "Comet.estimator_measure_baseline is deprecated; "
            "use Comet.measure_baseline",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.measure_baseline()

    # ------------------------------------------------------------------ #
    # historical attribute surface (reads and writes pass through to the
    # session, so assignments like ``comet.budget = Budget(20)`` keep
    # working exactly as they did on the monolithic class)
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> CometConfig:
        """Loop hyperparameters."""
        return self._session.state.config

    @config.setter
    def config(self, value: CometConfig) -> None:
        self._session.state.config = value

    @property
    def task(self) -> str:
        """``"classification"`` or ``"regression"``."""
        return self._session.state.task

    @task.setter
    def task(self, value: str) -> None:
        self._session.state.task = value

    @property
    def dataset(self) -> PollutedDataset:
        """The session's working dataset copy."""
        return self._session.state.dataset

    @dataset.setter
    def dataset(self, value: PollutedDataset) -> None:
        self._session.state.dataset = value

    @property
    def algorithm_name(self) -> str:
        """Registry (or class) name of the ML algorithm."""
        return self._session.state.algorithm_name

    @algorithm_name.setter
    def algorithm_name(self, value: str) -> None:
        self._session.state.algorithm_name = value

    @property
    def model(self) -> BaseEstimator:
        """The model instance the session trains."""
        return self._session.state.model

    @model.setter
    def model(self, value: BaseEstimator) -> None:
        self._session.state.model = value

    @property
    def errors(self) -> list:
        """Error types under consideration."""
        return self._session.state.errors

    @errors.setter
    def errors(self, value: list) -> None:
        self._session.state.errors = list(value)
        self._session._error_by_name = {e.name: e for e in self._session.state.errors}

    @property
    def budget(self):
        """Cleaning budget ledger."""
        return self._session.state.budget

    @budget.setter
    def budget(self, value) -> None:
        self._session.state.budget = value

    @property
    def cost_model(self) -> CostModel:
        """Per-(feature, error) cost functions with step history."""
        return self._session.state.cost_model

    @cost_model.setter
    def cost_model(self, value: CostModel) -> None:
        self._session.state.cost_model = value

    @property
    def cleaner(self):
        """The Cleaner performing (and reverting) cleaning steps."""
        return self._session.state.cleaner

    @cleaner.setter
    def cleaner(self, value) -> None:
        self._session.state.cleaner = value

    @property
    def buffer(self):
        """Reverted cleaning steps kept for free replay."""
        return self._session.state.buffer

    @buffer.setter
    def buffer(self, value) -> None:
        self._session.state.buffer = value

    @property
    def recommender(self):
        """The Recommender (scoring, ranking, fallback memory)."""
        return self._session.recommender

    @recommender.setter
    def recommender(self, value) -> None:
        self._session.recommender = value

    @property
    def estimator(self):
        """The Estimator (E1 sweep + E2 prediction)."""
        return self._session.estimator

    @estimator.setter
    def estimator(self, value) -> None:
        self._session.estimator = value

    @property
    def backend(self) -> ExecutionBackend:
        """Execution backend of the estimation sweep."""
        return self._session.backend

    @backend.setter
    def backend(self, value: ExecutionBackend) -> None:
        self._session.backend = value

    @property
    def trace(self) -> CleaningTrace | None:
        """The trace accumulated so far (``None`` before the first sweep)."""
        return self._session.state.trace

    @trace.setter
    def trace(self, value: CleaningTrace | None) -> None:
        self._session.state.trace = value

    # The private loop surface below is delegated (not just internal):
    # the behavioral test-suite drives the loop piecewise through it.
    @property
    def _active(self) -> list:
        return self._session.state.active

    @_active.setter
    def _active(self, value: list) -> None:
        self._session.state.active = value

    @property
    def _current_f1(self) -> float | None:
        return self._session.state.current_f1

    @_current_f1.setter
    def _current_f1(self, value: float | None) -> None:
        self._session.state.current_f1 = value

    @property
    def _iteration(self) -> int:
        return self._session.state.iteration

    @_iteration.setter
    def _iteration(self, value: int) -> None:
        self._session.state.iteration = value

    @property
    def _last_action(self):
        return self._session.state.last_action

    @_last_action.setter
    def _last_action(self, value) -> None:
        self._session.state.last_action = value

    def _baseline(self) -> float:
        return self._session._baseline()

    def _estimate_candidates(self, baseline: float):
        return self._session._estimate_candidates(baseline)

    def _try_candidates(self, ranked, baseline, max_accepts: int = 1):
        return self._session._try_candidates(ranked, baseline, max_accepts)

    def _fallback(self, predictions, baseline):
        return self._session._fallback(predictions, baseline)

    def _perform_cleaning(self, feature: str, error: str, prediction) -> float:
        return self._session._perform_cleaning(feature, error, prediction)

    def _revert_last(self, pair: tuple[str, str]) -> None:
        self._session._revert_last(pair)

    def _accept(self, pair: tuple[str, str], f1_after: float) -> None:
        self._session._accept(pair, f1_after)
