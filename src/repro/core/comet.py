"""The COMET session loop (Figure 2).

One iteration: measure the current F1, run the Polluter + Estimator over
every open (feature, error) candidate, let the Recommender select by score,
have the Cleaner perform one cleaning step, keep it if the F1 did not
decrease, otherwise revert into the cleaning buffer and try the next
candidate; fall back to the historically best candidate when nothing is
predicted to help. Repeats until the budget is spent or the Cleaner has
marked every candidate clean.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.cleaning import (
    Budget,
    CleaningBuffer,
    CostModel,
    GroundTruthCleaner,
    uniform_cost_model,
)
from repro.core.config import CometConfig
from repro.core.estimator import CometEstimator, Prediction
from repro.core.recommender import CometRecommender, ScoredCandidate
from repro.core.trace import CleaningTrace, IterationRecord
from repro.errors.base import ErrorType, make_error
from repro.errors.prepollution import PollutedDataset
from repro.ml.base import BaseEstimator
from repro.ml.model_selection import RandomSearch
from repro.ml.pipeline import TabularModel
from repro.ml.preprocessing import TabularPreprocessor
from repro.ml.registry import hyperparameter_space, make_classifier
from repro.runtime import ExecutionBackend, make_backend

__all__ = ["Comet"]


class Comet:
    """Cost-aware step-by-step cleaning recommendations.

    Parameters
    ----------
    dataset:
        The dirty dataset (with ground truth for the simulated Cleaner).
        The session works on a copy; the input is never mutated.
    algorithm:
        Registry name (``"svm"``, ``"knn"``, ``"mlp"``, ``"gb"``, …) or an
        unfitted estimator instance.
    error_types:
        Error types COMET should consider (names or instances). One for the
        single-error scenario, several for the multi-error scenario.
    budget:
        Total cleaning budget in cost units (50 in the paper).
    cost_model:
        Cleaning costs per error type; defaults to the uniform model.
    task:
        ``"classification"`` (the paper's setting, F1) or ``"regression"``
        (R² — the §6 extension; pass a regressor instance as ``algorithm``).
    cleaner:
        The Cleaner performing the actual cleaning. Defaults to the
        ground-truth simulation used in the paper's experiments; pass a
        :class:`~repro.detect.AlgorithmicCleaner` for a fully automatic
        detect-and-impute pipeline.
    backend:
        Execution backend for the Estimator's E1 sweep: a registry name
        (``"serial"``, ``"thread"``, ``"process"``) or an
        :class:`~repro.runtime.ExecutionBackend` instance. Traces are
        bit-identical across backends for a fixed ``rng`` (the
        ``repro.runtime`` determinism contract); the backend is purely a
        throughput knob.
    jobs:
        Worker count for pooled backends; ``1`` falls back to serial.
    """

    def __init__(
        self,
        dataset: PollutedDataset,
        algorithm: str | BaseEstimator = "svm",
        error_types=("missing",),
        budget: float = 50.0,
        cost_model: CostModel | None = None,
        config: CometConfig | None = None,
        rng: np.random.Generator | int | None = None,
        task: str = "classification",
        cleaner=None,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
    ) -> None:
        self.config = config or CometConfig()
        self.task = task
        self.dataset = dataset.copy()
        self._rng = np.random.default_rng(rng)
        if isinstance(algorithm, str):
            self.algorithm_name = algorithm
            self.model = make_classifier(algorithm)
        else:
            self.algorithm_name = type(algorithm).__name__
            self.model = algorithm
        if not isinstance(error_types, (list, tuple)):
            error_types = [error_types]
        self.errors: list[ErrorType] = [
            make_error(e) if isinstance(e, str) else e for e in error_types
        ]
        if not self.errors:
            raise ValueError("need at least one error type")
        self.budget = Budget(budget)
        self.cost_model = (cost_model or uniform_cost_model()).copy()
        self.cleaner = cleaner or GroundTruthCleaner(
            step=self.config.step, rng=self._rng.integers(2**63)
        )
        self.buffer = CleaningBuffer()
        self.recommender = CometRecommender(self.config)
        self.backend = make_backend(backend, jobs)
        if self.config.search_iterations > 0 and isinstance(algorithm, str):
            self._tune_model()
        self.estimator = CometEstimator(
            self.model,
            label=self.dataset.label,
            config=self.config,
            rng=self._rng.integers(2**63),
            task=self.task,
        )
        # COMET assumes every feature is dirty until the Cleaner marks it
        # clean (§3.1); candidates are all applicable (feature, error) pairs.
        self._active: list[tuple[str, str]] = [
            (feature, error.name)
            for feature in self.dataset.feature_names
            for error in self.errors
            if error.applies_to(self.dataset.train[feature])
        ]
        self._error_by_name = {e.name: e for e in self.errors}
        self._current_f1: float | None = None
        self._iteration = 0
        self.trace: CleaningTrace | None = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> CleaningTrace:
        """Iterate until the budget is spent or everything is marked clean."""
        self.trace = CleaningTrace(initial_f1=self._baseline())
        while True:
            records = self.iterate()
            if not records:
                break
            for record in records:
                self.trace.append(record)
        return self.trace

    def step(self) -> IterationRecord | None:
        """Run one COMET iteration (single cleaning); ``None`` when over."""
        records = self.iterate(max_accepts=1)
        return records[0] if records else None

    def iterate(self, max_accepts: int | None = None) -> list[IterationRecord]:
        """One estimation sweep, cleaning up to ``max_accepts`` candidates.

        ``max_accepts`` defaults to ``config.batch_size``; values above 1
        implement the multi-feature-per-iteration extension (§6): the
        Polluter/Estimator sweep is paid once and several ranked candidates
        are cleaned from it.
        """
        if not self._active or self.budget.exhausted():
            return []
        if max_accepts is None:
            max_accepts = self.config.batch_size
        baseline = self._baseline()
        predictions = self._estimate_candidates(baseline)
        ranked = self.recommender.rank(predictions, baseline, self.cost_model)
        self._iteration += 1
        records = self._try_candidates(ranked, baseline, max_accepts)
        if not records:
            fallback = self._fallback(predictions, baseline)
            if fallback is not None:
                records = [fallback]
        return records

    def recommend(self, k: int = 1) -> list[ScoredCandidate]:
        """Pure recommendation: the top-``k`` scored candidates, no cleaning.

        For human-in-the-loop use: inspect what COMET would clean next
        (with predicted F1, uncertainty, and cost) without touching data or
        budget.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self._active:
            return []
        baseline = self._baseline()
        predictions = self._estimate_candidates(baseline)
        ranked = self.recommender.rank(predictions, baseline, self.cost_model)
        return ranked[:k]

    @property
    def is_finished(self) -> bool:
        """True once the budget is spent or nothing is left to clean."""
        return not self._active or self.budget.exhausted()

    def close(self) -> None:
        """Release the execution backend's worker pool (if any).

        Safe to call repeatedly; the session stays usable afterwards
        (pooled backends restart lazily on the next sweep).
        """
        self.backend.shutdown()

    def __enter__(self) -> "Comet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def open_candidates(self) -> list[tuple[str, str]]:
        """(feature, error) pairs the Cleaner has not yet marked clean."""
        return list(self._active)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _baseline(self) -> float:
        if self._current_f1 is None:
            self._current_f1 = self.measure_baseline()
        return self._current_f1

    def measure_baseline(self) -> float:
        """Fit on the current train split and score the test split."""
        model = TabularModel(self.model, label=self.dataset.label, task=self.task)
        return model.fit_score(self.dataset.train, self.dataset.test)

    def estimator_measure_baseline(self) -> float:
        """Deprecated alias for :meth:`measure_baseline`."""
        warnings.warn(
            "Comet.estimator_measure_baseline is deprecated; "
            "use Comet.measure_baseline",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.measure_baseline()

    def _estimate_candidates(self, baseline: float) -> list[Prediction]:
        candidates = [
            (feature, self._error_by_name[error_name])
            for feature, error_name in self._active
        ]
        return self.estimator.estimate_many(
            self.dataset.train,
            self.dataset.test,
            candidates,
            baseline,
            backend=self.backend,
        )

    def _try_candidates(
        self, ranked: list[ScoredCandidate], baseline: float, max_accepts: int = 1
    ) -> list[IterationRecord]:
        """Steps (C) and (D): clean by score, revert on decrease.

        Accepts up to ``max_accepts`` candidates from the same ranking;
        each accepted cleaning becomes the baseline for the next.
        """
        records: list[IterationRecord] = []
        rejected: list[tuple[str, str]] = []
        for candidate in ranked:
            pair = (candidate.feature, candidate.error)
            if pair not in self._active:
                continue  # a previous accept in this sweep finished it
            from_buffer = pair in self.buffer
            if not from_buffer and not self.budget.can_afford(candidate.cost):
                continue
            cost = self._perform_cleaning(candidate.feature, candidate.error, candidate.prediction)
            f1_after = self.measure_baseline()
            self.estimator.record_outcome(candidate.prediction, f1_after)
            self.recommender.record_outcome(candidate.feature, candidate.error, f1_after)
            if f1_after >= baseline - 1e-12 or not self.config.revert_on_decrease:
                self._accept(pair, f1_after)
                records.append(
                    IterationRecord(
                        iteration=self._iteration,
                        feature=candidate.feature,
                        error=candidate.error,
                        cost=cost,
                        budget_spent=self.budget.spent,
                        f1_before=baseline,
                        f1_after=f1_after,
                        predicted_f1=candidate.prediction.predicted_f1,
                        from_buffer=from_buffer,
                        rejected=list(rejected),
                    )
                )
                if len(records) >= max_accepts:
                    return records
                baseline = f1_after
                rejected = []
                continue
            self._revert_last(pair)
            rejected.append(pair)
        return records

    def _fallback(
        self, predictions: list[Prediction], baseline: float
    ) -> IterationRecord | None:
        """Step (E): clean the historically best candidate, keep the result."""
        affordable = [
            pair
            for pair in self._active
            if (pair in self.buffer)
            or self.budget.can_afford(self.cost_model.next_cost(*pair))
        ]
        pair = self.recommender.fallback_candidate(affordable)
        if pair is None:
            return None
        feature, error_name = pair
        prediction = next(
            (p for p in predictions if (p.feature, p.error) == pair), None
        )
        cost = self._perform_cleaning(feature, error_name, prediction)
        f1_after = self.measure_baseline()
        if prediction is not None:
            self.estimator.record_outcome(prediction, f1_after)
        self.recommender.record_outcome(feature, error_name, f1_after)
        self._accept(pair, f1_after)
        return IterationRecord(
            iteration=self._iteration,
            feature=feature,
            error=error_name,
            cost=cost,
            budget_spent=self.budget.spent,
            f1_before=baseline,
            f1_after=f1_after,
            predicted_f1=prediction.predicted_f1 if prediction else None,
            used_fallback=True,
        )

    def _perform_cleaning(
        self, feature: str, error: str, prediction: Prediction | None
    ) -> float:
        """Replay from the buffer when possible, otherwise pay the Cleaner."""
        buffered = self.buffer.pop(feature, error)
        if buffered is not None:
            self.cleaner.apply(self.dataset, buffered)
            self._last_action = buffered
            return 0.0
        cost = self.cost_model.record_step(feature, error)
        self.budget.charge(cost)
        priority = prediction.polluted_rows if prediction is not None else None
        self._last_action = self.cleaner.clean_step(
            self.dataset, feature, error, priority_train_rows=priority
        )
        return cost

    def _revert_last(self, pair: tuple[str, str]) -> None:
        self.cleaner.revert(self.dataset, self._last_action)
        self.buffer.put(self._last_action)
        # The revert restores exactly the data state `_current_f1` was
        # measured on (rejected trials never overwrite the memo — only
        # `_accept` does), so the cached baseline stays valid.

    def _accept(self, pair: tuple[str, str], f1_after: float) -> None:
        self._current_f1 = f1_after
        feature, error = pair
        train_clean = self.dataset.dirty_train.dirty_count(feature, error) == 0
        test_clean = self.dataset.dirty_test.dirty_count(feature, error) == 0
        if train_clean and test_clean and pair in self._active:
            # The Cleaner observed no (remaining) dirt — marks the pair clean.
            self._active.remove(pair)

    def _tune_model(self) -> None:
        """The paper's 10-sample random hyperparameter search (§4.4)."""
        space = hyperparameter_space(self.algorithm_name)
        label = self.dataset.label
        features = self.dataset.feature_names
        preprocessor = TabularPreprocessor(features).fit(self.dataset.train)
        X = preprocessor.transform(self.dataset.train)
        y = self.dataset.train.label_array(label)
        search = RandomSearch(
            self.model,
            space,
            n_iter=self.config.search_iterations,
            rng=self._rng.integers(2**63),
        )
        search.fit(X, y)
        self.model.set_params(**search.best_params_)
