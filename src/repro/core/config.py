"""Configuration knobs for a COMET session."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CometConfig"]


@dataclass
class CometConfig:
    """Hyperparameters of the COMET loop.

    Attributes
    ----------
    step:
        Cleaning/pollution step as a fraction of the split size (1 % in the
        paper, §4.1).
    n_pollution_steps:
        How many additional pollution levels the Polluter probes per
        feature and iteration (two in §3.1).
    n_combinations:
        Random cell combinations sampled per pollution level; their scores
        are pooled by the Estimator (§3.1).
    credible_level:
        Level of the Bayesian credible interval whose width is the
        uncertainty ``U(f)`` in the Recommender score (Eq. 4).
    regression_degree:
        Degree of the polynomial design for the Bayesian regression; 1
        (a linear trend, Figure 1) is the default.
    use_uncertainty:
        If False, the Recommender scores with ``gain / cost`` only —
        the ablation called out in DESIGN.md §5.
    revert_on_decrease:
        If False, cleaning steps are never reverted (second ablation).
    adjust_predictions:
        Whether the Estimator applies the mean observed discrepancy to
        later predictions for the same candidate (§3.3).
    min_cost:
        Floor for the cost denominator of Eq. 4, so one-shot costs of zero
        don't divide by zero.
    search_iterations:
        Random hyperparameter search samples at session start (the paper
        uses 10); 0 skips the search and keeps the registry defaults.
    batch_size:
        Cleaning steps accepted per estimation sweep. 1 reproduces the
        paper's loop; larger values implement the §6 future-work extension
        of recommending multiple features per iteration, amortizing the
        Polluter/Estimator cost across several cleanings.
    """

    step: float = 0.01
    n_pollution_steps: int = 2
    n_combinations: int = 1
    credible_level: float = 0.95
    regression_degree: int = 1
    use_uncertainty: bool = True
    revert_on_decrease: bool = True
    adjust_predictions: bool = True
    min_cost: float = 0.25
    search_iterations: int = 0
    batch_size: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.step <= 1.0:
            raise ValueError(f"step must be in (0, 1], got {self.step}")
        if self.n_pollution_steps < 1:
            raise ValueError("n_pollution_steps must be >= 1")
        if self.n_combinations < 1:
            raise ValueError("n_combinations must be >= 1")
        if not 0.0 < self.credible_level < 1.0:
            raise ValueError("credible_level must be in (0, 1)")
        if self.regression_degree < 1:
            raise ValueError("regression_degree must be >= 1")
        if self.min_cost <= 0:
            raise ValueError("min_cost must be positive")
        if self.search_iterations < 0:
            raise ValueError("search_iterations must be >= 0")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
