"""The Estimator (§3.2): measure pollution effects, predict cleaning gains.

Step 1 (``E1``) measures prediction accuracy on incrementally polluted data
states produced by the Polluter. Step 2 (``E2``) fits a Bayesian regression
to the (pollution level → F1) series and extrapolates one *cleaning* step
backwards (level ``−step``), yielding the predicted post-cleaning F1 and
its uncertainty. After each realized cleaning, the observed discrepancy
feeds back into later predictions for the same candidate (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayes import BayesianLinearRegression, polynomial_design
from repro.core.config import CometConfig
from repro.errors.base import ErrorType
from repro.errors.polluter import Polluter
from repro.frame import DataFrame
from repro.ml.base import BaseEstimator
from repro.ml.pipeline import TabularModel
from repro.runtime import (
    ExecutionBackend,
    FitScoreTask,
    SerialBackend,
    run_fit_score_task,
)

__all__ = ["CometEstimator", "Prediction"]


@dataclass
class _CandidateTasks:
    """E1 work for one (feature, error) candidate: tasks + bookkeeping."""

    feature: str
    error: ErrorType
    #: Fit-score tasks, one per (combination, pollution step).
    tasks: list[FitScoreTask]
    #: Pollution level of each task, aligned with ``tasks``.
    levels: list[float]
    #: Train rows the Polluter touched (union over combinations).
    polluted_rows: np.ndarray


def _assemble_curve(
    group: _CandidateTasks, fit_scores: list, baseline_f1: float
) -> tuple[np.ndarray, np.ndarray]:
    """(levels, scores) for one candidate, with level 0 carrying the
    baseline — the single place the E1 curve is put together, so serial
    and batched dispatch can never drift apart."""
    levels = np.asarray([0.0] + group.levels)
    scores = np.asarray([baseline_f1] + list(fit_scores))
    return levels, scores


@dataclass
class Prediction:
    """E2 output for one (feature, error) candidate."""

    feature: str
    error: str
    #: Predicted F1 after one cleaning step (discrepancy-adjusted).
    predicted_f1: float
    #: Uncertainty: width of the credible interval of the prediction.
    uncertainty: float
    #: Measured (level, F1) points backing the prediction.
    levels: np.ndarray
    scores: np.ndarray
    #: Train rows the Polluter touched — the Cleaner's priority cells.
    polluted_rows: np.ndarray


class CometEstimator:
    """Measures pollution effects and predicts post-cleaning accuracy."""

    def __init__(
        self,
        estimator: BaseEstimator,
        label: str,
        config: CometConfig | None = None,
        rng: np.random.Generator | int | None = None,
        task: str = "classification",
        history: dict[tuple[str, str], list[float]] | None = None,
    ) -> None:
        self.estimator = estimator
        self.label = label
        self.config = config or CometConfig()
        self.task = task
        self._rng = np.random.default_rng(rng)
        #: (feature, error) → list of observed (actual − predicted) F1 gaps.
        #: ``history`` is adopted *by reference*, so a caller-owned dict
        #: (e.g. a checkpointable ``SessionState``) tracks every update.
        self._discrepancies: dict[tuple[str, str], list[float]] = (
            history if history is not None else {}
        )

    # ------------------------------------------------------------------ #
    # E1: pollution effect measurement
    # ------------------------------------------------------------------ #
    def measure_baseline(self, train: DataFrame, test: DataFrame) -> float:
        """F1 of the model on the current (unmodified) data state."""
        model = TabularModel(self.estimator, label=self.label, task=self.task)
        return model.fit_score(train, test)

    def build_candidate_tasks(
        self,
        train: DataFrame,
        test: DataFrame,
        feature: str,
        error: ErrorType,
    ) -> _CandidateTasks:
        """Materialize one candidate's E1 sweep as picklable fit-score tasks.

        All randomness happens here, in the calling thread: the per-
        combination Polluter streams are spawned from the Estimator's RNG
        (independent child streams for the train and test split, so the
        splits are polluted separately at the same levels without
        leakage, per §3.1) and every polluted data state is produced up
        front. The returned tasks are pure fit-and-score closures over
        frozen frames — a backend may run them in any order or process.

        The polluted states are copy-on-write: each differs from the
        base frame in one column and *shares* the rest, identity tokens
        included. Those tokens key the featurization memo
        (``repro.ml.preprocessing``), so every task's fit recomputes
        statistics for exactly one column and serves the other columns —
        categorical ones included — from cache; a task whose frames are
        entirely unchanged (repeated baselines, replayed states) skips
        featurization altogether via the transformed-matrix memo.
        Tokens never reach results, only cache keys, so traces stay
        bit-identical with caching on or off.
        """
        cfg = self.config
        tasks: list[FitScoreTask] = []
        levels: list[float] = []
        touched: list[np.ndarray] = []
        for __ in range(cfg.n_combinations):
            train_rng, test_rng = self._rng.spawn(2)
            train_polluter = Polluter(error, step=cfg.step, rng=train_rng)
            test_polluter = Polluter(error, step=cfg.step, rng=test_rng)
            train_states = train_polluter.incremental_states(
                train, feature, n_steps=cfg.n_pollution_steps
            )[0]
            test_states = test_polluter.incremental_states(
                test, feature, n_steps=cfg.n_pollution_steps
            )[0]
            for train_state, test_state in zip(train_states, test_states):
                tasks.append(
                    FitScoreTask(
                        estimator=self.estimator,
                        label=self.label,
                        train=train_state.frame,
                        test=test_state.frame,
                        task=self.task,
                        tag=(feature, error.name, train_state.level),
                    )
                )
                levels.append(train_state.level)
            touched.append(train_states[-1].rows)
        polluted_rows = (
            np.unique(np.concatenate(touched)) if touched else np.array([], int)
        )
        return _CandidateTasks(feature, error, tasks, levels, polluted_rows)

    def measure_pollution_curve(
        self,
        train: DataFrame,
        test: DataFrame,
        feature: str,
        error: ErrorType,
        baseline_f1: float,
        backend: ExecutionBackend | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Measure F1 at increasing pollution of ``feature`` (E1).

        Train and test are polluted separately (same levels, independent
        cells) to avoid leakage, per §3.1. Returns (levels, scores,
        polluted train rows), where level 0 carries the baseline. The
        model fits run through ``backend`` when given, inline otherwise.
        """
        candidate = self.build_candidate_tasks(train, test, feature, error)
        if backend is not None:
            fit_scores = backend.map(run_fit_score_task, candidate.tasks)
        else:
            fit_scores = [run_fit_score_task(t) for t in candidate.tasks]
        levels, scores = _assemble_curve(candidate, fit_scores, baseline_f1)
        return levels, scores, candidate.polluted_rows

    # ------------------------------------------------------------------ #
    # E2: predictive model construction
    # ------------------------------------------------------------------ #
    def predict_cleaning(
        self,
        feature: str,
        error: ErrorType,
        levels: np.ndarray,
        scores: np.ndarray,
        polluted_rows: np.ndarray,
    ) -> Prediction:
        """Fit the Bayesian regression and extrapolate to level ``−step``."""
        cfg = self.config
        design = polynomial_design(levels, degree=cfg.regression_degree)
        model = BayesianLinearRegression().fit(design, scores)
        probe = polynomial_design(np.array([-cfg.step]), degree=cfg.regression_degree)
        mean, lower, upper = model.credible_interval(probe, level=cfg.credible_level)
        predicted = float(mean[0])
        uncertainty = float(upper[0] - lower[0])
        if cfg.adjust_predictions:
            history = self._discrepancies.get((feature, error.name))
            if history:
                predicted += float(np.mean(history))
        return Prediction(
            feature=feature,
            error=error.name,
            predicted_f1=predicted,
            uncertainty=uncertainty,
            levels=levels,
            scores=scores,
            polluted_rows=polluted_rows,
        )

    def estimate(
        self,
        train: DataFrame,
        test: DataFrame,
        feature: str,
        error: ErrorType,
        baseline_f1: float,
        backend: ExecutionBackend | None = None,
    ) -> Prediction:
        """E1 followed by E2 for one candidate."""
        levels, scores, rows = self.measure_pollution_curve(
            train, test, feature, error, baseline_f1, backend=backend
        )
        return self.predict_cleaning(feature, error, levels, scores, rows)

    def estimate_many(
        self,
        train: DataFrame,
        test: DataFrame,
        candidates: list[tuple[str, ErrorType]],
        baseline_f1: float,
        backend: ExecutionBackend | None = None,
    ) -> list[Prediction]:
        """E1 + E2 for a whole candidate sweep in one batched dispatch.

        Builds candidate task lists in candidate order (the same RNG
        draws a sequence of :meth:`estimate` calls would make). On a
        pooled backend the whole sweep is materialized and dispatched as
        one flat task list — peak memory holds every polluted state at
        once, the price of cross-candidate parallelism. Serially, each
        candidate's states are built, scored, and discarded in turn, so
        memory matches the pre-batching loop. Either way the RNG
        consumption and results are bit-identical; see ``repro.runtime``
        for the contract.
        """
        if backend is None or isinstance(backend, SerialBackend):
            return [
                self.estimate(train, test, feature, error, baseline_f1)
                for feature, error in candidates
            ]
        groups = [
            self.build_candidate_tasks(train, test, feature, error)
            for feature, error in candidates
        ]
        flat = [task for group in groups for task in group.tasks]
        fit_scores = backend.map(run_fit_score_task, flat)
        predictions: list[Prediction] = []
        offset = 0
        for group in groups:
            chunk = fit_scores[offset : offset + len(group.tasks)]
            offset += len(group.tasks)
            levels, scores = _assemble_curve(group, chunk, baseline_f1)
            predictions.append(
                self.predict_cleaning(
                    group.feature, group.error, levels, scores, group.polluted_rows
                )
            )
        return predictions

    # ------------------------------------------------------------------ #
    # discrepancy feedback (§3.3)
    # ------------------------------------------------------------------ #
    def record_outcome(self, prediction: Prediction, actual_f1: float) -> None:
        """Feed a realized post-cleaning F1 back into the predictive model.

        The Estimator adjusts even when the Recommender judged the cleaning
        inefficient and reverted it (§3.3).
        """
        key = (prediction.feature, prediction.error)
        self._discrepancies.setdefault(key, []).append(
            actual_f1 - prediction.predicted_f1
        )

    def discrepancy_history(self, feature: str, error: str) -> list[float]:
        """Observed (actual − predicted) gaps for the pair."""
        return list(self._discrepancies.get((feature, error), []))
