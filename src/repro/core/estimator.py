"""The Estimator (§3.2): measure pollution effects, predict cleaning gains.

Step 1 (``E1``) measures prediction accuracy on incrementally polluted data
states produced by the Polluter. Step 2 (``E2``) fits a Bayesian regression
to the (pollution level → F1) series and extrapolates one *cleaning* step
backwards (level ``−step``), yielding the predicted post-cleaning F1 and
its uncertainty. After each realized cleaning, the observed discrepancy
feeds back into later predictions for the same candidate (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayes import BayesianLinearRegression, polynomial_design
from repro.core.config import CometConfig
from repro.errors.base import ErrorType
from repro.errors.polluter import Polluter
from repro.frame import DataFrame
from repro.ml.base import BaseEstimator
from repro.ml.pipeline import TabularModel

__all__ = ["CometEstimator", "Prediction"]


@dataclass
class Prediction:
    """E2 output for one (feature, error) candidate."""

    feature: str
    error: str
    #: Predicted F1 after one cleaning step (discrepancy-adjusted).
    predicted_f1: float
    #: Uncertainty: width of the credible interval of the prediction.
    uncertainty: float
    #: Measured (level, F1) points backing the prediction.
    levels: np.ndarray
    scores: np.ndarray
    #: Train rows the Polluter touched — the Cleaner's priority cells.
    polluted_rows: np.ndarray


class CometEstimator:
    """Measures pollution effects and predicts post-cleaning accuracy."""

    def __init__(
        self,
        estimator: BaseEstimator,
        label: str,
        config: CometConfig | None = None,
        rng: np.random.Generator | int | None = None,
        task: str = "classification",
    ) -> None:
        self.estimator = estimator
        self.label = label
        self.config = config or CometConfig()
        self.task = task
        self._rng = np.random.default_rng(rng)
        #: (feature, error) → list of observed (actual − predicted) F1 gaps.
        self._discrepancies: dict[tuple[str, str], list[float]] = {}

    # ------------------------------------------------------------------ #
    # E1: pollution effect measurement
    # ------------------------------------------------------------------ #
    def measure_baseline(self, train: DataFrame, test: DataFrame) -> float:
        """F1 of the model on the current (unmodified) data state."""
        model = TabularModel(self.estimator, label=self.label, task=self.task)
        return model.fit_score(train, test)

    def measure_pollution_curve(
        self,
        train: DataFrame,
        test: DataFrame,
        feature: str,
        error: ErrorType,
        baseline_f1: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Measure F1 at increasing pollution of ``feature`` (E1).

        Train and test are polluted separately (same levels, independent
        cells) to avoid leakage, per §3.1. Returns (levels, scores,
        polluted train rows), where level 0 carries the baseline.
        """
        cfg = self.config
        levels = [0.0]
        scores = [baseline_f1]
        touched: list[np.ndarray] = []
        for __ in range(cfg.n_combinations):
            seed = self._rng.integers(2**63)
            train_polluter = Polluter(error, step=cfg.step, rng=np.random.default_rng(seed))
            test_polluter = Polluter(
                error, step=cfg.step, rng=np.random.default_rng(seed + 1)
            )
            train_states = train_polluter.incremental_states(
                train, feature, n_steps=cfg.n_pollution_steps
            )[0]
            test_states = test_polluter.incremental_states(
                test, feature, n_steps=cfg.n_pollution_steps
            )[0]
            for train_state, test_state in zip(train_states, test_states):
                model = TabularModel(self.estimator, label=self.label, task=self.task)
                f1 = model.fit_score(train_state.frame, test_state.frame)
                levels.append(train_state.level)
                scores.append(f1)
            touched.append(train_states[-1].rows)
        polluted_rows = np.unique(np.concatenate(touched)) if touched else np.array([], int)
        return np.asarray(levels), np.asarray(scores), polluted_rows

    # ------------------------------------------------------------------ #
    # E2: predictive model construction
    # ------------------------------------------------------------------ #
    def predict_cleaning(
        self,
        feature: str,
        error: ErrorType,
        levels: np.ndarray,
        scores: np.ndarray,
        polluted_rows: np.ndarray,
    ) -> Prediction:
        """Fit the Bayesian regression and extrapolate to level ``−step``."""
        cfg = self.config
        design = polynomial_design(levels, degree=cfg.regression_degree)
        model = BayesianLinearRegression().fit(design, scores)
        probe = polynomial_design(np.array([-cfg.step]), degree=cfg.regression_degree)
        mean, lower, upper = model.credible_interval(probe, level=cfg.credible_level)
        predicted = float(mean[0])
        uncertainty = float(upper[0] - lower[0])
        if cfg.adjust_predictions:
            history = self._discrepancies.get((feature, error.name))
            if history:
                predicted += float(np.mean(history))
        return Prediction(
            feature=feature,
            error=error.name,
            predicted_f1=predicted,
            uncertainty=uncertainty,
            levels=levels,
            scores=scores,
            polluted_rows=polluted_rows,
        )

    def estimate(
        self,
        train: DataFrame,
        test: DataFrame,
        feature: str,
        error: ErrorType,
        baseline_f1: float,
    ) -> Prediction:
        """E1 followed by E2 for one candidate."""
        levels, scores, rows = self.measure_pollution_curve(
            train, test, feature, error, baseline_f1
        )
        return self.predict_cleaning(feature, error, levels, scores, rows)

    # ------------------------------------------------------------------ #
    # discrepancy feedback (§3.3)
    # ------------------------------------------------------------------ #
    def record_outcome(self, prediction: Prediction, actual_f1: float) -> None:
        """Feed a realized post-cleaning F1 back into the predictive model.

        The Estimator adjusts even when the Recommender judged the cleaning
        inefficient and reverted it (§3.3).
        """
        key = (prediction.feature, prediction.error)
        self._discrepancies.setdefault(key, []).append(
            actual_f1 - prediction.predicted_f1
        )

    def discrepancy_history(self, feature: str, error: str) -> list[float]:
        """Observed (actual − predicted) gaps for the pair."""
        return list(self._discrepancies.get((feature, error), []))
