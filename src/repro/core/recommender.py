"""The Recommender (§3.3): score, rank, and select cleaning candidates.

Implements Eq. 4: ``Score(f) = (P_next(f) − U(f)) / C(f)``, with the
predicted quantity expressed as a *gain* over the current F1 so that
"(A) Select Positives" has a direct reading: candidates whose predicted
post-cleaning F1 exceeds the current one. (The paper's Eq. 4 prose calls
``P_next`` the "predicted accuracy gain" while its example plugs in an
absolute F1 — the gain form is the one that makes cost normalization
meaningful, and we document the choice here and in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cleaning.cost import CostModel
from repro.core.config import CometConfig
from repro.core.estimator import Prediction

__all__ = ["ScoredCandidate", "CometRecommender"]


@dataclass
class ScoredCandidate:
    """A (feature, error) candidate with its Recommender score."""

    prediction: Prediction
    gain: float
    cost: float
    score: float

    @property
    def feature(self) -> str:
        """Feature name of the candidate."""
        return self.prediction.feature

    @property
    def error(self) -> str:
        """Error-type name of the candidate."""
        return self.prediction.error


class CometRecommender:
    """Ranks predictions and remembers past outcomes for the fallback."""

    def __init__(
        self,
        config: CometConfig | None = None,
        history: dict[tuple[str, str], float] | None = None,
    ) -> None:
        self.config = config or CometConfig()
        #: (feature, error) → best F1 ever realized right after cleaning it.
        #: ``history`` is adopted *by reference*, so a caller-owned dict
        #: (e.g. a checkpointable ``SessionState``) tracks every update.
        self._best_realized: dict[tuple[str, str], float] = (
            history if history is not None else {}
        )

    def rank(
        self,
        predictions: list[Prediction],
        baseline_f1: float,
        cost_model: CostModel,
    ) -> list[ScoredCandidate]:
        """Steps (A) and (B) of Figure 2: select positives, score, rank."""
        cfg = self.config
        candidates = []
        for prediction in predictions:
            gain = prediction.predicted_f1 - baseline_f1
            if gain <= 0.0:
                continue  # (A) Select Positives
            cost = cost_model.next_cost(prediction.feature, prediction.error)
            effective = gain - prediction.uncertainty if cfg.use_uncertainty else gain
            score = effective / max(cost, cfg.min_cost)
            candidates.append(
                ScoredCandidate(prediction=prediction, gain=gain, cost=cost, score=score)
            )
        return sorted(candidates, key=lambda c: c.score, reverse=True)

    # ------------------------------------------------------------------ #
    # outcome memory and fallback (§3.3, step E)
    # ------------------------------------------------------------------ #
    def record_outcome(self, feature: str, error: str, f1_after: float) -> None:
        """Remember the realized post-cleaning F1 for the fallback."""
        key = (feature, error)
        best = self._best_realized.get(key)
        if best is None or f1_after > best:
            self._best_realized[key] = f1_after

    def fallback_candidate(
        self, available: list[tuple[str, str]]
    ) -> tuple[str, str] | None:
        """The candidate that previously achieved the highest post-cleaning
        F1; if none has history yet, the first available candidate."""
        if not available:
            return None
        with_history = [
            (self._best_realized[pair], pair)
            for pair in available
            if pair in self._best_realized
        ]
        if with_history:
            return max(with_history)[1]
        return available[0]
