"""Human-readable session reports for cleaning traces.

Summarizes a finished (or in-progress) COMET/baseline run as markdown: the
F1 trajectory, per-iteration decisions, budget allocation by feature and
error type, prediction quality, and buffer/fallback statistics.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.trace import CleaningTrace

__all__ = ["session_report"]


def session_report(trace: CleaningTrace, title: str = "Cleaning session") -> str:
    """Render a markdown report of a cleaning run."""
    lines = [f"# {title}", ""]
    lines += _summary_section(trace)
    if trace.records:
        lines += _iteration_table(trace)
        lines += _allocation_section(trace)
        lines += _prediction_section(trace)
    return "\n".join(lines) + "\n"


def _summary_section(trace: CleaningTrace) -> list[str]:
    gain = trace.final_f1 - trace.initial_f1
    n_fallback = sum(1 for r in trace.records if r.used_fallback)
    n_buffer = sum(1 for r in trace.records if r.from_buffer)
    n_reverts = sum(len(r.rejected) for r in trace.records)
    return [
        "## Summary",
        "",
        f"* score: {trace.initial_f1:.4f} → {trace.final_f1:.4f} ({gain:+.4f})",
        f"* budget spent: {trace.total_spent:g}",
        f"* cleaning steps kept: {len(trace.records)}"
        f" (fallbacks: {n_fallback}, buffer replays: {n_buffer},"
        f" reverted attempts: {n_reverts})",
        "",
    ]


def _iteration_table(trace: CleaningTrace) -> list[str]:
    lines = [
        "## Iterations",
        "",
        "| # | feature | error | cost | spent | score | Δ | notes |",
        "|---|---------|-------|------|-------|-------|---|-------|",
    ]
    for r in trace.records:
        notes = []
        if r.used_fallback:
            notes.append("fallback")
        if r.from_buffer:
            notes.append("buffer")
        if r.rejected:
            notes.append("reverted: " + ", ".join(f"{f}/{e}" for f, e in r.rejected))
        lines.append(
            f"| {r.iteration} | {r.feature} | {r.error} | {r.cost:g} "
            f"| {r.budget_spent:g} | {r.f1_after:.4f} | {r.gain:+.4f} "
            f"| {'; '.join(notes)} |"
        )
    lines.append("")
    return lines


def _allocation_section(trace: CleaningTrace) -> list[str]:
    by_feature: dict[str, float] = defaultdict(float)
    by_error: dict[str, float] = defaultdict(float)
    for r in trace.records:
        by_feature[r.feature] += r.cost
        by_error[r.error] += r.cost
    lines = ["## Budget allocation", ""]
    lines.append("by feature: " + ", ".join(
        f"{f}={c:g}" for f, c in sorted(by_feature.items(), key=lambda kv: -kv[1])
    ))
    lines.append("by error type: " + ", ".join(
        f"{e}={c:g}" for e, c in sorted(by_error.items(), key=lambda kv: -kv[1])
    ))
    lines.append("")
    return lines


def _prediction_section(trace: CleaningTrace) -> list[str]:
    errors = trace.prediction_errors()
    lines = ["## Estimator quality", ""]
    if errors:
        lines.append(
            f"* prediction MAE: {np.mean(errors):.4f} over {len(errors)} kept steps"
            f" (worst {max(errors):.4f})"
        )
    else:
        lines.append("* no predictions recorded (fallback-only run)")
    lines.append("")
    return lines
