"""Cleaning traces: the (budget, F1) series every experiment reports."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["IterationRecord", "CleaningTrace"]


@dataclass
class IterationRecord:
    """Outcome of one cleaning iteration."""

    iteration: int
    feature: str
    error: str
    cost: float
    budget_spent: float
    f1_before: float
    f1_after: float
    predicted_f1: float | None = None
    used_fallback: bool = False
    from_buffer: bool = False
    reverted: bool = False
    #: Candidates tried and reverted earlier in the same iteration.
    rejected: list = field(default_factory=list)

    @property
    def gain(self) -> float:
        """F1 change of this iteration (after minus before)."""
        return self.f1_after - self.f1_before

    def to_dict(self) -> dict:
        """JSON-safe representation (tuples in ``rejected`` become lists)."""
        return {**asdict(self), "rejected": [list(pair) for pair in self.rejected]}


@dataclass
class CleaningTrace:
    """The full history of a cleaning run.

    ``f1_at(budget_grid)`` evaluates the run as a step function over spent
    budget: the F1 achieved at the last iteration whose cumulative cost is
    ≤ the grid point — the paper's propagation rule ("we propagate the F1
    scores achieved from previously utilized budget units until an actual
    F1 score is measured").
    """

    initial_f1: float
    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        """Add an iteration record to the trace."""
        self.records.append(record)

    @property
    def total_spent(self) -> float:
        """Budget spent up to the last record."""
        return self.records[-1].budget_spent if self.records else 0.0

    @property
    def final_f1(self) -> float:
        """F1 after the last record (initial F1 when empty)."""
        return self.records[-1].f1_after if self.records else self.initial_f1

    def f1_at(self, budget_grid: np.ndarray | list) -> np.ndarray:
        """Step-function F1 over a budget grid, with propagation."""
        grid = np.asarray(budget_grid, dtype=float)
        spent = np.array([r.budget_spent for r in self.records])
        scores = np.array([r.f1_after for r in self.records])
        out = np.full(grid.shape, self.initial_f1)
        for i, b in enumerate(grid):
            hit = np.flatnonzero(spent <= b + 1e-9)
            if hit.size:
                out[i] = scores[hit[-1]]
        return out

    def prediction_errors(self) -> list[float]:
        """|predicted − actual| F1 per iteration where a prediction existed
        and the step was kept (the Figure 11 MAE inputs)."""
        return [
            abs(r.predicted_f1 - r.f1_after)
            for r in self.records
            if r.predicted_f1 is not None and not r.reverted
        ]

    # ------------------------------------------------------------------ #
    # persistence — long experiment campaigns save traces between stages
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-python representation (round-trips via :meth:`from_dict`)."""
        return {
            "initial_f1": self.initial_f1,
            "records": [r.to_dict() for r in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CleaningTrace":
        """Rebuild a trace produced by :meth:`to_dict`."""
        trace = cls(initial_f1=float(data["initial_f1"]))
        for raw in data.get("records", []):
            raw = dict(raw)
            raw["rejected"] = [tuple(pair) for pair in raw.get("rejected", [])]
            trace.append(IterationRecord(**raw))
        return trace

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load(cls, path: str | Path) -> "CleaningTrace":
        """Read a trace written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
