"""Datasets (§4.3): seeded synthetic equivalents of the paper's seven
classification datasets.

The reproduction environment has no network access, so each public dataset
(UCI / Kaggle / CleanML) is replaced by a generator that matches its Table 1
schema — row count, number of categorical and numerical features, number of
classes, and class balance — and plants learnable feature → label signal
with per-feature importance spread. COMET never inspects dataset semantics,
only the (data, model) → F1 response to cell edits, so this preserves the
phenomena the experiments measure. See DESIGN.md §2 for the substitution
argument.
"""

from repro.datasets.cleanml import CLEANML_ERRORS, load_cleanml
from repro.datasets.registry import (
    DATASET_NAMES,
    TabularDataset,
    dataset_summaries,
    load_dataset,
    pollute,
)

__all__ = [
    "TabularDataset",
    "load_dataset",
    "pollute",
    "dataset_summaries",
    "DATASET_NAMES",
    "load_cleanml",
    "CLEANML_ERRORS",
]
