"""CleanML-style datasets: fixed dirty/clean pairs (§4.3).

The CleanML benchmark ships real datasets in both a dirty and a manually
cleaned version with one characteristic error type each: Airbnb and Credit
with scaling errors, Titanic with missing values. We reproduce that setup
by generating the clean twin and injecting the characteristic error at
fixed per-feature rates (a dataset property, not a sampled pre-pollution
setting — matching how the paper treats these datasets as given).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.datasets.registry import load_dataset
from repro.errors.prepollution import PollutedDataset, PrePollution

__all__ = ["CLEANML_ERRORS", "load_cleanml"]

#: Characteristic error type per CleanML dataset (§4.3).
CLEANML_ERRORS = {
    "airbnb": "scaling",
    "credit": "scaling",
    "titanic": "missing",
}

#: Fraction of affected features and their fixed dirt level. CleanML's
#: errors concentrate in a handful of columns; we dirty roughly a third of
#: the applicable features at a fixed rate.
_AFFECTED_SHARE = 0.4
_DIRT_LEVEL = 0.12


def load_cleanml(
    name: str,
    n_rows: int | None = None,
    rng: np.random.Generator | int | None = None,
    test_size: float = 0.2,
) -> PollutedDataset:
    """Load a CleanML dataset as a (dirty, clean ground truth) pair."""
    key = name.lower()
    if key not in CLEANML_ERRORS:
        raise ValueError(
            f"{name!r} is not a CleanML dataset; choose from {sorted(CLEANML_ERRORS)}"
        )
    error_name = CLEANML_ERRORS[key]
    dataset = load_dataset(key, n_rows=n_rows)
    # The dirt pattern is a fixed dataset property: derive it from the
    # dataset name, independent of the caller's rng (which only controls
    # the split). crc32, not hash(): str hashing is salted per process
    # (PYTHONHASHSEED), which would make the "fixed" dirt differ run to run.
    dirt_rng = np.random.default_rng(zlib.crc32(key.encode()))
    clean_train, clean_test = dataset.split(test_size=test_size, rng=rng)
    pre = PrePollution([error_name], step=0.01, rng=dirt_rng)
    applicable = [
        f
        for f in dataset.feature_names
        if any(e.applies_to(clean_train[f]) for e in pre.error_types)
    ]
    n_affected = max(1, int(round(len(applicable) * _AFFECTED_SHARE)))
    affected = list(dirt_rng.choice(applicable, size=n_affected, replace=False))
    levels = {f: (_DIRT_LEVEL if f in affected else 0.0) for f in dataset.feature_names}
    return pre.apply(
        clean_train, clean_test, label=dataset.label, name=f"cleanml-{key}", levels=levels
    )
