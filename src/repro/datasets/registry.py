"""Dataset registry: the seven datasets of Table 1, as synthetic twins.

Each entry reproduces the schema of the paper's dataset — rows, feature
kind counts, classes, and class balance — with a deterministic generator.
``load_dataset`` returns a clean :class:`TabularDataset`; ``pollute`` turns
one into a :class:`~repro.errors.PollutedDataset` with a sampled
pre-pollution setting, ready for a COMET (or baseline) run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synth import SyntheticSpec, synthesize
from repro.errors.prepollution import PollutedDataset, PrePollution
from repro.frame import DataFrame
from repro.ml.model_selection import train_test_split

__all__ = [
    "TabularDataset",
    "load_dataset",
    "pollute",
    "dataset_summaries",
    "DATASET_NAMES",
]

#: Table 1 schemas: (rows, categorical, numerical, classes, class balance).
_SPECS: dict[str, SyntheticSpec] = {
    # Datasets used with pre-pollution
    "cmc": SyntheticSpec(
        n_rows=1473, n_numeric=2, n_categorical=7, n_classes=3,
        cat_cardinality=(4, 3, 2), label_noise=0.9,
    ),
    "churn": SyntheticSpec(
        n_rows=7032, n_numeric=3, n_categorical=16, n_classes=2,
        cat_cardinality=(3, 2, 4, 2), class_balance=(0.73, 0.27), label_noise=0.7,
    ),
    "eeg": SyntheticSpec(
        n_rows=14980, n_numeric=14, n_categorical=0, n_classes=2,
        label_noise=0.5, numeric_correlation=0.35,
    ),
    "s-credit": SyntheticSpec(
        n_rows=1000, n_numeric=3, n_categorical=17, n_classes=2,
        cat_cardinality=(4, 2, 3, 5, 2), class_balance=(0.7, 0.3), label_noise=0.8,
    ),
    # Datasets provided by CleanML
    "airbnb": SyntheticSpec(
        n_rows=26288, n_numeric=37, n_categorical=3, n_classes=2,
        cat_cardinality=(5, 3, 4), label_noise=0.6, signal_decay=0.85,
    ),
    "credit": SyntheticSpec(
        n_rows=11985, n_numeric=10, n_categorical=0, n_classes=2,
        class_balance=(0.93, 0.07), label_noise=0.55,
    ),
    "titanic": SyntheticSpec(
        n_rows=891, n_numeric=2, n_categorical=6, n_classes=2,
        cat_cardinality=(3, 2, 4), class_balance=(0.62, 0.38), label_noise=0.7,
    ),
}

DATASET_NAMES = tuple(sorted(_SPECS))

#: Deterministic per-dataset seed so every loader call agrees on the data.
_DATASET_SEEDS = {name: 7_000 + i for i, name in enumerate(DATASET_NAMES)}


@dataclass
class TabularDataset:
    """A clean classification dataset with its label column name."""

    name: str
    frame: DataFrame
    label: str

    @property
    def feature_names(self) -> list[str]:
        """Feature column names (label excluded)."""
        return [n for n in self.frame.column_names if n != self.label]

    def split(
        self,
        test_size: float = 0.2,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[DataFrame, DataFrame]:
        """Stratified train/test split of the clean frame."""
        y = self.frame.label_array(self.label)
        train_idx, test_idx = train_test_split(
            self.frame.n_rows, test_size=test_size, rng=rng, stratify=y
        )
        return self.frame.take(train_idx), self.frame.take(test_idx)


def load_dataset(
    name: str,
    n_rows: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> TabularDataset:
    """Load (generate) a clean dataset by paper name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (case-insensitive).
    n_rows:
        Optional row-count override. The experiments use scaled-down rows
        for tractable laptop runs; Table 1 reporting uses the full size.
    rng:
        Extra entropy mixed into the dataset seed. ``None`` or a fixed int
        keeps the canonical deterministic data.
    """
    key = name.lower()
    try:
        spec = _SPECS[key]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}") from None
    base_seed = _DATASET_SEEDS[key]
    if rng is None:
        seed: int | np.random.Generator = base_seed
    elif isinstance(rng, (int, np.integer)):
        seed = base_seed + int(rng)
    else:
        seed = rng
    frame = synthesize(spec, n_rows=n_rows, rng=seed)
    return TabularDataset(name=key, frame=frame, label="label")


def pollute(
    dataset: TabularDataset,
    error_types=("missing",),
    scale: float = 0.15,
    max_level: float = 0.4,
    step: float = 0.01,
    test_size: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> PollutedDataset:
    """Split a clean dataset and apply a sampled pre-pollution setting."""
    rng = np.random.default_rng(rng)
    clean_train, clean_test = dataset.split(test_size=test_size, rng=rng)
    pre = PrePollution(
        list(error_types) if isinstance(error_types, (list, tuple)) else [error_types],
        scale=scale,
        max_level=max_level,
        step=step,
        rng=rng,
    )
    return pre.apply(clean_train, clean_test, label=dataset.label, name=dataset.name)


def dataset_summaries() -> list[dict]:
    """Table 1 rows: name, #rows, #categorical, #numerical, #classes."""
    rows = []
    for name in (
        "cmc", "churn", "eeg", "s-credit", "airbnb", "credit", "titanic"
    ):
        spec = _SPECS[name]
        rows.append(
            {
                "name": name,
                "n_rows": spec.n_rows,
                "n_categorical": spec.n_categorical,
                "n_numerical": spec.n_numeric,
                "n_classes": spec.n_classes,
            }
        )
    return rows
