"""Generic synthetic tabular data generator.

Produces classification datasets with a configurable mix of numeric and
categorical features, per-feature signal strengths (so features differ in
importance — the property COMET and the FIR baseline exploit), correlated
numeric blocks, and a softmax label model with controllable noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frame import Column, ColumnKind, DataFrame

__all__ = ["SyntheticSpec", "synthesize", "synthesize_regression"]


@dataclass
class SyntheticSpec:
    """Recipe for one synthetic dataset.

    Attributes
    ----------
    n_rows:
        Default row count (matches Table 1; loaders may scale it down).
    n_numeric / n_categorical:
        Feature counts per kind.
    n_classes:
        Number of label classes.
    cat_cardinality:
        Categories per categorical feature (cycled if shorter than
        ``n_categorical``).
    signal_decay:
        Geometric decay of per-feature signal strength; smaller values
        concentrate the label signal in few features.
    label_noise:
        Temperature of the softmax label draw; larger = noisier labels.
    class_balance:
        Optional prior over classes (defaults to uniform) — used to mimic
        imbalanced tasks like Churn.
    numeric_correlation:
        Pairwise correlation within the numeric block.
    """

    n_rows: int
    n_numeric: int
    n_categorical: int
    n_classes: int = 2
    cat_cardinality: tuple = (3,)
    signal_decay: float = 0.75
    label_noise: float = 0.6
    class_balance: tuple | None = None
    numeric_correlation: float = 0.2

    def __post_init__(self) -> None:
        if self.n_rows < 10:
            raise ValueError("n_rows must be >= 10")
        if self.n_numeric < 0 or self.n_categorical < 0:
            raise ValueError("feature counts must be non-negative")
        if self.n_numeric + self.n_categorical == 0:
            raise ValueError("need at least one feature")
        if self.n_classes < 2:
            raise ValueError("n_classes must be >= 2")
        if not 0.0 < self.signal_decay <= 1.0:
            raise ValueError("signal_decay must be in (0, 1]")
        if self.label_noise <= 0.0:
            raise ValueError("label_noise must be positive")
        if self.class_balance is not None and len(self.class_balance) != self.n_classes:
            raise ValueError("class_balance length must equal n_classes")


def synthesize(
    spec: SyntheticSpec,
    n_rows: int | None = None,
    rng: np.random.Generator | int | None = None,
    label: str = "label",
) -> DataFrame:
    """Generate a clean dataset according to ``spec``.

    Feature columns are named ``num_0 … num_{k-1}`` and ``cat_0 …``; the
    label column carries integer classes. The same (spec, seed) pair always
    yields the same data.
    """
    rng = np.random.default_rng(rng)
    n = n_rows or spec.n_rows
    if n < 10:
        raise ValueError("n_rows must be >= 10")

    numeric, latent = _numeric_block(spec, n, rng)
    cat_values, cat_scores = _categorical_block(spec, n, rng)

    # Per-feature signal strengths decay geometrically across an
    # interleaved feature order so both kinds get strong and weak features.
    n_features = spec.n_numeric + spec.n_categorical
    strengths = spec.signal_decay ** np.arange(n_features)
    order = rng.permutation(n_features)
    strengths = strengths[np.argsort(order)]
    num_strength = strengths[: spec.n_numeric]
    cat_strength = strengths[spec.n_numeric :]

    # The label model sees the *standardized* latent numerics; the emitted
    # columns carry realistic locations/scales on top. This keeps classes
    # balanced regardless of feature units.
    logits = np.zeros((n, spec.n_classes))
    for j in range(spec.n_numeric):
        weights = rng.normal(size=spec.n_classes)
        weights -= weights.mean()
        logits += num_strength[j] * np.outer(latent[:, j], weights)
    for j in range(spec.n_categorical):
        logits += cat_strength[j] * cat_scores[j]
    scaled = logits / spec.label_noise
    scaled -= scaled.max(axis=1, keepdims=True)
    if spec.class_balance is not None:
        target = np.asarray(spec.class_balance, dtype=float)
    else:
        target = np.ones(spec.n_classes)
    target = target / target.sum()
    # Calibrate per-class intercepts so the marginal label distribution
    # matches the target balance (fixed-point iteration on the bias).
    bias = np.zeros(spec.n_classes)
    for __ in range(25):
        probs = _softmax(scaled + bias)
        marginal = probs.mean(axis=0)
        bias += np.log(target / np.maximum(marginal, 1e-9))
    probs = _softmax(scaled + bias)
    labels = np.array([rng.choice(spec.n_classes, p=p) for p in probs])

    columns = [
        Column(f"num_{j}", numeric[:, j], kind=ColumnKind.NUMERIC)
        for j in range(spec.n_numeric)
    ]
    columns += [
        Column(f"cat_{j}", values, kind=ColumnKind.CATEGORICAL)
        for j, values in enumerate(cat_values)
    ]
    columns.append(Column(label, labels.astype(float), kind=ColumnKind.NUMERIC))
    return DataFrame(columns)


def synthesize_regression(
    spec: SyntheticSpec,
    n_rows: int | None = None,
    rng: np.random.Generator | int | None = None,
    label: str = "target",
    target_noise: float = 0.3,
) -> DataFrame:
    """Generate a clean *regression* dataset according to ``spec``.

    The target is a linear combination of the standardized numeric latents
    and per-category offsets, plus Gaussian noise — the regression
    counterpart used by COMET's §6 task extension. ``n_classes`` in the
    spec is ignored.
    """
    rng = np.random.default_rng(rng)
    n = n_rows or spec.n_rows
    if n < 10:
        raise ValueError("n_rows must be >= 10")
    if target_noise <= 0:
        raise ValueError("target_noise must be positive")
    numeric, latent = _numeric_block(spec, n, rng)
    cat_values, cat_scores = _categorical_block(spec, n, rng)
    n_features = spec.n_numeric + spec.n_categorical
    strengths = spec.signal_decay ** np.arange(n_features)
    target = np.zeros(n)
    for j in range(spec.n_numeric):
        target += strengths[j] * rng.normal() * latent[:, j]
    for j in range(spec.n_categorical):
        target += strengths[spec.n_numeric + j] * cat_scores[j][:, 0]
    target += rng.normal(0.0, target_noise, size=n)
    columns = [
        Column(f"num_{j}", numeric[:, j], kind=ColumnKind.NUMERIC)
        for j in range(spec.n_numeric)
    ]
    columns += [
        Column(f"cat_{j}", values, kind=ColumnKind.CATEGORICAL)
        for j, values in enumerate(cat_values)
    ]
    columns.append(Column(label, target, kind=ColumnKind.NUMERIC))
    return DataFrame(columns)


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _numeric_block(
    spec: SyntheticSpec, n: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Returns (emitted values, standardized latent) for the numeric block."""
    if spec.n_numeric == 0:
        return np.zeros((n, 0)), np.zeros((n, 0))
    d = spec.n_numeric
    cov = np.full((d, d), spec.numeric_correlation)
    np.fill_diagonal(cov, 1.0)
    latent = rng.multivariate_normal(np.zeros(d), cov, size=n, method="cholesky")
    # Give features distinct locations/scales so scaling errors are
    # meaningful unit mistakes rather than no-ops around zero.
    locations = rng.uniform(-5.0, 20.0, size=d)
    scales = rng.uniform(0.5, 8.0, size=d)
    return latent * scales + locations, latent


def _categorical_block(
    spec: SyntheticSpec, n: int, rng: np.random.Generator
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    values: list[np.ndarray] = []
    scores: list[np.ndarray] = []
    cards = spec.cat_cardinality
    for j in range(spec.n_categorical):
        k = cards[j % len(cards)]
        codes = rng.integers(0, k, size=n)
        vocab = np.array([f"c{j}_{v}" for v in range(k)], dtype=object)
        values.append(vocab[codes])
        # Each category contributes a class-specific logit offset.
        offsets = rng.normal(size=(k, spec.n_classes))
        scores.append(offsets[codes])
    return values, scores
