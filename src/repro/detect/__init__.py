"""Error detection and automatic repair (§4.2's cleaning mechanics).

The paper's cost-model rationale names concrete detection techniques:
outlier detection for scaling errors, noise-distribution estimation for
Gaussian noise, plain scans for missing values, and functional-dependency /
association-rule mining for categorical shifts. This subpackage implements
those detectors plus matching repairers, and the resulting
:class:`~repro.detect.cleaner.AlgorithmicCleaner` — a Cleaner that works on
*detected* cells rather than ground truth, so COMET can drive a fully
automatic pipeline (the "algorithm-based Cleaner" of §3).
"""

from repro.detect.cleaner import AlgorithmicCleaner
from repro.detect.detectors import (
    CategoricalShiftDetector,
    Detection,
    Detector,
    MissingValueDetector,
    NoiseDetector,
    ScalingDetector,
    detector_for,
)
from repro.detect.fd import (
    ApproximateFD,
    clear_fd_cache,
    discover_fds,
    fd_cache_stats,
)
from repro.detect.repair import (
    ConditionalModeRepairer,
    MeanRepairer,
    MedianRepairer,
    ModeRepairer,
    Repairer,
    repairer_for,
)

__all__ = [
    "Detection",
    "Detector",
    "MissingValueDetector",
    "NoiseDetector",
    "ScalingDetector",
    "CategoricalShiftDetector",
    "detector_for",
    "ApproximateFD",
    "discover_fds",
    "fd_cache_stats",
    "clear_fd_cache",
    "Repairer",
    "MeanRepairer",
    "MedianRepairer",
    "ModeRepairer",
    "ConditionalModeRepairer",
    "repairer_for",
    "AlgorithmicCleaner",
]
