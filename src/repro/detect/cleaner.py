"""An algorithmic Cleaner: detect → repair, no ground truth.

Drop-in alternative to :class:`~repro.cleaning.GroundTruthCleaner` with the
same ``clean_step`` / ``revert`` / ``apply`` interface, so a COMET session
can run fully automatically (§3's "algorithm-based" Cleaner). Each step
detects suspicious cells of the requested (feature, error) pair, repairs
up to one step's worth by imputation, and reports what it did.

Repaired cells are removed from the dataset's dirty bookkeeping when they
were genuinely dirty — the bookkeeping is the experiment's ground-truth
ledger, and an addressed error no longer counts as open even if the
imputed value is only an estimate. Falsely-flagged clean cells get
repaired too (imputation noise), exactly the real-world cost of automatic
cleaning.
"""

from __future__ import annotations

import numpy as np

from repro.cleaning.cleaner import CleaningAction
from repro.detect.detectors import Detector, detector_for
from repro.detect.repair import Repairer, repairer_for
from repro.errors.prepollution import PollutedDataset

__all__ = ["AlgorithmicCleaner"]


class AlgorithmicCleaner:
    """Detect-and-impute Cleaner with COMET's cleaning-step granularity.

    Parameters
    ----------
    step:
        Cleaning step as a fraction of each split (1 % in the paper).
    detectors / repairers:
        Optional overrides per error-type name; defaults come from
        :func:`detector_for` / :func:`repairer_for`.
    """

    def __init__(
        self,
        step: float = 0.01,
        detectors: dict[str, Detector] | None = None,
        repairers: dict[str, Repairer] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < step <= 1.0:
            raise ValueError(f"step must be in (0, 1], got {step}")
        self.step = step
        self.detectors = dict(detectors or {})
        self.repairers = dict(repairers or {})
        self._rng = np.random.default_rng(rng)

    def cells_per_step(self, n_rows: int) -> int:
        """Number of cells one cleaning step covers."""
        return max(1, int(round(self.step * n_rows)))

    def _detector(self, error: str) -> Detector:
        if error not in self.detectors:
            self.detectors[error] = detector_for(error)
        return self.detectors[error]

    def _repairer(self, error: str, numeric: bool) -> Repairer:
        key = f"{error}:{'num' if numeric else 'cat'}"
        if key not in self.repairers:
            self.repairers[key] = repairer_for(error, numeric)
        return self.repairers[key]

    # ------------------------------------------------------------------ #
    def clean_step(
        self,
        dataset: PollutedDataset,
        feature: str,
        error: str,
        priority_train_rows: np.ndarray | None = None,
    ) -> CleaningAction:
        """Detect and repair one step's worth of cells, in place."""
        train_rows = self._select_rows(
            dataset, "train", feature, error, priority_train_rows
        )
        test_rows = self._select_rows(dataset, "test", feature, error, None)
        # O(1) COW snapshots — the repairs below copy-on-write before
        # mutating, leaving the before/after images untouched.
        train_before = dataset.train[feature].copy()
        test_before = dataset.test[feature].copy()
        self._repair_split(dataset.train, feature, error, train_rows)
        self._repair_split(dataset.test, feature, error, test_rows)
        dirty_train_removed = self._intersect(
            dataset.dirty_train.rows(feature, error), train_rows
        )
        dirty_test_removed = self._intersect(
            dataset.dirty_test.rows(feature, error), test_rows
        )
        dataset.dirty_train.remove(feature, error, dirty_train_removed)
        dataset.dirty_test.remove(feature, error, dirty_test_removed)
        return CleaningAction(
            feature=feature,
            error=error,
            train_rows=train_rows,
            test_rows=test_rows,
            train_before=train_before,
            test_before=test_before,
            train_after=dataset.train[feature].copy(),
            test_after=dataset.test[feature].copy(),
            dirty_train_removed=dirty_train_removed,
            dirty_test_removed=dirty_test_removed,
        )

    def revert(self, dataset: PollutedDataset, action: CleaningAction) -> None:
        """Undo a cleaning step (data and dirty bookkeeping)."""
        dataset.train.set_column(action.train_before.copy())
        dataset.test.set_column(action.test_before.copy())
        dataset.dirty_train.add(action.feature, action.error, action.dirty_train_removed)
        dataset.dirty_test.add(action.feature, action.error, action.dirty_test_removed)

    def apply(self, dataset: PollutedDataset, action: CleaningAction) -> None:
        """Re-apply a previously reverted cleaning step."""
        dataset.train.set_column(action.train_after.copy())
        dataset.test.set_column(action.test_after.copy())
        dataset.dirty_train.remove(action.feature, action.error, action.dirty_train_removed)
        dataset.dirty_test.remove(action.feature, action.error, action.dirty_test_removed)

    # ------------------------------------------------------------------ #
    def _select_rows(
        self,
        dataset: PollutedDataset,
        split: str,
        feature: str,
        error: str,
        priority_rows: np.ndarray | None,
    ) -> np.ndarray:
        frame = dataset.train if split == "train" else dataset.test
        detection = self._detector(error).detect(frame, feature)
        n_cells = self.cells_per_step(frame.n_rows)
        detected = np.asarray(detection.rows, dtype=int)
        # Priority rows that the detector also flagged come first (in
        # priority order), then remaining detected rows in suspicion
        # order, capped at one step's worth — a vectorized rewrite of the
        # old append-and-membership-test loop with identical selection.
        if priority_rows is not None:
            priority = np.asarray(priority_rows, dtype=int)
            head = priority[np.isin(priority, detected)][:n_cells]
        else:
            head = np.array([], dtype=int)
        tail = detected[~np.isin(detected, head)]
        selected = np.concatenate([head, tail])[:n_cells]
        return np.sort(selected).astype(int)

    def _repair_split(self, frame, feature: str, error: str, rows: np.ndarray) -> None:
        if rows.size == 0:
            return
        column = frame[feature]
        repairer = self._repairer(error, column.is_numeric)
        column.set_values(rows, repairer.repair(frame, feature, rows))

    @staticmethod
    def _intersect(dirty_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return np.array(
            sorted(set(dirty_rows.tolist()) & set(rows.tolist())), dtype=int
        )
