"""Per-error-type cell detectors.

Each detector inspects one feature column (optionally with the rest of the
frame as context) and returns the rows it believes are dirty, with a
per-row suspicion score — no ground truth involved. The techniques follow
§4.2's descriptions:

* missing values — a direct scan of the missing mask;
* scaling errors — magnitude outliers (robust log-scale MAD test: a cell
  ×10/×100/×1000 sits far from the column's bulk);
* Gaussian noise — distribution outliers after robust standardization;
* categorical shift — violations of approximate functional dependencies
  against the other categorical columns.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.detect.fd import discover_fds
from repro.frame import DataFrame

__all__ = [
    "Detection",
    "Detector",
    "MissingValueDetector",
    "ScalingDetector",
    "NoiseDetector",
    "CategoricalShiftDetector",
    "detector_for",
]


@dataclass
class Detection:
    """Rows a detector flags in one feature, most suspicious first."""

    feature: str
    error: str
    rows: np.ndarray
    scores: np.ndarray = field(default_factory=lambda: np.array([]))

    def top(self, n: int) -> np.ndarray:
        """The ``n`` most suspicious rows."""
        return self.rows[:n]

    def __len__(self) -> int:
        return len(self.rows)


class Detector(abc.ABC):
    """Detects one error type in one feature column."""

    #: Error-type name this detector targets.
    error: str = ""

    @abc.abstractmethod
    def detect(self, frame: DataFrame, feature: str) -> Detection:
        """Return suspected dirty rows of ``feature``."""


class MissingValueDetector(Detector):
    """Missing cells are directly observable from the missing mask."""

    error = "missing"

    def detect(self, frame: DataFrame, feature: str) -> Detection:
        """Return suspected dirty rows of ``feature`` in ``frame``."""
        rows = np.flatnonzero(frame[feature].missing_mask)
        return Detection(
            feature=feature, error=self.error, rows=rows, scores=np.ones(len(rows))
        )


class ScalingDetector(Detector):
    """Magnitude outliers: cells whose |log10| distance from the column
    median exceeds ``threshold_decades`` decades.

    A ×10 scaling error moves a cell one full decade; the robust median
    baseline keeps up to ~40 % dirty cells from masking themselves.
    """

    error = "scaling"

    def __init__(self, threshold_decades: float = 0.8) -> None:
        if threshold_decades <= 0:
            raise ValueError("threshold_decades must be positive")
        self.threshold_decades = threshold_decades

    def detect(self, frame: DataFrame, feature: str) -> Detection:
        """Return suspected dirty rows of ``feature`` in ``frame``."""
        column = frame[feature]
        values = column.values
        present = ~column.missing_mask & np.isfinite(values)
        magnitudes = np.full(len(values), np.nan)
        nonzero = present & (np.abs(values) > 1e-12)
        magnitudes[nonzero] = np.log10(np.abs(values[nonzero]))
        baseline = np.nanmedian(magnitudes) if nonzero.any() else 0.0
        distance = np.abs(magnitudes - baseline)
        suspects = np.flatnonzero(np.nan_to_num(distance, nan=0.0) > self.threshold_decades)
        order = np.argsort(-distance[suspects], kind="stable")
        rows = suspects[order]
        return Detection(
            feature=feature, error=self.error, rows=rows, scores=distance[rows]
        )


class NoiseDetector(Detector):
    """Distribution outliers after robust (median/MAD) standardization.

    Estimates the clean noise level from the column bulk and flags cells
    beyond ``z_threshold`` robust standard deviations — §4.2's "estimating
    noise distribution and identifying strong outliers".
    """

    error = "noise"

    def __init__(self, z_threshold: float = 3.0) -> None:
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.z_threshold = z_threshold

    def detect(self, frame: DataFrame, feature: str) -> Detection:
        """Return suspected dirty rows of ``feature`` in ``frame``."""
        column = frame[feature]
        values = column.values
        present = ~column.missing_mask & np.isfinite(values)
        if present.sum() < 5:
            return Detection(feature=feature, error=self.error,
                             rows=np.array([], int), scores=np.array([]))
        bulk = values[present]
        median = float(np.median(bulk))
        mad = float(np.median(np.abs(bulk - median)))
        scale = 1.4826 * mad if mad > 0 else float(bulk.std()) or 1.0
        z = np.zeros(len(values))
        z[present] = np.abs(values[present] - median) / scale
        suspects = np.flatnonzero(z > self.z_threshold)
        order = np.argsort(-z[suspects], kind="stable")
        rows = suspects[order]
        return Detection(feature=feature, error=self.error, rows=rows, scores=z[rows])


class CategoricalShiftDetector(Detector):
    """FD-violation detection for categorical shifts.

    Mines approximate FDs between the target feature and the other
    categorical columns (both directions) and flags rows that violate
    them; each violated dependency adds the FD's confidence to the row's
    suspicion score.
    """

    error = "categorical"

    def __init__(self, min_confidence: float = 0.85) -> None:
        self.min_confidence = min_confidence

    def detect(self, frame: DataFrame, feature: str) -> Detection:
        """Return suspected dirty rows of ``feature`` in ``frame``."""
        others = [c for c in frame.categorical_columns() if c != feature]
        scores = np.zeros(frame.n_rows)
        for other in others:
            fds = discover_fds(
                frame, columns=[feature, other], min_confidence=self.min_confidence
            )
            for fd in fds:
                if feature not in (fd.lhs, fd.rhs):
                    continue
                # Violation rows are unique, so one fancy-indexed add per
                # FD replaces the per-row Python loop with identical
                # floating-point operations in identical order.
                scores[fd.violations(frame)] += fd.confidence
        suspects = np.flatnonzero(scores > 0.0)
        order = np.argsort(-scores[suspects], kind="stable")
        rows = suspects[order]
        return Detection(feature=feature, error=self.error, rows=rows, scores=scores[rows])


def detector_for(error: str) -> Detector:
    """Default detector instance for an error-type name."""
    factories = {
        "missing": MissingValueDetector,
        "scaling": ScalingDetector,
        "noise": NoiseDetector,
        "categorical": CategoricalShiftDetector,
    }
    try:
        return factories[error]()
    except KeyError:
        raise ValueError(
            f"no detector for error type {error!r}; available: {sorted(factories)}"
        ) from None
