"""Approximate functional-dependency discovery over categorical columns.

§4.2 motivates categorical-shift detection with "FD discovery algorithms
or association rule mining": a shifted category breaks dependencies that
hold for the clean majority. This module mines pairwise approximate FDs
``X → Y`` (a TANE-style single-attribute restriction: for each value of X,
one Y value dominates) and reports their confidence, so a detector can
flag rows violating high-confidence dependencies.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.frame import DataFrame

__all__ = ["ApproximateFD", "discover_fds"]


@dataclass(frozen=True)
class ApproximateFD:
    """A pairwise approximate functional dependency ``lhs → rhs``.

    ``confidence`` is the fraction of rows whose ``rhs`` value equals the
    majority ``rhs`` value of their ``lhs`` group — 1.0 for an exact FD.
    """

    lhs: str
    rhs: str
    confidence: float

    def violations(self, frame: DataFrame) -> np.ndarray:
        """Row indices whose ``rhs`` value deviates from their group majority."""
        lhs_values = frame[self.lhs].values
        rhs_values = frame[self.rhs].values
        majority = _group_majorities(lhs_values, rhs_values)
        out = []
        for row in range(frame.n_rows):
            left, right = lhs_values[row], rhs_values[row]
            if left is None or right is None:
                continue
            expected = majority.get(left)
            if expected is not None and right != expected:
                out.append(row)
        return np.array(out, dtype=int)


def discover_fds(
    frame: DataFrame,
    columns: list[str] | None = None,
    min_confidence: float = 0.9,
    min_group_size: int = 3,
) -> list[ApproximateFD]:
    """Mine pairwise approximate FDs among categorical columns.

    Parameters
    ----------
    frame:
        Data to mine.
    columns:
        Candidate columns; defaults to all categorical columns.
    min_confidence:
        Minimum fraction of rows agreeing with their group's majority.
    min_group_size:
        Groups smaller than this are ignored when scoring (their majority
        is not meaningful evidence).

    Returns FDs sorted by decreasing confidence.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must be in (0, 1]")
    names = columns if columns is not None else frame.categorical_columns()
    fds = []
    for lhs in names:
        for rhs in names:
            if lhs == rhs:
                continue
            confidence = _fd_confidence(
                frame[lhs].values, frame[rhs].values, min_group_size
            )
            if confidence is not None and confidence >= min_confidence:
                fds.append(ApproximateFD(lhs=lhs, rhs=rhs, confidence=confidence))
    return sorted(fds, key=lambda fd: fd.confidence, reverse=True)


def _group_majorities(lhs_values: np.ndarray, rhs_values: np.ndarray) -> dict:
    groups: dict = defaultdict(Counter)
    for left, right in zip(lhs_values.tolist(), rhs_values.tolist()):
        if left is None or right is None:
            continue
        groups[left][right] += 1
    return {left: counts.most_common(1)[0][0] for left, counts in groups.items()}


def _fd_confidence(
    lhs_values: np.ndarray, rhs_values: np.ndarray, min_group_size: int
) -> float | None:
    groups: dict = defaultdict(Counter)
    for left, right in zip(lhs_values.tolist(), rhs_values.tolist()):
        if left is None or right is None:
            continue
        groups[left][right] += 1
    agreeing = 0
    total = 0
    for counts in groups.values():
        size = sum(counts.values())
        if size < min_group_size:
            continue
        agreeing += counts.most_common(1)[0][1]
        total += size
    if total == 0:
        return None
    return agreeing / total
