"""Approximate functional-dependency discovery over categorical columns.

§4.2 motivates categorical-shift detection with "FD discovery algorithms
or association rule mining": a shifted category breaks dependencies that
hold for the clean majority. This module mines pairwise approximate FDs
``X → Y`` (a TANE-style single-attribute restriction: for each value of X,
one Y value dominates) and reports their confidence, so a detector can
flag rows violating high-confidence dependencies.

The mining kernel is vectorized: one factorized pass per ordered column
pair (integer codes from :meth:`~repro.frame.Column.codes`, joint-code
``np.unique``/``np.bincount`` group counting) produces a :class:`_PairStats`
shared by *both* confidence scoring and violation listing — the reference
implementation re-materialized the same ``(lhs, rhs)`` pairs in two
separate Python loops. Pair stats are cached process-wide keyed by the
participating columns' content tokens (the ``(token, version)`` identity
from the frame layer), so FD discovery over unchanged columns is a
dictionary hit instead of a recount; see :func:`fd_cache_stats`. The
row-at-a-time implementations survive behind
``repro.kernels.kernel_mode() == "reference"`` as the equivalence
baseline.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.cache import shared_cache
from repro.frame import Column, DataFrame
from repro.kernels import kernel_mode

__all__ = [
    "ApproximateFD",
    "discover_fds",
    "fd_cache_stats",
    "clear_fd_cache",
]


# ---------------------------------------------------------------------- #
# factorized pair statistics + content-keyed cache
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _PairStats:
    """Grouped ``lhs → rhs`` statistics from one factorized pass.

    ``majority_codes[g]`` is the rhs code dominating lhs group ``g`` with
    the same tie-break as ``Counter.most_common`` (among equal counts, the
    pair first seen in row order wins), so vectorized and reference
    kernels agree bit for bit. Groups are counted over rows where both
    sides are present, exactly like the reference dict-of-Counters.
    """

    n_lhs: int
    n_rhs: int
    group_sizes: np.ndarray
    majority_codes: np.ndarray
    majority_counts: np.ndarray

    def confidence(self, min_group_size: int) -> float | None:
        """Fraction of rows agreeing with their group majority, or None."""
        eligible = (self.group_sizes > 0) & (self.group_sizes >= min_group_size)
        total = int(self.group_sizes[eligible].sum())
        if total == 0:
            return None
        return float(int(self.majority_counts[eligible].sum()) / total)


def _pair_stats_from_codes(
    lhs_codes: np.ndarray, rhs_codes: np.ndarray, n_lhs: int, n_rhs: int
) -> _PairStats:
    valid = (lhs_codes >= 0) & (rhs_codes >= 0)
    lhs = lhs_codes[valid]
    rhs = rhs_codes[valid]
    group_sizes = np.bincount(lhs, minlength=n_lhs).astype(np.int64)
    majority_codes = np.full(n_lhs, -1, dtype=np.intp)
    majority_counts = np.zeros(n_lhs, dtype=np.int64)
    n_joint = n_lhs * n_rhs
    if lhs.size and n_joint <= max(4096, lhs.size):
        # Dense O(n) path for the usual small category domains: bincount
        # over joint codes instead of a sort-based np.unique. The
        # reversed fancy assignment leaves each pair's *first* occurrence
        # index (duplicate indices resolve last-write-wins), giving the
        # Counter.most_common tie-break without sorting.
        joint = lhs * n_rhs + rhs
        counts2d = np.bincount(joint, minlength=n_joint).reshape(n_lhs, n_rhs)
        first = np.full(n_joint, lhs.size, dtype=np.intp)
        first[joint[::-1]] = np.arange(lhs.size - 1, -1, -1, dtype=np.intp)
        first2d = first.reshape(n_lhs, n_rhs)
        best = counts2d.max(axis=1)
        tie_first = np.where(counts2d == best[:, None], first2d, lhs.size)
        nonempty = best > 0
        majority_codes[nonempty] = tie_first.argmin(axis=1)[nonempty]
        majority_counts[nonempty] = best[nonempty]
    elif lhs.size:
        joint = lhs * n_rhs + rhs
        pairs, first_seen, counts = np.unique(
            joint, return_index=True, return_counts=True
        )
        pair_lhs = pairs // n_rhs
        pair_rhs = pairs % n_rhs
        # Sort by (group, count desc, first occurrence asc) and keep the
        # leading entry per group — the Counter.most_common tie-break.
        order = np.lexsort((first_seen, -counts, pair_lhs))
        groups, lead = np.unique(pair_lhs[order], return_index=True)
        majority_codes[groups] = pair_rhs[order][lead]
        majority_counts[groups] = counts[order][lead]
    return _PairStats(
        n_lhs=n_lhs,
        n_rhs=n_rhs,
        group_sizes=group_sizes,
        majority_codes=majority_codes,
        majority_counts=majority_counts,
    )


#: Pair stats live in the ``"fd"`` namespace of the process-wide shared
#: cache (see :mod:`repro.cache`), keyed by the two columns' content
#: tokens. Tokens are minted fresh on every mutation, so a hit proves
#: both columns are byte-identical to when the stats were computed;
#: byte-accounted eviction bounds it alongside the featurization caches.
_NS_FD = shared_cache().register("fd", floor_bytes=1 * 1024 * 1024)
#: Semantic counters share the cache's lock so read-and-reset is atomic
#: against lookups from concurrent scheduler workers.
_FD_CACHE_STATS = {"hits": 0, "misses": 0}
_FD_CACHE_LOCK = shared_cache().lock


def fd_cache_stats(reset: bool = False) -> dict[str, int]:
    """Hit/miss counters of the FD pair-stats cache (mirrors
    :func:`repro.ml.fit_cache_stats`); ``reset=True`` clears both the
    counters and the cached entries, atomically — a racing lookup either
    lands before the read (and is reported) or after the reset (counting
    toward the next window); it can no longer slip between the two and
    be lost."""
    with _FD_CACHE_LOCK:
        stats = dict(_FD_CACHE_STATS)
        if reset:
            _clear_locked()
    return stats


def clear_fd_cache() -> None:
    """Drop all cached pair stats and zero the hit/miss counters."""
    with _FD_CACHE_LOCK:
        _clear_locked()


def _clear_locked() -> None:
    shared_cache().clear(_NS_FD)
    _FD_CACHE_STATS["hits"] = 0
    _FD_CACHE_STATS["misses"] = 0


def _pair_stats(lhs: Column, rhs: Column) -> _PairStats:
    key = (lhs.token, rhs.token)
    cache = shared_cache()
    cached = cache.get(_NS_FD, key)
    if cached is not None:
        with _FD_CACHE_LOCK:
            _FD_CACHE_STATS["hits"] += 1
        return cached
    with _FD_CACHE_LOCK:
        _FD_CACHE_STATS["misses"] += 1
    lhs_codes, lhs_cats = lhs.codes()
    rhs_codes, rhs_cats = rhs.codes()
    stats = _pair_stats_from_codes(lhs_codes, rhs_codes, len(lhs_cats), len(rhs_cats))
    nbytes = (
        stats.group_sizes.nbytes
        + stats.majority_codes.nbytes
        + stats.majority_counts.nbytes
    )
    cache.put(_NS_FD, key, stats, nbytes=nbytes)
    return stats


# ---------------------------------------------------------------------- #
# public API
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ApproximateFD:
    """A pairwise approximate functional dependency ``lhs → rhs``.

    ``confidence`` is the fraction of rows whose ``rhs`` value equals the
    majority ``rhs`` value of their ``lhs`` group — 1.0 for an exact FD.
    """

    lhs: str
    rhs: str
    confidence: float

    def violations(self, frame: DataFrame) -> np.ndarray:
        """Row indices whose ``rhs`` value deviates from their group majority."""
        if kernel_mode() == "reference":
            return self._violations_reference(frame)
        lhs_col = frame[self.lhs]
        rhs_col = frame[self.rhs]
        lhs_codes, __ = lhs_col.codes()
        rhs_codes, __ = rhs_col.codes()
        stats = _pair_stats(lhs_col, rhs_col)
        present = lhs_codes >= 0
        expected = np.full(len(lhs_codes), -1, dtype=np.intp)
        expected[present] = stats.majority_codes[lhs_codes[present]]
        flagged = (
            present & (rhs_codes >= 0) & (expected >= 0) & (rhs_codes != expected)
        )
        return np.flatnonzero(flagged).astype(int)

    def _violations_reference(self, frame: DataFrame) -> np.ndarray:
        lhs_values = frame[self.lhs].values
        rhs_values = frame[self.rhs].values
        majority = _group_majorities(lhs_values, rhs_values)
        out = []
        for row in range(frame.n_rows):
            left, right = lhs_values[row], rhs_values[row]
            if left is None or right is None:
                continue
            expected = majority.get(left)
            if expected is not None and right != expected:
                out.append(row)
        return np.array(out, dtype=int)


def discover_fds(
    frame: DataFrame,
    columns: list[str] | None = None,
    min_confidence: float = 0.9,
    min_group_size: int = 3,
) -> list[ApproximateFD]:
    """Mine pairwise approximate FDs among categorical columns.

    Parameters
    ----------
    frame:
        Data to mine.
    columns:
        Candidate columns; defaults to all categorical columns.
    min_confidence:
        Minimum fraction of rows agreeing with their group's majority.
    min_group_size:
        Groups smaller than this are ignored when scoring (their majority
        is not meaningful evidence).

    Returns FDs sorted by decreasing confidence. Under the vectorized
    kernels the per-pair group statistics come from the token-keyed cache
    (see :func:`fd_cache_stats`), so discovery over columns unchanged
    since the last call costs one dictionary lookup per pair.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError("min_confidence must be in (0, 1]")
    names = columns if columns is not None else frame.categorical_columns()
    reference = kernel_mode() == "reference"
    fds = []
    for lhs in names:
        for rhs in names:
            if lhs == rhs:
                continue
            if reference:
                confidence = _fd_confidence(
                    frame[lhs].values, frame[rhs].values, min_group_size
                )
            else:
                confidence = _pair_stats(frame[lhs], frame[rhs]).confidence(
                    min_group_size
                )
            if confidence is not None and confidence >= min_confidence:
                fds.append(ApproximateFD(lhs=lhs, rhs=rhs, confidence=confidence))
    return sorted(fds, key=lambda fd: fd.confidence, reverse=True)


# ---------------------------------------------------------------------- #
# reference (row-at-a-time) kernels
# ---------------------------------------------------------------------- #
def _group_majorities(lhs_values: np.ndarray, rhs_values: np.ndarray) -> dict:
    groups: dict = defaultdict(Counter)
    for left, right in zip(lhs_values.tolist(), rhs_values.tolist()):
        if left is None or right is None:
            continue
        groups[left][right] += 1
    return {left: counts.most_common(1)[0][0] for left, counts in groups.items()}


def _fd_confidence(
    lhs_values: np.ndarray, rhs_values: np.ndarray, min_group_size: int
) -> float | None:
    groups: dict = defaultdict(Counter)
    for left, right in zip(lhs_values.tolist(), rhs_values.tolist()):
        if left is None or right is None:
            continue
        groups[left][right] += 1
    agreeing = 0
    total = 0
    for counts in groups.values():
        size = sum(counts.values())
        if size < min_group_size:
            continue
        agreeing += counts.most_common(1)[0][1]
        total += size
    if total == 0:
        return None
    return agreeing / total
