"""Cell repairers: replace suspected-dirty cells with imputed values.

§4.2 pairs every detection technique with imputation-based correction;
these repairers implement the imputation side. They never see ground
truth: repairs are computed from the column's (believed-clean) bulk.

Repairs are mask-based column passes under the vectorized kernels:
category modes come from ``np.bincount`` over cached integer codes (with
the ``Counter.most_common`` tie-break reproduced exactly), the
conditional mode reuses the FD layer's factorized group counting, and
replacement values are returned as bulk arrays ready for
``with_values``/``set_values`` writes. The original row-at-a-time code is
kept behind ``repro.kernels.kernel_mode() == "reference"``.
"""

from __future__ import annotations

import abc
from collections import Counter, defaultdict

import numpy as np

from repro.detect.fd import _pair_stats_from_codes
from repro.frame import Column, DataFrame
from repro.kernels import kernel_mode

__all__ = [
    "Repairer",
    "MeanRepairer",
    "MedianRepairer",
    "ModeRepairer",
    "ConditionalModeRepairer",
    "repairer_for",
]


class Repairer(abc.ABC):
    """Computes replacement values for flagged cells of one feature."""

    @abc.abstractmethod
    def repair(self, frame: DataFrame, feature: str, rows: np.ndarray):
        """Replacement values for ``feature`` at ``rows`` (array or list)."""

    def apply(self, frame: DataFrame, feature: str, rows: np.ndarray) -> DataFrame:
        """Return a copy of ``frame`` with the cells repaired.

        The untouched columns are copy-on-write shares of ``frame``'s.
        """
        if rows.size == 0:
            return frame.copy()
        column = frame[feature].with_values(rows, self.repair(frame, feature, rows))
        return frame.with_column(column)


def _clean_bulk(column: Column, exclude: np.ndarray) -> np.ndarray:
    """Values of the column outside ``exclude`` and not missing."""
    mask = ~column.missing_mask
    mask[exclude] = False
    return column.values[mask]


def _majority_code(bulk_codes: np.ndarray, counts: np.ndarray) -> int:
    """Most frequent code with the ``Counter.most_common`` tie-break.

    Among codes sharing the maximum count, the one first seen in
    ``bulk_codes`` order wins — Counter insertion order, reproduced so
    vectorized repairs match the reference kernel bit for bit.
    """
    best = counts.max()
    candidates = np.flatnonzero(counts == best)
    if len(candidates) == 1:
        return int(candidates[0])
    first_seen = np.full(len(counts), bulk_codes.size, dtype=np.intp)
    uniques, first = np.unique(bulk_codes, return_index=True)
    first_seen[uniques] = first
    return int(candidates[np.argmin(first_seen[candidates])])


class MeanRepairer(Repairer):
    """Impute with the mean of the untouched, finite cells."""

    def repair(self, frame: DataFrame, feature: str, rows: np.ndarray):
        """Replacement values for ``feature`` at ``rows``."""
        column = frame[feature]
        if not column.is_numeric:
            raise ValueError(f"MeanRepairer needs a numeric column, got {feature!r}")
        bulk = _clean_bulk(column, rows)
        bulk = bulk[np.isfinite(bulk)]
        value = float(bulk.mean()) if bulk.size else 0.0
        if kernel_mode() == "reference":
            return [value] * len(rows)
        return np.full(len(rows), value)


class MedianRepairer(Repairer):
    """Impute with the median — robust when many cells are flagged."""

    def repair(self, frame: DataFrame, feature: str, rows: np.ndarray):
        """Replacement values for ``feature`` at ``rows``."""
        column = frame[feature]
        if not column.is_numeric:
            raise ValueError(f"MedianRepairer needs a numeric column, got {feature!r}")
        bulk = _clean_bulk(column, rows)
        bulk = bulk[np.isfinite(bulk)]
        value = float(np.median(bulk)) if bulk.size else 0.0
        if kernel_mode() == "reference":
            return [value] * len(rows)
        return np.full(len(rows), value)


class ModeRepairer(Repairer):
    """Impute with the most frequent category of the untouched cells."""

    def repair(self, frame: DataFrame, feature: str, rows: np.ndarray):
        """Replacement values for ``feature`` at ``rows``."""
        column = frame[feature]
        if not column.is_categorical:
            raise ValueError(f"ModeRepairer needs a categorical column, got {feature!r}")
        if kernel_mode() == "reference":
            bulk = _clean_bulk(column, rows).tolist()
            if not bulk:
                return [None] * len(rows)
            mode = Counter(bulk).most_common(1)[0][0]
            return [mode] * len(rows)
        codes, cats = column.codes()
        clean = ~column.missing_mask
        clean[np.asarray(rows)] = False
        bulk_codes = codes[clean]
        if bulk_codes.size == 0:
            return np.full(len(rows), None, dtype=object)
        counts = np.bincount(bulk_codes, minlength=len(cats))
        mode = cats[_majority_code(bulk_codes, counts)]
        return np.full(len(rows), mode, dtype=object)


class ConditionalModeRepairer(Repairer):
    """Impute a category conditioned on a correlated categorical column.

    The FD-based repair §4.2 implies: for each flagged row, take the
    majority category among untouched rows sharing the row's value in the
    most informative other categorical column; fall back to the global
    mode.
    """

    def __init__(self, condition_on: str | None = None) -> None:
        self.condition_on = condition_on

    def repair(self, frame: DataFrame, feature: str, rows: np.ndarray):
        """Replacement values for ``feature`` at ``rows``."""
        column = frame[feature]
        if not column.is_categorical:
            raise ValueError(
                f"ConditionalModeRepairer needs a categorical column, got {feature!r}"
            )
        condition = self.condition_on or self._pick_condition(frame, feature)
        if condition is None:
            return ModeRepairer().repair(frame, feature, rows)
        if kernel_mode() == "reference":
            return self._repair_reference(frame, column, condition, rows)
        codes_f, cats_f = column.codes()
        codes_c, cats_c = frame[condition].codes()
        rows_arr = np.asarray(rows)
        clean = ~column.missing_mask
        clean[rows_arr] = False
        bulk_codes = codes_f[clean]
        if bulk_codes.size:
            counts = np.bincount(bulk_codes, minlength=len(cats_f))
            fallback = cats_f[_majority_code(bulk_codes, counts)]
        else:
            fallback = None
        # Per-condition-group majorities: one factorized pass (shared
        # with the FD layer) over clean rows whose condition is present.
        cond_masked = np.where(clean, codes_c, -1)
        feat_masked = np.where(clean, codes_f, -1)
        stats = _pair_stats_from_codes(
            cond_masked, feat_masked, len(cats_c), len(cats_f)
        )
        out = np.full(len(rows_arr), fallback, dtype=object)
        keys = codes_c[rows_arr]
        keyed = np.flatnonzero(keys >= 0)
        majority = stats.majority_codes[keys[keyed]]
        grouped = majority >= 0
        out[keyed[grouped]] = np.array(cats_f, dtype=object)[majority[grouped]]
        return out

    @staticmethod
    def _repair_reference(
        frame: DataFrame, column: Column, condition: str, rows: np.ndarray
    ) -> list:
        cond_values = frame[condition].values
        flagged = set(rows.tolist())
        groups: dict = defaultdict(Counter)
        global_counts: Counter = Counter()
        for row in range(frame.n_rows):
            if row in flagged or column.missing_mask[row]:
                continue
            value = column.values[row]
            global_counts[value] += 1
            key = cond_values[row]
            if key is not None:
                groups[key][value] += 1
        fallback = global_counts.most_common(1)[0][0] if global_counts else None
        out = []
        for row in rows:
            key = cond_values[row]
            counts = groups.get(key)
            out.append(counts.most_common(1)[0][0] if counts else fallback)
        return out

    @staticmethod
    def _pick_condition(frame: DataFrame, feature: str) -> str | None:
        from repro.detect.fd import discover_fds

        candidates = [c for c in frame.categorical_columns() if c != feature]
        best, best_confidence = None, 0.0
        for other in candidates:
            for fd in discover_fds(frame, columns=[other, feature], min_confidence=0.5):
                if fd.lhs == other and fd.rhs == feature and fd.confidence > best_confidence:
                    best, best_confidence = other, fd.confidence
        return best


def repairer_for(error: str, column_is_numeric: bool) -> Repairer:
    """Default repairer for an error-type name and column kind."""
    if error in ("scaling", "noise"):
        return MedianRepairer()
    if error == "missing":
        return MeanRepairer() if column_is_numeric else ModeRepairer()
    if error == "categorical":
        return ConditionalModeRepairer()
    raise ValueError(f"no repairer for error type {error!r}")
