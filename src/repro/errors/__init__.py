"""Error injection (the paper's Polluter substrate, modelled on JENGA).

The four error types from §3.4 — missing values, Gaussian noise,
categorical shift, and scaling — plus the §6 future-work type
"inconsistent representations", the :class:`Polluter` that injects them
incrementally, and the pre-pollution machinery of §4.1 that turns clean
datasets into (dirty, ground-truth) pairs.
"""

from repro.errors.base import ErrorType, error_registry, make_error
from repro.errors.categorical import CategoricalShift
from repro.errors.inconsistent import InconsistentRepresentation
from repro.errors.missing import MissingValues
from repro.errors.noise import GaussianNoise
from repro.errors.polluter import Polluter
from repro.errors.prepollution import DirtyCells, PollutedDataset, PrePollution
from repro.errors.scaling import Scaling

__all__ = [
    "ErrorType",
    "error_registry",
    "make_error",
    "MissingValues",
    "GaussianNoise",
    "CategoricalShift",
    "Scaling",
    "InconsistentRepresentation",
    "Polluter",
    "PrePollution",
    "PollutedDataset",
    "DirtyCells",
]
