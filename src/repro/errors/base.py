"""Error-type protocol and registry."""

from __future__ import annotations

import abc

import numpy as np

from repro.frame import Column

__all__ = ["ErrorType", "error_registry", "make_error", "register_error"]


class ErrorType(abc.ABC):
    """A kind of data error that can be injected into a column.

    Implementations are stateless value generators: given a column and the
    rows to corrupt, they return the corrupted values. The Polluter owns row
    selection and bookkeeping.
    """

    #: Short identifier used throughout configs and reports
    #: (``"missing"``, ``"noise"``, ``"categorical"``, ``"scaling"``).
    name: str = ""

    @abc.abstractmethod
    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""

    @abc.abstractmethod
    def corrupt(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        """Return corrupted replacement values for ``column`` at ``rows``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[ErrorType]] = {}


def register_error(cls: type[ErrorType]) -> type[ErrorType]:
    """Class decorator adding an error type to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def error_registry() -> dict[str, type[ErrorType]]:
    """Name → class mapping of all registered error types."""
    return dict(_REGISTRY)


def make_error(name: str) -> ErrorType:
    """Instantiate a registered error type with default parameters."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown error type {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
