"""Error-type protocol and registry."""

from __future__ import annotations

import abc

import numpy as np

from repro.frame import Column
from repro.kernels import kernel_mode

__all__ = ["ErrorType", "error_registry", "make_error", "register_error"]


class ErrorType(abc.ABC):
    """A kind of data error that can be injected into a column.

    Implementations are stateless value generators: given a column and the
    rows to corrupt, they return the corrupted values as an ``np.ndarray``
    aligned with ``rows``. The Polluter owns row selection and bookkeeping.

    Every error type provides two implementations of the value kernel —
    ``_corrupt_vectorized`` (numpy bulk operations, the default) and
    ``_corrupt_reference`` (the original row-at-a-time code) — selected by
    :func:`repro.kernels.kernel_mode`. Both consume the rng stream
    identically, so traces are bit-identical across modes: a vectorized
    kernel may replace ``k`` scalar draws with one bulk draw only when the
    draw bound is constant over the ``k`` draws (numpy fills bounded draws
    sequentially from the bit stream, making the two spellings equivalent);
    otherwise it must keep the reference draw order and vectorize only the
    pure part.
    """

    #: Short identifier used throughout configs and reports
    #: (``"missing"``, ``"noise"``, ``"categorical"``, ``"scaling"``).
    name: str = ""

    @abc.abstractmethod
    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""

    def corrupt(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Corrupted replacement values for ``column`` at ``rows``.

        Returns an array aligned with ``rows`` (``float`` for numeric
        columns, ``object`` for categorical ones). Dispatches to the
        vectorized kernel or the row-at-a-time reference implementation
        according to the active :func:`~repro.kernels.kernel_mode`.
        """
        if kernel_mode() == "reference":
            return np.asarray(
                self._corrupt_reference(column, rows, rng),
                dtype=float if column.is_numeric else object,
            )
        return self._corrupt_vectorized(column, rows, rng)

    @abc.abstractmethod
    def _corrupt_vectorized(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Numpy bulk implementation of the value kernel."""

    @abc.abstractmethod
    def _corrupt_reference(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        """Row-at-a-time implementation (the equivalence baseline)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[ErrorType]] = {}


def register_error(cls: type[ErrorType]) -> type[ErrorType]:
    """Class decorator adding an error type to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def error_registry() -> dict[str, type[ErrorType]]:
    """Name → class mapping of all registered error types."""
    return dict(_REGISTRY)


def make_error(name: str) -> ErrorType:
    """Instantiate a registered error type with default parameters."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown error type {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
