"""Categorical-shift errors (§3.4): categories swapped for wrong ones."""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["CategoricalShift"]


@register_error
class CategoricalShift(ErrorType):
    """Swap each selected cell's category for a different one.

    The replacement is drawn uniformly from the column's other observed
    categories; single-category columns cannot shift, so cells keep their
    value in that degenerate case.
    """

    name = "categorical"

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return column.is_categorical and len(column.categories()) >= 2

    def corrupt(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        """Corrupted replacement values for ``column`` at ``rows``."""
        categories = column.categories()
        if len(categories) < 2:
            return column.values[rows].tolist()
        replacements = []
        for value in column.values[rows].tolist():
            others = [c for c in categories if c != value]
            replacements.append(others[rng.integers(len(others))])
        return replacements
