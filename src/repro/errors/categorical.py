"""Categorical-shift errors (§3.4): categories swapped for wrong ones."""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["CategoricalShift"]


@register_error
class CategoricalShift(ErrorType):
    """Swap each selected cell's category for a different one.

    The replacement is drawn uniformly from the column's other observed
    categories; single-category columns cannot shift, so cells keep their
    value in that degenerate case.
    """

    name = "categorical"

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return column.is_categorical and len(column.categories()) >= 2

    def _corrupt_vectorized(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        codes, cats = column.codes()
        m = len(cats)
        if m < 2:
            return column.values[rows].copy()
        cats_arr = np.array(cats, dtype=object)
        sel = codes[rows]
        if (sel >= 0).all():
            # Every target cell holds a known category, so the reference
            # kernel's per-row draw bound is the constant ``m - 1`` and
            # one bulk draw consumes the stream identically. A draw of
            # ``j`` picks the j-th category of the sorted list with the
            # cell's own category removed: ``cats[j + (j >= code)]``.
            draws = rng.integers(m - 1, size=len(rows))
            return cats_arr[draws + (draws >= sel)]
        # Missing cells draw from all m categories (None equals none of
        # them), so the bound varies per row — keep the reference draw
        # order and vectorize only the category table lookups.
        out = np.empty(len(rows), dtype=object)
        for i, code in enumerate(sel.tolist()):
            if code < 0:
                out[i] = cats_arr[rng.integers(m)]
            else:
                j = int(rng.integers(m - 1))
                out[i] = cats_arr[j + (j >= code)]
        return out

    def _corrupt_reference(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        categories = column.categories()
        if len(categories) < 2:
            return column.values[rows].tolist()
        replacements = []
        for value in column.values[rows].tolist():
            others = [c for c in categories if c != value]
            replacements.append(others[rng.integers(len(others))])
        return replacements
