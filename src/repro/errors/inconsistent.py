"""Inconsistent-representation errors (paper §6, future work).

The same semantic value written differently — case changes, stray
whitespace, abbreviation markers — so that encoders treat one category as
several. This is the "inconsistent representations" error type the paper
names as a future extension; cleaning it merges the variants back into the
canonical spelling.
"""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["InconsistentRepresentation"]


def _variants(value: str) -> list[str]:
    """Plausible re-spellings of a categorical value."""
    text = str(value)
    out = [text.upper(), text.capitalize(), f" {text}", f"{text} ", f"{text}."]
    return [v for v in out if v != text] or [f"{text}_"]


@register_error
class InconsistentRepresentation(ErrorType):
    """Replace categorical cells with a re-spelling of the same value."""

    name = "inconsistent"

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return column.is_categorical

    def corrupt(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        """Corrupted replacement values for ``column`` at ``rows``."""
        replacements = []
        for value in column.values[rows].tolist():
            if value is None:
                replacements.append(None)
                continue
            options = _variants(value)
            replacements.append(options[rng.integers(len(options))])
        return replacements
