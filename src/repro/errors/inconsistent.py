"""Inconsistent-representation errors (paper §6, future work).

The same semantic value written differently — case changes, stray
whitespace, abbreviation markers — so that encoders treat one category as
several. This is the "inconsistent representations" error type the paper
names as a future extension; cleaning it merges the variants back into the
canonical spelling.
"""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["InconsistentRepresentation"]


def _variants(value: str) -> list[str]:
    """Plausible re-spellings of a categorical value."""
    text = str(value)
    out = [text.upper(), text.capitalize(), f" {text}", f"{text} ", f"{text}."]
    return [v for v in out if v != text] or [f"{text}_"]


@register_error
class InconsistentRepresentation(ErrorType):
    """Replace categorical cells with a re-spelling of the same value."""

    name = "inconsistent"

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return column.is_categorical

    def _corrupt_vectorized(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        codes, cats = column.codes()
        # Variant lists are deterministic per category — compute them once
        # per distinct value instead of once per target cell.
        variants = [np.array(_variants(c), dtype=object) for c in cats]
        lengths = np.array([len(v) for v in variants], dtype=np.intp)
        sel = codes[rows]
        out = np.empty(len(rows), dtype=object)
        if len(rows) and (sel >= 0).all() and (lengths[sel] == lengths[sel[0]]).all():
            # Constant draw bound across all targets: one bulk draw
            # consumes the rng stream identically to per-row draws.
            draws = rng.integers(lengths[sel[0]], size=len(rows))
            for code in np.unique(sel).tolist():
                mask = sel == code
                out[mask] = variants[code][draws[mask]]
            return out
        # Variant counts differ (or some cells are missing and draw
        # nothing): keep the reference draw order, vectorize the rest.
        for i, code in enumerate(sel.tolist()):
            if code < 0:
                out[i] = None
            else:
                options = variants[code]
                out[i] = options[rng.integers(len(options))]
        return out

    def _corrupt_reference(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        replacements = []
        for value in column.values[rows].tolist():
            if value is None:
                replacements.append(None)
                continue
            options = _variants(value)
            replacements.append(options[rng.integers(len(options))])
        return replacements
