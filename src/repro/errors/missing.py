"""Missing-value errors (§3.4): cells replaced by a placeholder."""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["MissingValues"]


@register_error
class MissingValues(ErrorType):
    """Replace cells with a missing placeholder.

    Numeric cells become ``nan`` and categorical cells ``None`` — the
    frame's native missing representation, which the preprocessing stage
    later imputes (numeric) or encodes as its own category (categorical),
    mirroring how placeholder values flow through the paper's pipeline.
    """

    name = "missing"

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return True

    def _corrupt_vectorized(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if column.is_numeric:
            return np.full(len(rows), np.nan)
        return np.full(len(rows), None, dtype=object)

    def _corrupt_reference(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        placeholder = np.nan if column.is_numeric else None
        return [placeholder] * len(rows)
