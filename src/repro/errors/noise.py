"""Gaussian-noise errors (§3.4): additive noise on numeric cells."""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["GaussianNoise"]


@register_error
class GaussianNoise(ErrorType):
    """Add zero-mean Gaussian noise to numeric cells.

    Per the paper, the standard deviation is drawn uniformly from
    ``[sigma_min, sigma_max] = [1, 5]`` for each pollution action. The draw
    is scaled by the column's robust spread so that "σ between 1 and 5"
    means 1–5 column standard deviations regardless of the feature's units
    (JENGA scales noise the same way).
    """

    name = "noise"

    def __init__(self, sigma_min: float = 1.0, sigma_max: float = 5.0) -> None:
        if sigma_min <= 0 or sigma_max < sigma_min:
            raise ValueError("need 0 < sigma_min <= sigma_max")
        self.sigma_min = sigma_min
        self.sigma_max = sigma_max

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return column.is_numeric

    def _corrupt_vectorized(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # Identical rng consumption to the reference kernel (one uniform
        # sigma draw, one bulk normal draw); the only change is skipping
        # the final ndarray → list → ndarray round trip.
        present = column.values[~column.missing_mask]
        present = present[np.isfinite(present)]
        spread = float(present.std()) if present.size > 1 else 1.0
        if spread == 0.0:
            spread = 1.0
        sigma = rng.uniform(self.sigma_min, self.sigma_max) * spread
        base = column.values[rows].copy()
        # Noise lands on whatever is currently in the cell; missing cells
        # get noise around the column mean so the result is a real number.
        mean = float(present.mean()) if present.size else 0.0
        base[~np.isfinite(base)] = mean
        return base + rng.normal(0.0, sigma, size=len(rows))

    def _corrupt_reference(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        present = column.values[~column.missing_mask]
        present = present[np.isfinite(present)]
        spread = float(present.std()) if present.size > 1 else 1.0
        if spread == 0.0:
            spread = 1.0
        sigma = rng.uniform(self.sigma_min, self.sigma_max) * spread
        base = column.values[rows].copy()
        mean = float(present.mean()) if present.size else 0.0
        base[~np.isfinite(base)] = mean
        return (base + rng.normal(0.0, sigma, size=len(rows))).tolist()
