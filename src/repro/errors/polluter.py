"""The Polluter module (§3.1): incremental feature-wise error injection.

``Polluter(d, f, Err, ρ) = d'_{f,ρ,c}`` — given input data, a feature, an
error type, and a pollution level, produce polluted data states, one per
sampled combination ``c`` of target cells. The Polluter has no knowledge of
which cells are already dirty, so it samples rows uniformly and may
overwrite existing errors (exactly the behaviour the paper analyses with
the hypergeometric argument in §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors.base import ErrorType
from repro.frame import DataFrame

__all__ = ["Polluter", "PollutedState"]


@dataclass
class PollutedState:
    """One polluted data state ``d'_{f,ρ,c}`` with its bookkeeping."""

    frame: DataFrame
    feature: str
    level: float
    combination: int
    #: Rows whose cells the Polluter overwrote (across all steps so far).
    rows: np.ndarray


class Polluter:
    """Inject a specific error type into one feature, step by step.

    Parameters
    ----------
    error:
        The error type to inject.
    step:
        Pollution step as a fraction of the data size; the paper sets 1 %.
    n_combinations:
        How many random cell combinations to sample per level (§3.1: the
        selection of entries may itself matter, so multiple combinations
        are measured and their effects averaged by the Estimator).
    """

    def __init__(
        self,
        error: ErrorType,
        step: float = 0.01,
        n_combinations: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not 0.0 < step <= 1.0:
            raise ValueError(f"step must be in (0, 1], got {step}")
        if n_combinations < 1:
            raise ValueError("n_combinations must be >= 1")
        self.error = error
        self.step = step
        self.n_combinations = n_combinations
        self._rng = np.random.default_rng(rng)

    def cells_per_step(self, frame: DataFrame) -> int:
        """Number of cells one pollution (or cleaning) step touches."""
        return max(1, int(round(self.step * frame.n_rows)))

    def pollute_once(
        self, frame: DataFrame, feature: str, rng: np.random.Generator | None = None
    ) -> tuple[DataFrame, np.ndarray]:
        """Apply one pollution step to ``feature``; returns (new frame, rows)."""
        rng = rng or self._rng
        column = frame[feature]
        if not self.error.applies_to(column):
            raise ValueError(
                f"error type {self.error.name!r} does not apply to column {feature!r}"
            )
        n_cells = self.cells_per_step(frame)
        rows = rng.choice(frame.n_rows, size=min(n_cells, frame.n_rows), replace=False)
        # Functional update: the returned state shares every untouched
        # column with ``frame`` (copy-on-write), so an incremental E1
        # trajectory costs one column per step, not one frame.
        new_column = column.with_values(rows, self.error.corrupt(column, rows, rng))
        return frame.with_column(new_column), rows

    def incremental_states(
        self,
        frame: DataFrame,
        feature: str,
        n_steps: int = 2,
    ) -> list[list[PollutedState]]:
        """Produce ``n_steps`` cumulative pollution states per combination.

        Returns ``n_combinations`` trajectories; each trajectory is a list
        of :class:`PollutedState` at levels ``step, 2·step, …``. Within a
        trajectory the pollution is cumulative (state *k* extends state
        *k−1*), matching Figure 1's incremental pollution curve.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        trajectories = []
        for c in range(self.n_combinations):
            rng = np.random.default_rng(self._rng.integers(2**63))
            states = []
            current = frame
            # Accumulate touched rows in a boolean mask: flatnonzero gives
            # the same sorted-unique rows as re-uniting all step arrays,
            # at O(n) per step instead of O(total · log total).
            touched = np.zeros(frame.n_rows, dtype=bool)
            for k in range(1, n_steps + 1):
                current, rows = self.pollute_once(current, feature, rng=rng)
                touched[rows] = True
                states.append(
                    PollutedState(
                        frame=current,
                        feature=feature,
                        level=k * self.step,
                        combination=c,
                        rows=np.flatnonzero(touched),
                    )
                )
            trajectories.append(states)
        return trajectories
