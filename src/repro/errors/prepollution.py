"""Pre-pollution (§4.1): turn clean datasets into ground-truthed dirty ones.

A *pre-pollution setting* samples a pollution level per feature from an
exponential distribution, then injects errors up to that level into both the
train and the test split (equally, as the paper's setup prescribes, but with
independently drawn cells to avoid leakage). The clean originals are kept as
ground truth for the simulated Cleaner, and every injected cell is recorded
per (feature, error type) so cleaning costs can be attributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors.base import ErrorType, make_error
from repro.frame import DataFrame

__all__ = ["DirtyCells", "PollutedDataset", "PrePollution"]


class DirtyCells:
    """Bookkeeping of which cells are dirty, per (feature, error type)."""

    def __init__(self) -> None:
        self._cells: dict[tuple[str, str], set[int]] = {}

    def add(self, feature: str, error: str, rows: np.ndarray | list) -> None:
        """Record rows as dirty for (feature, error)."""
        key = (feature, error)
        self._cells.setdefault(key, set()).update(int(r) for r in np.asarray(rows).ravel())

    def rows(self, feature: str, error: str) -> np.ndarray:
        """Sorted dirty rows of ``feature`` attributed to ``error``."""
        return np.array(sorted(self._cells.get((feature, error), ())), dtype=int)

    def remove(self, feature: str, error: str, rows: np.ndarray | list) -> None:
        """Clear rows from the dirty bookkeeping."""
        key = (feature, error)
        if key in self._cells:
            self._cells[key] -= {int(r) for r in np.asarray(rows).ravel()}
            if not self._cells[key]:
                del self._cells[key]

    def dirty_count(self, feature: str, error: str | None = None) -> int:
        """Number of dirty cells (optionally per error type)."""
        if error is not None:
            return len(self._cells.get((feature, error), ()))
        return sum(len(v) for (f, __), v in self._cells.items() if f == feature)

    def features(self) -> list[str]:
        """Features that still have dirty cells, sorted."""
        return sorted({f for (f, __), v in self._cells.items() if v})

    def error_types(self, feature: str) -> list[str]:
        """Error types with dirty cells in ``feature``, sorted."""
        return sorted({e for (f, e), v in self._cells.items() if f == feature and v})

    def pairs(self) -> list[tuple[str, str]]:
        """All dirty (feature, error) pairs, sorted."""
        return sorted(k for k, v in self._cells.items() if v)

    def is_clean(self, feature: str | None = None) -> bool:
        """True when no dirty cells remain."""
        if feature is None:
            return not any(self._cells.values())
        return self.dirty_count(feature) == 0

    def total(self) -> int:
        """Total number of dirty cells."""
        return sum(len(v) for v in self._cells.values())

    def copy(self) -> "DirtyCells":
        """Deep copy (independent of the original)."""
        dup = DirtyCells()
        dup._cells = {k: set(v) for k, v in self._cells.items()}
        return dup


@dataclass
class PollutedDataset:
    """A dirty dataset with its clean ground truth and dirt bookkeeping."""

    name: str
    label: str
    train: DataFrame
    test: DataFrame
    clean_train: DataFrame
    clean_test: DataFrame
    dirty_train: DirtyCells
    dirty_test: DirtyCells
    #: Pollution level per feature used during pre-pollution (diagnostics
    #: only — COMET itself never reads it).
    levels: dict = field(default_factory=dict)

    @property
    def feature_names(self) -> list[str]:
        """Feature column names (label excluded)."""
        return [n for n in self.train.column_names if n != self.label]

    def copy(self) -> "PollutedDataset":
        """An independent dataset (frames are copy-on-write shares).

        Cheap enough to take per session: cleaning one feature later
        materializes only that feature's column.
        """
        return PollutedDataset(
            name=self.name,
            label=self.label,
            train=self.train.copy(),
            test=self.test.copy(),
            clean_train=self.clean_train,
            clean_test=self.clean_test,
            dirty_train=self.dirty_train.copy(),
            dirty_test=self.dirty_test.copy(),
            levels=dict(self.levels),
        )


class PrePollution:
    """Sample a pre-pollution setting and apply it to clean splits.

    Parameters
    ----------
    error_types:
        Error types (instances or names). In the single-error scenario pass
        one; with several, each pollution step picks a random applicable
        type (the paper's multi-error scenario).
    scale:
        Scale of the exponential distribution the per-feature pollution
        level is drawn from.
    max_level:
        Upper clip for sampled levels, so a feature is never fully noise.
    step:
        Pollution step granularity (1 % of rows, as in §4.1).
    """

    def __init__(
        self,
        error_types,
        scale: float = 0.15,
        max_level: float = 0.4,
        step: float = 0.01,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if not isinstance(error_types, (list, tuple)):
            error_types = [error_types]
        if not error_types:
            raise ValueError("need at least one error type")
        self.error_types: list[ErrorType] = [
            make_error(e) if isinstance(e, str) else e for e in error_types
        ]
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if not 0.0 < max_level <= 1.0:
            raise ValueError(f"max_level must be in (0, 1], got {max_level}")
        self.scale = scale
        self.max_level = max_level
        self.step = step
        self._rng = np.random.default_rng(rng)

    def sample_levels(self, frame: DataFrame, label: str) -> dict[str, float]:
        """Exponential per-feature pollution levels, rounded to whole steps."""
        levels = {}
        for name in frame.column_names:
            if name == label:
                continue
            if not any(e.applies_to(frame[name]) for e in self.error_types):
                levels[name] = 0.0
                continue
            raw = float(self._rng.exponential(self.scale))
            clipped = min(raw, self.max_level)
            levels[name] = round(clipped / self.step) * self.step
        return levels

    def apply(
        self,
        clean_train: DataFrame,
        clean_test: DataFrame,
        label: str,
        name: str = "dataset",
        levels: dict[str, float] | None = None,
    ) -> PollutedDataset:
        """Pollute both splits up to the (sampled) per-feature levels."""
        if levels is None:
            levels = self.sample_levels(clean_train, label)
        train, dirty_train = self._pollute_split(clean_train, label, levels)
        test, dirty_test = self._pollute_split(clean_test, label, levels)
        return PollutedDataset(
            name=name,
            label=label,
            train=train,
            test=test,
            clean_train=clean_train.copy(),
            clean_test=clean_test.copy(),
            dirty_train=dirty_train,
            dirty_test=dirty_test,
            levels=dict(levels),
        )

    def _pollute_split(
        self, clean: DataFrame, label: str, levels: dict[str, float]
    ) -> tuple[DataFrame, DirtyCells]:
        frame = clean.copy()
        cells = DirtyCells()
        cells_per_step = max(1, int(round(self.step * frame.n_rows)))
        for feature, level in levels.items():
            if level <= 0.0:
                continue
            applicable = [e for e in self.error_types if e.applies_to(frame[feature])]
            if not applicable:
                continue
            n_steps = int(round(level / self.step))
            target = min(n_steps * cells_per_step, frame.n_rows)
            # Pre-pollution controls its own rows: draw without replacement
            # so the realized dirty fraction equals the sampled level.
            rows = self._rng.permutation(frame.n_rows)[:target]
            # One COW share per polluted feature: the first set_values
            # materializes private arrays, later steps mutate in place.
            column = frame[feature].copy()
            for k in range(n_steps):
                chunk = rows[k * cells_per_step : (k + 1) * cells_per_step]
                if chunk.size == 0:
                    break
                error = applicable[self._rng.integers(len(applicable))]
                column.set_values(chunk, error.corrupt(column, chunk, self._rng))
                cells.add(feature, error.name, chunk)
            frame.set_column(column)
        return frame, cells
