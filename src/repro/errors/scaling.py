"""Scaling errors (§3.4): unit-conversion mistakes on numeric cells."""

from __future__ import annotations

import numpy as np

from repro.errors.base import ErrorType, register_error
from repro.frame import Column

__all__ = ["Scaling"]


@register_error
class Scaling(ErrorType):
    """Multiply selected numeric cells by 10, 100, or 1000.

    Emulates incorrect unit conversions (e.g. cm recorded as m); the factor
    is drawn uniformly from ``factors`` per pollution action, as in the
    paper.
    """

    name = "scaling"

    def __init__(self, factors: tuple = (10.0, 100.0, 1000.0)) -> None:
        if not factors or any(f <= 0 for f in factors):
            raise ValueError("factors must be positive and non-empty")
        self.factors = tuple(factors)

    def applies_to(self, column: Column) -> bool:
        """Whether this error type can occur in ``column``."""
        return column.is_numeric

    def _corrupt_vectorized(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # One scalar factor draw in both kernels — rng streams identical.
        factor = self.factors[rng.integers(len(self.factors))]
        base = column.values[rows].copy()
        present = column.values[~column.missing_mask]
        present = present[np.isfinite(present)]
        mean = float(present.mean()) if present.size else 1.0
        # A missing cell has no magnitude to scale; fall back to a scaled
        # column mean so the injected value is still anomalous.
        base[~np.isfinite(base)] = mean
        return base * factor

    def _corrupt_reference(
        self, column: Column, rows: np.ndarray, rng: np.random.Generator
    ) -> list:
        factor = self.factors[rng.integers(len(self.factors))]
        base = column.values[rows].copy()
        present = column.values[~column.missing_mask]
        present = present[np.isfinite(present)]
        mean = float(present.mean()) if present.size else 1.0
        base[~np.isfinite(base)] = mean
        return (base * factor).tolist()
