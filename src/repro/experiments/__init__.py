"""Experiment harness: configurations, method runners, curve comparisons,
aggregation, and plain-text reporting for every table and figure in §5."""

from repro.experiments.aggregate import (
    advantage_by_algorithm,
    advantage_by_error_type,
    estimator_mae,
    first_iteration_runtime,
)
from repro.experiments.comparison import (
    average_curve,
    f1_advantage,
    f1_advantage_curves,
)
from repro.experiments.reporting import ascii_plot, format_series, format_table
from repro.experiments.runner import (
    METHOD_NAMES,
    Configuration,
    build_polluted,
    run_configuration,
    run_configurations,
    run_method,
)

__all__ = [
    "Configuration",
    "METHOD_NAMES",
    "build_polluted",
    "run_method",
    "run_configuration",
    "run_configurations",
    "average_curve",
    "f1_advantage",
    "f1_advantage_curves",
    "advantage_by_algorithm",
    "advantage_by_error_type",
    "estimator_mae",
    "first_iteration_runtime",
    "format_table",
    "format_series",
    "ascii_plot",
]
