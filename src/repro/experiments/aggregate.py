"""Aggregated views: Figures 10 (overall advantage), 11 (Estimator MAE),
and 12 (recommendation runtime)."""

from __future__ import annotations

import time

import numpy as np

from repro.core import Comet
from repro.core.trace import CleaningTrace
from repro.experiments.comparison import f1_advantage
from repro.experiments.runner import Configuration, build_polluted

__all__ = [
    "advantage_by_algorithm",
    "advantage_by_error_type",
    "estimator_mae",
    "first_iteration_runtime",
]


def _mean_advantage(
    comet: list[CleaningTrace], baseline: list[CleaningTrace], budget: float
) -> float:
    grid = np.arange(1.0, budget + 1.0)
    return float(np.mean(f1_advantage(comet, baseline, grid)))


def advantage_by_algorithm(
    results_by_run: list[dict],
) -> dict[str, float]:
    """Figure 10a: mean F1 advantage of COMET grouped by ML algorithm.

    ``results_by_run`` entries are dicts with keys ``algorithm``,
    ``budget``, ``comet`` (traces), and ``baselines`` (method → traces).
    """
    buckets: dict[str, list[float]] = {}
    for run in results_by_run:
        for traces in run["baselines"].values():
            buckets.setdefault(run["algorithm"], []).append(
                _mean_advantage(run["comet"], traces, run["budget"])
            )
    return {alg: float(np.mean(vals)) for alg, vals in sorted(buckets.items())}


def advantage_by_error_type(
    results_by_run: list[dict],
) -> dict[str, float]:
    """Figure 10b: mean advantage grouped by error type (single-error runs)."""
    buckets: dict[str, list[float]] = {}
    for run in results_by_run:
        error = run["error_type"]
        for traces in run["baselines"].values():
            buckets.setdefault(error, []).append(
                _mean_advantage(run["comet"], traces, run["budget"])
            )
    return {err: float(np.mean(vals)) for err, vals in sorted(buckets.items())}


def estimator_mae(traces: list[CleaningTrace]) -> float:
    """Figure 11: MAE between predicted and realized post-cleaning F1."""
    errors: list[float] = []
    for trace in traces:
        errors.extend(trace.prediction_errors())
    if not errors:
        return float("nan")
    return float(np.mean(errors))


def first_iteration_runtime(
    config: Configuration, seed: int = 0, rng: int = 0
) -> float:
    """Figure 12: wall-clock seconds of COMET's first recommendation.

    The first iteration is the most expensive one — every candidate is
    still open, so the Polluter/Estimator sweep covers the full feature
    set, exactly the moment the paper measures.
    """
    polluted = build_polluted(config, seed=seed)
    comet = Comet(
        polluted,
        algorithm=config.algorithm,
        error_types=list(config.error_types),
        budget=config.budget,
        cost_model=config.make_cost_model(),
        config=config.make_comet_config(),
        rng=rng,
    )
    start = time.perf_counter()
    comet.step()
    return time.perf_counter() - start
