"""F1-advantage curves: the quantity every §5 comparison figure plots.

For each cleaning step (budget point) the F1 difference between COMET and a
baseline is computed per pre-pollution setting, then averaged across
settings. A positive advantage means COMET outperforms the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import CleaningTrace

__all__ = ["average_curve", "f1_advantage", "f1_advantage_curves"]


def average_curve(
    traces: list[CleaningTrace], budget_grid: np.ndarray | list
) -> np.ndarray:
    """Mean F1-over-budget step function across traces."""
    if not traces:
        raise ValueError("need at least one trace")
    grid = np.asarray(budget_grid, dtype=float)
    return np.mean([t.f1_at(grid) for t in traces], axis=0)


def f1_advantage(
    comet_traces: list[CleaningTrace],
    baseline_traces: list[CleaningTrace],
    budget_grid: np.ndarray | list,
) -> np.ndarray:
    """COMET-minus-baseline F1 per budget point, averaged over settings."""
    grid = np.asarray(budget_grid, dtype=float)
    return average_curve(comet_traces, grid) - average_curve(baseline_traces, grid)


def f1_advantage_curves(
    results: dict[str, list[CleaningTrace]],
    budget_grid: np.ndarray | list,
    reference: str = "comet",
) -> dict[str, np.ndarray]:
    """Advantage of ``reference`` over every other method in ``results``."""
    if reference not in results:
        raise ValueError(f"reference method {reference!r} not in results")
    grid = np.asarray(budget_grid, dtype=float)
    return {
        method: f1_advantage(results[reference], traces, grid)
        for method, traces in results.items()
        if method != reference
    }
