"""Programmatic regeneration of the paper's figures.

The benchmark suite under ``benchmarks/`` drives these functions; they are
exposed as a library API so downstream users can regenerate any figure at
their own scale::

    from repro.experiments.figures import figure3
    lines, curves = figure3("cmc", n_rows=400, budget=30.0)

Every function returns ``(lines, data)``: formatted text series plus the
raw curves/values for further analysis. Sizes default to laptop scale;
pass Table 1 row counts and ``budget=50`` for paper-scale runs.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.aggregate import (
    advantage_by_algorithm,
    advantage_by_error_type,
    estimator_mae,
    first_iteration_runtime,
)
from repro.experiments.comparison import f1_advantage_curves
from repro.experiments.reporting import format_series
from repro.experiments.runner import Configuration, run_configuration

__all__ = [
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
]

_ALL_ERRORS = ("categorical", "noise", "missing", "scaling")


def _applicable_errors(dataset: str) -> tuple[str, ...]:
    if dataset == "eeg":
        return tuple(e for e in _ALL_ERRORS if e != "categorical")
    return _ALL_ERRORS


def _comparison(
    dataset: str,
    algorithm: str,
    error_types,
    methods,
    cost_model: str = "uniform",
    cleanml: bool = False,
    n_rows: int = 240,
    budget: float = 16.0,
    step: float = 0.02,
    n_settings: int = 1,
    seed: int = 0,
):
    config = Configuration(
        dataset=dataset,
        algorithm=algorithm,
        error_types=tuple(error_types),
        n_rows=n_rows,
        budget=budget,
        step=step,
        cost_model=cost_model,
        cleanml=cleanml,
        rr_repeats=2,
    )
    results = run_configuration(
        config, methods=("comet", *methods), n_settings=n_settings, seed=seed
    )
    grid = np.arange(0.0, budget + 1.0)
    curves = f1_advantage_curves(results, grid)
    lines = [
        format_series(f"{dataset}/{algorithm} vs {m.upper()}", grid, c)
        for m, c in curves.items()
    ]
    return lines, curves


def figure3(dataset: str = "cmc", **kwargs):
    """COMET vs FIR/RR/CL, SVM, multi-error + diverse costs."""
    return _comparison(
        dataset, "svm", _applicable_errors(dataset),
        methods=("fir", "rr", "cl"), cost_model="paper", **kwargs,
    )


def figure4(dataset: str = "cmc", **kwargs):
    """COMET vs ActiveClean, LIR, multi-error + diverse costs."""
    return _comparison(
        dataset, "lir", _applicable_errors(dataset),
        methods=("ac",), cost_model="paper", **kwargs,
    )


def figure5(dataset: str = "cmc", error: str = "missing", **kwargs):
    """COMET vs FIR/RR/CL, MLP, one error type, constant costs."""
    return _comparison(dataset, "mlp", (error,), methods=("fir", "rr", "cl"), **kwargs)


def figure6(dataset: str = "titanic", error: str = "missing", **kwargs):
    """Figure 5 on a CleanML dirty/clean pair."""
    return _comparison(
        dataset, "mlp", (error,), methods=("fir", "rr", "cl"), cleanml=True, **kwargs
    )


def figure8(dataset: str = "cmc", error: str = "missing", **kwargs):
    """COMET vs ActiveClean, AC-SVM, one error type."""
    return _comparison(dataset, "ac_svm", (error,), methods=("ac",), **kwargs)


def figure9(dataset: str = "titanic", error: str = "missing", **kwargs):
    """Figure 8 on a CleanML dirty/clean pair."""
    return _comparison(
        dataset, "ac_svm", (error,), methods=("ac",), cleanml=True, **kwargs
    )


def figure10(
    dataset: str = "cmc",
    n_rows: int = 200,
    budget: float = 8.0,
    step: float = 0.02,
    seed: int = 0,
):
    """Overall advantage grouped by algorithm (a) and error type (b)."""
    runs_a, runs_b = [], []
    for algorithm in ("gb", "knn", "mlp", "svm"):
        config = Configuration(dataset, algorithm, ("missing",), n_rows=n_rows,
                               budget=budget, step=step, rr_repeats=2)
        results = run_configuration(config, methods=("comet", "fir", "rr", "cl"),
                                    n_settings=1, seed=seed)
        runs_a.append({"algorithm": algorithm, "error_type": "missing",
                       "budget": budget, "comet": results["comet"],
                       "baselines": {m: results[m] for m in ("fir", "rr", "cl")}})
    for algorithm in ("ac_svm", "lir", "lor"):
        config = Configuration(dataset, algorithm, ("missing",), n_rows=n_rows,
                               budget=budget, step=step, rr_repeats=2)
        results = run_configuration(config, methods=("comet", "ac"),
                                    n_settings=1, seed=seed)
        runs_a.append({"algorithm": algorithm, "error_type": "missing",
                       "budget": budget, "comet": results["comet"],
                       "baselines": {"ac": results["ac"]}})
    for error in _applicable_errors(dataset):
        config = Configuration(dataset, "svm", (error,), n_rows=n_rows,
                               budget=budget, step=step, rr_repeats=2)
        results = run_configuration(config, methods=("comet", "fir", "rr", "cl"),
                                    n_settings=1, seed=seed + 1)
        runs_b.append({"algorithm": "svm", "error_type": error,
                       "budget": budget, "comet": results["comet"],
                       "baselines": {m: results[m] for m in ("fir", "rr", "cl")}})
    by_algorithm = advantage_by_algorithm(runs_a)
    by_error = advantage_by_error_type(runs_b)
    lines = ["(a) grouped by ML algorithm"]
    lines += [f"  {a:8s} {v:+.4f}" for a, v in by_algorithm.items()]
    lines += ["(b) grouped by error type"]
    lines += [f"  {e:12s} {v:+.4f}" for e, v in by_error.items()]
    return lines, {"by_algorithm": by_algorithm, "by_error": by_error}


def figure11(
    grid=(("missing", "svm"), ("missing", "knn"), ("noise", "svm"),
          ("categorical", "svm"), ("scaling", "svm")),
    dataset: str = "cmc",
    n_rows: int = 200,
    budget: float = 8.0,
    step: float = 0.02,
    seed: int = 0,
):
    """Estimator MAE per (error type, algorithm)."""
    cells = []
    for error, algorithm in grid:
        config = Configuration(dataset, algorithm, (error,), n_rows=n_rows,
                               budget=budget, step=step)
        results = run_configuration(config, methods=("comet",), n_settings=1, seed=seed)
        cells.append((error, algorithm, estimator_mae(results["comet"])))
    lines = [f"{e:12s} {a:6s} MAE={m:.4f}" for e, a, m in cells]
    return lines, cells


def figure12(
    algorithms=("gb", "knn", "mlp", "svm", "lir", "lor"),
    errors=_ALL_ERRORS,
    dataset: str = "cmc",
    n_rows: int = 200,
    step: float = 0.02,
    seed: int = 0,
):
    """First-iteration recommendation runtime per algorithm × error type."""
    cells = {}
    for algorithm in algorithms:
        for error in errors:
            config = Configuration(dataset, algorithm, (error,), n_rows=n_rows,
                                   budget=2.0, step=step)
            cells[(algorithm, error)] = first_iteration_runtime(config, seed=seed)
    lines = [f"{a:6s} {e:12s} {s:8.3f}s" for (a, e), s in cells.items()]
    return lines, cells
