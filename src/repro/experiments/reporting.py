"""Plain-text reporting: the rows and series the paper's tables/figures show."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ascii_plot"]


def format_table(rows: Iterable[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table with a header."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in cells)
    return f"{header}\n{rule}\n{body}"


def format_series(
    name: str,
    grid: np.ndarray | Sequence[float],
    values: np.ndarray | Sequence[float],
    every: int = 5,
) -> str:
    """Render a (budget → value) series, sampling every ``every``-th point."""
    grid = np.asarray(grid, dtype=float)
    values = np.asarray(values, dtype=float)
    if grid.shape != values.shape:
        raise ValueError(f"grid and values disagree: {grid.shape} vs {values.shape}")
    idx = list(range(0, len(grid), max(1, every)))
    if idx[-1] != len(grid) - 1:
        idx.append(len(grid) - 1)
    points = "  ".join(f"{grid[i]:g}:{values[i]:+.3f}" for i in idx)
    return f"{name:<28s} {points}"


def ascii_plot(
    curves: Mapping[str, np.ndarray | Sequence[float]],
    grid: np.ndarray | Sequence[float] | None = None,
    height: int = 12,
    width: int = 60,
) -> str:
    """Render one or more (budget → value) curves as a text chart.

    Each curve gets a marker character; overlapping points show the later
    curve's marker. Used by the examples and the CLI to show F1-per-budget
    plots without matplotlib.
    """
    if not curves:
        raise ValueError("need at least one curve")
    markers = "*+ox#@%&"
    series = {name: np.asarray(v, dtype=float) for name, v in curves.items()}
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all curves must have the same length")
    n = lengths.pop()
    if n < 2:
        raise ValueError("curves need at least two points")
    grid = np.arange(n, dtype=float) if grid is None else np.asarray(grid, dtype=float)
    lo = min(float(v.min()) for v in series.values())
    hi = max(float(v.max()) for v in series.values())
    if hi - lo < 1e-12:
        hi = lo + 1e-12
    canvas = [[" "] * width for __ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for j in range(n):
            col = int(round((j / (n - 1)) * (width - 1)))
            row = int(round((1.0 - (values[j] - lo) / (hi - lo)) * (height - 1)))
            canvas[row][col] = marker
    lines = [f"{hi:8.3f} |" + "".join(canvas[0])]
    lines += ["         |" + "".join(row) for row in canvas[1:-1]]
    lines.append(f"{lo:8.3f} |" + "".join(canvas[-1]))
    lines.append("         +" + "-" * width)
    lines.append(f"          {grid[0]:<10g}{'budget':^{max(0, width - 20)}}{grid[-1]:>10g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"          {legend}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
