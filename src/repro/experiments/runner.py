"""Configuration runner.

A *configuration* (§4) is a unique combination of dataset, ML algorithm,
and error type(s); each configuration is evaluated across several sampled
pre-pollution settings. ``run_configuration`` executes a set of methods
(COMET plus baselines) on identical polluted datasets so their traces are
directly comparable.

Settings are independent by construction — every per-setting run derives
its dataset and method RNG from explicit ``(seed, setting, repeat)``
arithmetic, never from shared generator state — so ``run_configuration``
and ``run_configurations`` can fan the per-setting work out through a
``repro.runtime`` backend and still return exactly what a sequential run
returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    ActiveClean,
    CometLight,
    FeatureImportanceCleaner,
    OracleCleaner,
    RandomCleaner,
)
from repro.cleaning import paper_cost_model, uniform_cost_model
from repro.core import Comet, CometConfig
from repro.core.trace import CleaningTrace
from repro.datasets import load_cleanml, load_dataset, pollute
from repro.errors.prepollution import PollutedDataset
from repro.runtime import ExecutionBackend, make_backend

__all__ = [
    "Configuration",
    "METHOD_NAMES",
    "build_polluted",
    "run_method",
    "run_configuration",
    "run_configurations",
]

METHOD_NAMES = ("comet", "rr", "fir", "cl", "ac", "oracle")


@dataclass
class Configuration:
    """One experimental scenario (dataset × algorithm × error types).

    Attributes
    ----------
    dataset:
        Dataset registry name (or CleanML name with ``cleanml=True``).
    algorithm:
        ML algorithm registry name.
    error_types:
        Error type names; one entry = single-error scenario.
    n_rows:
        Scaled-down row count for tractable runs (``None`` = Table 1 size).
    budget:
        Cleaning budget in cost units (50 in the paper).
    step:
        Cleaning/pollution step fraction (1 % in the paper).
    cost_model:
        ``"uniform"`` (single-error scenario) or ``"paper"`` (multi-error
        scenario with diverse cost functions).
    cleanml:
        Load the dataset as a fixed CleanML dirty/clean pair instead of
        sampling a pre-pollution setting.
    rr_repeats:
        Random-baseline repetitions averaged per setting (5 in §4.5).
    backend:
        Execution backend name for COMET's estimation sweep
        (``"serial"``, ``"thread"``, ``"process"``).
    jobs:
        Worker count for the backend; ``1`` falls back to serial.
    """

    dataset: str
    algorithm: str = "svm"
    error_types: tuple = ("missing",)
    n_rows: int | None = None
    budget: float = 50.0
    step: float = 0.01
    cost_model: str = "uniform"
    cleanml: bool = False
    rr_repeats: int = 5
    comet_config: CometConfig | None = None
    pollution_scale: float = 0.15
    max_level: float = 0.4
    backend: str = "serial"
    jobs: int = 1

    def make_cost_model(self):
        """Instantiate the configured cost model."""
        if self.cost_model == "paper":
            return paper_cost_model()
        if self.cost_model == "uniform":
            return uniform_cost_model()
        raise ValueError(f"unknown cost model {self.cost_model!r}")

    def make_comet_config(self) -> CometConfig:
        """Instantiate the configured CometConfig."""
        if self.comet_config is not None:
            return self.comet_config
        return CometConfig(step=self.step)


def build_polluted(config: Configuration, seed: int) -> PollutedDataset:
    """Materialize the polluted dataset of one pre-pollution setting."""
    if config.cleanml:
        return load_cleanml(config.dataset, n_rows=config.n_rows, rng=seed)
    dataset = load_dataset(config.dataset, n_rows=config.n_rows)
    return pollute(
        dataset,
        error_types=list(config.error_types),
        scale=config.pollution_scale,
        max_level=config.max_level,
        step=config.step,
        rng=seed,
    )


def run_method(
    method: str,
    polluted: PollutedDataset,
    config: Configuration,
    rng: np.random.Generator | int | None = None,
) -> CleaningTrace:
    """Run one cleaning method on one polluted dataset."""
    rng = np.random.default_rng(rng)
    common = dict(
        error_types=list(config.error_types),
        budget=config.budget,
        cost_model=config.make_cost_model(),
    )
    if method == "comet":
        with Comet(
            polluted,
            algorithm=config.algorithm,
            config=config.make_comet_config(),
            rng=rng,
            backend=config.backend,
            jobs=config.jobs,
            **common,
        ) as comet:
            return comet.run()
    if method == "cl":
        return CometLight(
            polluted,
            algorithm=config.algorithm,
            step=config.step,
            config=config.make_comet_config(),
            rng=rng,
            **common,
        ).run()
    strategy_cls = {
        "rr": RandomCleaner,
        "fir": FeatureImportanceCleaner,
        "ac": ActiveClean,
        "oracle": OracleCleaner,
    }.get(method)
    if strategy_cls is None:
        raise ValueError(f"unknown method {method!r}; choose from {METHOD_NAMES}")
    return strategy_cls(
        polluted, algorithm=config.algorithm, step=config.step, rng=rng, **common
    ).run()


@dataclass
class _SettingTask:
    """One pre-pollution setting's full method sweep (picklable)."""

    config: Configuration
    methods: tuple
    setting: int
    seed: int


def _run_setting(task: _SettingTask) -> dict[str, list[CleaningTrace]]:
    """Build one setting's polluted dataset and run every method on it.

    Module-level so process backends can pickle it. The methods share one
    polluted dataset and run in declaration order, exactly as the
    sequential loop did.
    """
    polluted = build_polluted(task.config, seed=task.seed + task.setting)
    results: dict[str, list[CleaningTrace]] = {m: [] for m in task.methods}
    for method in task.methods:
        repeats = task.config.rr_repeats if method == "rr" else 1
        for r in range(repeats):
            results[method].append(
                run_method(
                    method,
                    polluted,
                    task.config,
                    rng=task.seed * 1000 + task.setting * 10 + r,
                )
            )
    return results


def run_configuration(
    config: Configuration,
    methods=("comet", "rr"),
    n_settings: int = 1,
    seed: int = 0,
    backend: str | ExecutionBackend = "serial",
    jobs: int = 1,
) -> dict[str, list[CleaningTrace]]:
    """Run each method across ``n_settings`` pre-pollution settings.

    The random baseline is repeated ``config.rr_repeats`` times per setting
    (its traces are appended; downstream averaging treats them as one
    setting each, matching the paper's averaged RR curves).

    ``backend``/``jobs`` parallelize *across settings* (each setting task
    seeds itself from ``seed + setting``, so results match a serial run
    trace-for-trace). This outer fan-out composes with the per-session
    ``config.backend``/``config.jobs`` knob — combining both multiplies
    worker counts, so enable only one level for CPU-bound runs.
    """
    return run_configurations(
        [config], methods, n_settings, seed, backend=backend, jobs=jobs
    )[0]


def run_configurations(
    configs: list[Configuration],
    methods=("comet", "rr"),
    n_settings: int = 1,
    seed: int = 0,
    backend: str | ExecutionBackend = "serial",
    jobs: int = 1,
) -> list[dict[str, list[CleaningTrace]]]:
    """Run several configurations, fanning (config, setting) tasks out.

    The work unit is one setting of one configuration, so a figure-style
    grid of many small configurations saturates the backend even when
    each configuration has a single setting. Returns one result dict per
    configuration, in input order, identical to serial execution.
    """
    tasks = [
        _SettingTask(config, tuple(methods), s, seed)
        for config in configs
        for s in range(n_settings)
    ]
    with make_backend(backend, jobs) as pool:
        per_task = pool.map(_run_setting, tasks)
    out: list[dict[str, list[CleaningTrace]]] = []
    for i in range(len(configs)):
        results: dict[str, list[CleaningTrace]] = {m: [] for m in methods}
        for setting_result in per_task[i * n_settings : (i + 1) * n_settings]:
            for method in methods:
                results[method].extend(setting_result[method])
        out.append(results)
    return out
