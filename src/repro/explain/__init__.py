"""Model explanation: sampled Shapley feature importance.

The FIR baseline (§4.5) ranks features by Shapley values computed on the
dirty input data; this subpackage provides that computation without the
external ``shap`` dependency.
"""

from repro.explain.shapley import rank_features_by_importance, shapley_values

__all__ = ["shapley_values", "rank_features_by_importance"]
