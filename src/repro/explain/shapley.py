"""Permutation-sampling Shapley feature importance.

Follows the classic sampling estimator of the Shapley value (Lundberg &
Lee's model-agnostic setting): for random feature permutations, the
marginal contribution of a feature is the change in model F1 when the
feature's column is revealed (true values) versus masked (values shuffled
against the rows, i.e. drawn from the marginal distribution).
"""

from __future__ import annotations

import numpy as np

from repro.frame import DataFrame
from repro.ml.metrics import f1_score
from repro.ml.pipeline import TabularModel

__all__ = ["shapley_values", "rank_features_by_importance"]


def shapley_values(
    model: TabularModel,
    frame: DataFrame,
    n_permutations: int = 8,
    rng: np.random.Generator | int | None = None,
) -> dict[str, float]:
    """Estimate per-feature Shapley importance of a fitted model's F1.

    Parameters
    ----------
    model:
        A fitted :class:`TabularModel`.
    frame:
        Evaluation frame (label column included) on which contributions are
        measured.
    n_permutations:
        Number of sampled feature permutations; the estimate averages
        marginal contributions across them.

    Returns
    -------
    Mapping of feature name → Shapley value estimate. Values sum
    (approximately) to ``F1(full model) − F1(all features masked)``.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    rng = np.random.default_rng(rng)
    features = list(model.features_)
    y_true = frame.label_array(model.label)
    n_rows = frame.n_rows

    shuffled = frame.copy()
    for name in features:
        shuffled.set_column(frame[name].take(rng.permutation(n_rows)))

    totals = {name: 0.0 for name in features}
    for __ in range(n_permutations):
        order = rng.permutation(len(features))
        current = shuffled.copy()
        prev_score = f1_score(y_true, model.predict(current))
        for j in order:
            name = features[j]
            current.set_column(frame[name].copy())
            score = f1_score(y_true, model.predict(current))
            totals[name] += score - prev_score
            prev_score = score
    return {name: total / n_permutations for name, total in totals.items()}


def rank_features_by_importance(
    model: TabularModel,
    frame: DataFrame,
    n_permutations: int = 8,
    rng: np.random.Generator | int | None = None,
) -> list[str]:
    """Feature names sorted by decreasing Shapley importance."""
    values = shapley_values(model, frame, n_permutations=n_permutations, rng=rng)
    return sorted(values, key=lambda name: values[name], reverse=True)
