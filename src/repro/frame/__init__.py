"""A minimal typed column-store dataframe with copy-on-write sharing.

The environment that hosts this reproduction does not ship pandas, so this
subpackage provides the small slice of dataframe functionality that COMET
needs: typed columns (numeric and categorical) with missing-value masks,
row/column selection, copying, and CSV round-tripping.

Frame copies are copy-on-write: polluted/cleaned states share untouched
column storage with their parents, and each column content state carries a
process-unique ``(token, version)`` identity that changes only on mutation.
``repro.ml.preprocessing`` keys its featurization caches on those tokens,
which is what makes repeated fits over mostly-shared data states cheap.
"""

from repro.frame.column import Column, ColumnKind
from repro.frame.dataframe import DataFrame
from repro.frame.io import read_csv, write_csv

__all__ = ["Column", "ColumnKind", "DataFrame", "read_csv", "write_csv"]
