"""A minimal typed column-store dataframe.

The environment that hosts this reproduction does not ship pandas, so this
subpackage provides the small slice of dataframe functionality that COMET
needs: typed columns (numeric and categorical) with missing-value masks,
row/column selection, copying, and CSV round-tripping.
"""

from repro.frame.column import Column, ColumnKind
from repro.frame.dataframe import DataFrame
from repro.frame.io import read_csv, write_csv

__all__ = ["Column", "ColumnKind", "DataFrame", "read_csv", "write_csv"]
