"""Typed columns with explicit missing-value masks."""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ColumnKind", "Column"]


class ColumnKind(enum.Enum):
    """The two column types COMET distinguishes.

    The paper's error types are kind-specific: Gaussian noise and scaling
    apply to numeric columns, categorical shift applies to categorical
    columns, and missing values apply to both.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class Column:
    """A single dataframe column: values plus a missing mask.

    Numeric columns store ``float64`` values; missing cells additionally hold
    ``nan`` so that downstream numeric code never reads a stale value.
    Categorical columns store object values (typically strings); missing
    cells hold ``None``.

    Parameters
    ----------
    name:
        Column name, unique within a :class:`~repro.frame.DataFrame`.
    values:
        Cell values. ``nan``/``None`` entries are recorded as missing.
    kind:
        Explicit kind; inferred from the values' dtype when omitted.
    """

    def __init__(
        self,
        name: str,
        values: Iterable,
        kind: ColumnKind | None = None,
    ) -> None:
        self.name = name
        raw = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if kind is None:
            kind = _infer_kind(raw)
        self.kind = kind
        if kind is ColumnKind.NUMERIC:
            self._values = raw.astype(float)
            self._missing = np.isnan(self._values)
        else:
            self._values = raw.astype(object)
            self._missing = np.array([_is_missing_value(v) for v in self._values], dtype=bool)
            self._values[self._missing] = None

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, kind={self.kind.value}, n={len(self)}, missing={int(self.n_missing)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind != other.kind or len(self) != len(other):
            return False
        if not np.array_equal(self._missing, other._missing):
            return False
        present = ~self._missing
        if self.kind is ColumnKind.NUMERIC:
            return bool(np.allclose(self._values[present], other._values[present]))
        return bool(np.array_equal(self._values[present], other._values[present]))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The raw value array (read it, do not mutate it in place)."""
        return self._values

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean mask of missing cells."""
        return self._missing

    @property
    def n_missing(self) -> int:
        """Number of missing cells."""
        return int(self._missing.sum())

    @property
    def is_numeric(self) -> bool:
        """True for numeric columns."""
        return self.kind is ColumnKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        """True for categorical columns."""
        return self.kind is ColumnKind.CATEGORICAL

    def categories(self) -> list:
        """Sorted distinct non-missing values (categorical convenience)."""
        present = self._values[~self._missing]
        return sorted(set(present.tolist()), key=str)

    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        """Return a new column containing the given rows, in order."""
        idx = np.asarray(indices)
        out = Column.__new__(Column)
        out.name = self.name
        out.kind = self.kind
        out._values = self._values[idx].copy()
        out._missing = self._missing[idx].copy()
        return out

    def copy(self) -> "Column":
        """Deep copy (independent of the original)."""
        return self.take(np.arange(len(self)))

    # ------------------------------------------------------------------ #
    # mutation (used by the Polluter and the Cleaner)
    # ------------------------------------------------------------------ #
    def set_values(self, indices: Sequence[int] | np.ndarray, values: Iterable) -> None:
        """Overwrite cells at ``indices`` with ``values``.

        ``nan``/``None`` values mark the cells as missing; any other value
        clears the missing flag.
        """
        idx = np.asarray(indices)
        vals = list(values) if not isinstance(values, np.ndarray) else values
        if len(idx) != len(vals):
            raise ValueError(
                f"got {len(idx)} indices but {len(vals)} values for column {self.name!r}"
            )
        if self.kind is ColumnKind.NUMERIC:
            arr = np.asarray(vals, dtype=float)
            self._values[idx] = arr
            self._missing[idx] = np.isnan(arr)
        else:
            for i, v in zip(idx, vals):
                if _is_missing_value(v):
                    self._values[i] = None
                    self._missing[i] = True
                else:
                    self._values[i] = v
                    self._missing[i] = False

    def set_missing(self, indices: Sequence[int] | np.ndarray) -> None:
        """Mark the cells at ``indices`` as missing."""
        idx = np.asarray(indices)
        if self.kind is ColumnKind.NUMERIC:
            self._values[idx] = np.nan
        else:
            self._values[idx] = None
        self._missing[idx] = True


def _infer_kind(values: np.ndarray) -> ColumnKind:
    if values.dtype.kind in "fiub":
        return ColumnKind.NUMERIC
    return ColumnKind.CATEGORICAL


def _is_missing_value(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    return False
