"""Typed columns with explicit missing-value masks and version tokens.

Columns are *structurally shared* across frames: :meth:`Column.copy` (and
every frame-level copy built on it) returns a new ``Column`` object that
shares the underlying value/mask arrays with the original, and the
in-place mutators materialize private arrays on first write — classic
copy-on-write. Each content state carries a process-unique identity
``(token, version)`` that changes *only* on mutation, so downstream code
(the featurization cache in :mod:`repro.ml.preprocessing`) can decide
"same content as last time?" in O(1) instead of re-digesting the bytes.

Token safety rules, which together make ``token == token`` imply
"identical content" everywhere a token can travel:

* tokens are minted from a per-process random salt plus a monotonic
  counter, so two processes (or a parent and its forked worker — the
  salt is re-drawn ``after_in_child``) can never mint the same token;
* every mutation mints a fresh token, so a token never survives a
  content change;
* pickling preserves tokens, which is safe *because* of the two rules
  above — a frame shipped to a process-pool worker keeps its identity,
  and worker-side caches hit across tasks that share columns.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import os
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ColumnKind", "Column"]


# ---------------------------------------------------------------------- #
# identity tokens
# ---------------------------------------------------------------------- #
_TOKEN_SALT = os.urandom(16)
#: ``count().__next__`` is atomic under the GIL, so minting is thread-safe.
_TOKEN_COUNTER = itertools.count()


def _mint_token() -> bytes:
    """A process-unique 24-byte identity for one column content state."""
    return _TOKEN_SALT + next(_TOKEN_COUNTER).to_bytes(8, "little")


def _reseed_token_salt() -> None:
    global _TOKEN_SALT
    _TOKEN_SALT = os.urandom(16)


if hasattr(os, "register_at_fork"):  # forked workers must not reuse our salt
    os.register_at_fork(after_in_child=_reseed_token_salt)


class ColumnKind(enum.Enum):
    """The two column types COMET distinguishes.

    The paper's error types are kind-specific: Gaussian noise and scaling
    apply to numeric columns, categorical shift applies to categorical
    columns, and missing values apply to both.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class Column:
    """A single dataframe column: values plus a missing mask.

    Categorical columns additionally expose :meth:`codes` — a cached
    integer encoding of the values used by the vectorized cleaning
    kernels — invalidated automatically through the ``(token, version)``
    identity, so it is computed at most once per content state.

    Numeric columns store ``float64`` values; missing cells additionally hold
    ``nan`` so that downstream numeric code never reads a stale value.
    Categorical columns store object values (typically strings); missing
    cells hold ``None``.

    Parameters
    ----------
    name:
        Column name, unique within a :class:`~repro.frame.DataFrame`.
    values:
        Cell values. ``nan``/``None`` entries are recorded as missing.
    kind:
        Explicit kind; inferred from the values' dtype when omitted.
    """

    def __init__(
        self,
        name: str,
        values: Iterable,
        kind: ColumnKind | None = None,
    ) -> None:
        self.name = name
        raw = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if kind is None:
            kind = _infer_kind(raw)
        self.kind = kind
        if kind is ColumnKind.NUMERIC:
            self._values = raw.astype(float)
            self._missing = np.isnan(self._values)
        else:
            self._values = raw.astype(object)
            self._missing = np.array([_is_missing_value(v) for v in self._values], dtype=bool)
            self._values[self._missing] = None
        self._token = _mint_token()
        self._version = 0
        self._shared = False

    #: Per-content-state integer-codes cache ``(token, codes, categories)``.
    #: A class-level default keeps legacy pickles and ``__new__``-built
    #: instances consistent without touching ``__setstate__``.
    _codes_cache: tuple | None = None

    #: Row-level mutation lineage ``(base_token, changed-row bool mask)``:
    #: which rows differ from the content state ``base_token`` identified.
    #: Maintained by :meth:`_bump` when the mutator knows the touched
    #: rows, dropped whenever it does not (or the delta stops being
    #: "small") — absence is always safe, it only costs a cache miss.
    _delta: tuple | None = None

    #: Per-content-state memo ``(token, signature)`` for
    #: :meth:`delta_signature` (derived data, dropped on pickling).
    _delta_sig_cache: tuple | None = None

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, kind={self.kind.value}, n={len(self)}, missing={int(self.n_missing)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind != other.kind or len(self) != len(other):
            return False
        if not np.array_equal(self._missing, other._missing):
            return False
        present = ~self._missing
        if self.kind is ColumnKind.NUMERIC:
            return bool(np.allclose(self._values[present], other._values[present]))
        return bool(np.array_equal(self._values[present], other._values[present]))

    def __getstate__(self) -> dict:
        # The codes cache is derived data — cheap to rebuild, pointless
        # to ship across process boundaries.
        state = self.__dict__.copy()
        state.pop("_codes_cache", None)
        state.pop("_delta_sig_cache", None)
        # Lineage travels: tokens are pickle-safe, and a worker holding
        # the base column's twin can still exploit the delta.
        return state

    def __setstate__(self, state: dict) -> None:
        # Pickles carry tokens (safe: salted minting makes them unique
        # across processes, and pickle's memo rebuilds array sharing).
        # Legacy pickles from before column versioning lack an identity —
        # mint one so every live Column has O(1) signatures.
        self.__dict__.update(state)
        if "_token" not in state:
            self._token = _mint_token()
            self._version = 0
            self._shared = False

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The raw value array (read it, do not mutate it in place).

        Under copy-on-write the array may be shared with other columns;
        writing through this view would corrupt them *and* stale the
        version token. Use :meth:`set_values` / :meth:`with_values`.
        """
        return self._values

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean mask of missing cells (shared; do not mutate)."""
        return self._missing

    @property
    def n_missing(self) -> int:
        """Number of missing cells."""
        return int(self._missing.sum())

    @property
    def is_numeric(self) -> bool:
        """True for numeric columns."""
        return self.kind is ColumnKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        """True for categorical columns."""
        return self.kind is ColumnKind.CATEGORICAL

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    @property
    def token(self) -> bytes:
        """Process-unique content identity; equal tokens ⇒ equal content."""
        return self._token

    @property
    def version(self) -> int:
        """How many times this column object has been mutated in place."""
        return self._version

    @property
    def signature(self) -> bytes:
        """O(1) cache key for this content state (the identity token)."""
        return self._token

    @property
    def shares_storage(self) -> bool:
        """True while the value arrays may be shared with another column."""
        return self._shared

    def delta_base(self) -> tuple[bytes, np.ndarray] | None:
        """Row-level lineage: ``(base_token, changed_rows)`` or ``None``.

        When present, this column's content equals the content state
        identified by ``base_token`` everywhere *except* the returned
        (sorted, unique) row indices. Consumers holding a cached artifact
        for ``base_token`` can patch just those rows instead of
        recomputing the whole column. ``None`` means "no usable lineage"
        — the mutation history was unknown, too large, or reset — and
        must always be handled (it is never an error).
        """
        if self._delta is None:
            return None
        base, mask = self._delta
        return base, np.flatnonzero(mask)

    def delta_signature(self) -> bytes | None:
        """A content-proving cache key for this delta state, or ``None``.

        Digest of the base token plus the changed rows' indices, values,
        and missing flags — everything that, together with the base
        content, determines this column's content. Two columns with equal
        delta signatures therefore hold identical content even though
        their identity tokens differ (each pollution mints fresh tokens),
        which is what lets a replayed sweep hit the featurization cache
        on freshly rebuilt polluted states. Memoized per content state.
        """
        if self._delta is None:
            return None
        cached = self._delta_sig_cache
        if cached is not None and cached[0] == self._token:
            return cached[1]
        base, mask = self._delta
        rows = np.flatnonzero(mask)
        h = hashlib.blake2b(digest_size=16)
        h.update(base)
        h.update(len(self._values).to_bytes(8, "little"))
        h.update(rows.astype(np.int64).tobytes())
        if self.kind is ColumnKind.NUMERIC:
            h.update(self._values[rows].tobytes())
        else:
            for value in self._values[rows].tolist():
                if value is None:
                    h.update(b"\x00m")
                else:
                    # Type-tagged so e.g. 1 and "1" can never collide.
                    encoded = str(value).encode("utf-8", "surrogatepass")
                    h.update(type(value).__name__.encode())
                    h.update(len(encoded).to_bytes(4, "little"))
                    h.update(encoded)
        h.update(self._missing[rows].tobytes())
        sig = b"dlt\x00" + h.digest()
        self._delta_sig_cache = (self._token, sig)
        return sig

    def categories(self) -> list:
        """Sorted distinct non-missing values (categorical convenience)."""
        present = self._values[~self._missing]
        return sorted(set(present.tolist()), key=str)

    def codes(self) -> tuple[np.ndarray, list]:
        """Integer codes of the values plus the category list.

        Returns ``(codes, categories)`` where ``codes[i]`` indexes
        ``categories`` (the exact :meth:`categories` ordering) and
        missing cells carry ``-1``. The result is cached per content
        state — the cache key is the column's identity token, so any
        mutation (which mints a fresh token) invalidates it for free,
        and copy-on-write shares inherit the cache along with the
        storage. The returned arrays are owned by the cache: read them,
        do not mutate them.
        """
        cached = self._codes_cache
        if cached is not None and cached[0] == self._token:
            return cached[1], cached[2]
        present = ~self._missing
        values = self._values[present]
        cats = self.categories()
        codes = np.full(len(self._values), -1, dtype=np.intp)
        if cats:
            inverse = None
            try:
                uniques, inverse = np.unique(values, return_inverse=True)
                # np.unique sorts naturally; categories() sorts by str.
                # They coincide for homogeneous string data (the normal
                # case) — verify cheaply and fall back when they differ.
                if len(uniques) != len(cats) or not all(
                    u is c or u == c for u, c in zip(uniques.tolist(), cats)
                ):
                    inverse = None
            except TypeError:  # un-orderable mixed types
                inverse = None
            if inverse is None:
                mapping = {c: i for i, c in enumerate(cats)}
                inverse = np.array([mapping[v] for v in values.tolist()], dtype=np.intp)
            codes[present] = inverse
        self._codes_cache = (self._token, codes, cats)
        return codes, cats

    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        """Return a new column containing the given rows, in order."""
        idx = np.asarray(indices)
        # Fancy indexing already allocates fresh arrays — no copy needed.
        return self._rebuild(self._values[idx], self._missing[idx])

    def copy(self) -> "Column":
        """An independent column (copy-on-write share, O(1)).

        Mutating the copy never affects the original and vice versa; the
        backing arrays are shared until either side first mutates.
        """
        return self.share()

    def share(self, name: str | None = None) -> "Column":
        """Structurally share this column under ``name`` (default: same).

        Both columns keep the same ``(token, version)`` identity — they
        are the same content — and both are flagged as shared so the
        first in-place mutation on either side materializes private
        arrays first.
        """
        out = Column.__new__(Column)
        out.name = self.name if name is None else name
        out.kind = self.kind
        out._values = self._values
        out._missing = self._missing
        out._token = self._token
        out._version = self._version
        out._shared = True
        out._codes_cache = self._codes_cache
        out._delta = self._delta
        out._delta_sig_cache = self._delta_sig_cache
        self._shared = True
        return out

    def _rebuild(self, values: np.ndarray, missing: np.ndarray) -> "Column":
        """A fresh column (new identity) around already-owned arrays."""
        out = Column.__new__(Column)
        out.name = self.name
        out.kind = self.kind
        out._values = values
        out._missing = missing
        out._token = _mint_token()
        out._version = 0
        out._shared = False
        return out

    # ------------------------------------------------------------------ #
    # mutation (used by the Polluter and the Cleaner)
    # ------------------------------------------------------------------ #
    def _materialize(self) -> None:
        """Copy-on-write barrier: own the arrays before the first write."""
        if self._shared:
            self._values = self._values.copy()
            self._missing = self._missing.copy()
            self._shared = False

    def _bump(self, rows: np.ndarray | None = None) -> None:
        """Mutation happened: mint a fresh token, advance the version.

        ``rows`` (when the mutator knows exactly which rows it touched)
        extends the delta lineage; ``None`` drops it. The lineage is
        abandoned once more than a quarter of the rows have changed —
        past that point a masked patch stops beating a full recompute.
        """
        old_token = self._token
        self._token = _mint_token()
        self._version += 1
        self._codes_cache = None
        self._delta_sig_cache = None
        if rows is None:
            self._delta = None
            return
        n = len(self._values)
        if self._delta is None:
            base, mask = old_token, np.zeros(n, dtype=bool)
        else:
            base, prior = self._delta
            mask = prior.copy()  # shares read the same mask — never write it
        mask[np.asarray(rows, dtype=np.intp)] = True
        if int(mask.sum()) * 4 > n:
            self._delta = None
        else:
            self._delta = (base, mask)

    def set_values(self, indices: Sequence[int] | np.ndarray, values: Iterable) -> None:
        """Overwrite cells at ``indices`` with ``values``.

        ``nan``/``None`` values mark the cells as missing; any other value
        clears the missing flag. Copy-on-write: columns sharing storage
        with this one are unaffected.
        """
        idx = np.asarray(indices)
        vals = list(values) if not isinstance(values, np.ndarray) else values
        if len(idx) != len(vals):
            raise ValueError(
                f"got {len(idx)} indices but {len(vals)} values for column {self.name!r}"
            )
        self._materialize()
        # Bump even when a write fails partway (e.g. an out-of-bounds
        # index): content may already have changed, and a token must
        # never survive a content change — a spurious new token only
        # costs a cache miss, a stale one serves wrong statistics. A
        # failed write also drops the delta lineage (rows=None): the set
        # of actually-written rows is unknown, and an understated mask
        # would let a patch serve wrong values.
        try:
            if self.kind is ColumnKind.NUMERIC:
                arr = np.asarray(vals, dtype=float)
                self._values[idx] = arr
                self._missing[idx] = np.isnan(arr)
            else:
                # Bulk masked scatter: normalize to an object array, find
                # the missing entries vectorized, and write values and
                # mask with one fancy assignment each (replacements are
                # prepared first so duplicate indices resolve last-wins
                # for the values *and* the mask consistently).
                arr = np.array(vals, dtype=object, copy=True)
                miss = _missing_object_mask(arr)
                arr[miss] = None
                self._values[idx] = arr
                self._missing[idx] = miss
        except BaseException:
            self._bump()
            raise
        else:
            self._bump(rows=idx)

    def set_missing(self, indices: Sequence[int] | np.ndarray) -> None:
        """Mark the cells at ``indices`` as missing (copy-on-write)."""
        idx = np.asarray(indices)
        self._materialize()
        try:
            if self.kind is ColumnKind.NUMERIC:
                self._values[idx] = np.nan
            else:
                self._values[idx] = None
            self._missing[idx] = True
        except BaseException:
            self._bump()
            raise
        else:
            self._bump(rows=idx)

    # ------------------------------------------------------------------ #
    # functional variants (leave the receiver untouched)
    # ------------------------------------------------------------------ #
    def with_values(self, indices: Sequence[int] | np.ndarray, values: Iterable) -> "Column":
        """A new column with the cells at ``indices`` overwritten."""
        out = self.share()
        out.set_values(indices, values)
        return out

    def with_missing(self, indices: Sequence[int] | np.ndarray) -> "Column":
        """A new column with the cells at ``indices`` marked missing."""
        out = self.share()
        out.set_missing(indices)
        return out

    def set_scatter(self, mask: np.ndarray, values) -> None:
        """Overwrite the cells selected by a full-length boolean ``mask``.

        ``values`` is either a scalar (broadcast to every selected cell)
        or an array aligned with the selected cells in row order. The
        bulk write shares :meth:`set_values`' missing-value semantics.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self._values),):
            raise ValueError(
                f"mask must have shape ({len(self._values)},), got {mask.shape}"
            )
        indices = np.flatnonzero(mask)
        if np.ndim(values) == 0:
            values = np.full(
                len(indices),
                values,
                dtype=float if self.kind is ColumnKind.NUMERIC else object,
            )
        self.set_values(indices, values)

    def with_scatter(self, mask: np.ndarray, values) -> "Column":
        """A new column with the ``mask``-selected cells overwritten."""
        out = self.share()
        out.set_scatter(mask, values)
        return out


def _infer_kind(values: np.ndarray) -> ColumnKind:
    if values.dtype.kind in "fiub":
        return ColumnKind.NUMERIC
    return ColumnKind.CATEGORICAL


def _is_missing_value(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and np.isnan(value):
        return True
    return False


def _missing_object_mask(values: np.ndarray) -> np.ndarray:
    """Vectorized ``_is_missing_value`` over an object array.

    ``v == None`` catches ``None`` and ``v != v`` catches any float nan
    (the only self-unequal value that can appear in a column); both are
    single elementwise passes instead of a Python-level loop.
    """
    with np.errstate(invalid="ignore"):
        return (values == None) | (values != values)  # noqa: E711
