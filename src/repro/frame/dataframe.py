"""A minimal column-store dataframe."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.frame.column import Column, ColumnKind

__all__ = ["DataFrame"]


class DataFrame:
    """An ordered collection of equal-length :class:`Column` objects.

    Supports exactly the operations COMET and its baselines need: column
    access and replacement, row selection, copying, and conversion of the
    label column into a numpy array. Construction accepts either columns or
    a mapping of name → values.

    Frames are copy-on-write: ``copy``/``select``/``drop``/``with_column``
    share untouched column storage with the source frame instead of
    deep-copying it, and the first in-place mutation of a shared column
    materializes private arrays (see :class:`Column`). Mutation through
    one frame is therefore never visible through another, while a
    polluted or cleaned frame that differs from its parent in one column
    costs one column — not one frame — of memory.
    """

    def __init__(self, columns: Iterable[Column] | Mapping[str, Iterable]) -> None:
        if isinstance(columns, Mapping):
            cols = []
            for name, values in columns.items():
                if isinstance(values, Column):
                    # Share, never deep-copy: renaming happens on the
                    # share, so the caller's column keeps its own name.
                    cols.append(values.share(name=name))
                else:
                    cols.append(Column(name, values))
        else:
            cols = list(columns)
        if not cols:
            raise ValueError("a DataFrame needs at least one column")
        lengths = {len(c) for c in cols}
        if len(lengths) != 1:
            raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = {c.name: c for c in cols}
        self._n_rows = lengths.pop()

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        return self._columns[name]

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns.values())

    def __repr__(self) -> str:
        return f"DataFrame({self.n_rows} rows x {self.n_columns} columns)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        return self.column_names == other.column_names and all(
            self[n] == other[n] for n in self.column_names
        )

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> list[str]:
        """Column names, in order."""
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_rows, n_columns)``."""
        return (self._n_rows, self.n_columns)

    def numeric_columns(self) -> list[str]:
        """Names of the numeric columns."""
        return [c.name for c in self if c.kind is ColumnKind.NUMERIC]

    def categorical_columns(self) -> list[str]:
        """Names of the categorical columns."""
        return [c.name for c in self if c.kind is ColumnKind.CATEGORICAL]

    # ------------------------------------------------------------------ #
    # selection and mutation
    # ------------------------------------------------------------------ #
    def select(self, names: Sequence[str]) -> "DataFrame":
        """Return a dataframe with only the given columns (COW shares)."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"unknown columns: {missing}")
        return DataFrame([self._columns[n].share() for n in names])

    def drop(self, names: Sequence[str] | str) -> "DataFrame":
        """Return a dataframe without the given columns (COW shares)."""
        if isinstance(names, str):
            names = [names]
        keep = [n for n in self.column_names if n not in set(names)]
        if len(keep) == self.n_columns:
            raise KeyError(f"none of {list(names)} are columns of this frame")
        return self.select(keep)

    def take(self, indices: Sequence[int] | np.ndarray) -> "DataFrame":
        """Return a dataframe with the given rows, in order (copied)."""
        idx = np.asarray(indices)
        return DataFrame([c.take(idx) for c in self])

    def copy(self) -> "DataFrame":
        """An independent frame (copy-on-write shares, O(columns)).

        Mutating either frame never affects the other; untouched columns
        keep sharing storage (and identity tokens) until first write.
        """
        return DataFrame([c.share() for c in self])

    def with_column(self, column: Column) -> "DataFrame":
        """Return a copy with ``column`` replacing or appending by name.

        The untouched sibling columns are shared, not copied — the new
        frame costs one column. ``column`` itself is adopted by
        reference; the caller hands over ownership.
        """
        if len(column) != self._n_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, frame has {self._n_rows}"
            )
        cols = [column if c.name == column.name else c.share() for c in self]
        if column.name not in self._columns:
            cols.append(column)
        return DataFrame(cols)

    def set_column(self, column: Column) -> None:
        """Replace or append ``column`` in place."""
        if len(column) != self._n_rows:
            raise ValueError(
                f"column {column.name!r} has {len(column)} rows, frame has {self._n_rows}"
            )
        self._columns[column.name] = column

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def label_array(self, label: str) -> np.ndarray:
        """Encode the label column as an int array of class indices."""
        col = self._columns[label]
        if col.n_missing:
            raise ValueError(f"label column {label!r} contains missing values")
        if col.is_numeric:
            values = col.values
            classes = np.unique(values)
            lookup = {v: i for i, v in enumerate(classes.tolist())}
            return np.array([lookup[v] for v in values.tolist()], dtype=int)
        classes = col.categories()
        lookup = {v: i for i, v in enumerate(classes)}
        return np.array([lookup[v] for v in col.values.tolist()], dtype=int)

    def to_dict(self) -> dict[str, list]:
        """Plain-python representation (used by the CSV writer and tests)."""
        out: dict[str, list] = {}
        for col in self:
            if col.is_numeric:
                out[col.name] = [
                    None if m else float(v) for v, m in zip(col.values, col.missing_mask)
                ]
            else:
                out[col.name] = list(col.values)
        return out
