"""CSV round-tripping for :class:`~repro.frame.DataFrame`.

The reader infers column kinds: a column whose non-empty cells all parse as
floats becomes numeric, everything else categorical. Empty cells and the
literal markers ``NA``/``NaN``/``null`` are read as missing.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.frame.column import Column, ColumnKind
from repro.frame.dataframe import DataFrame

__all__ = ["read_csv", "write_csv"]

_MISSING_MARKERS = {"", "na", "nan", "null", "none"}


def read_csv(path: str | Path) -> DataFrame:
    """Read a CSV file with a header row into a :class:`DataFrame`."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV file") from None
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path}: CSV file has a header but no rows")
    columns = []
    for j, name in enumerate(header):
        cells = [row[j] for row in rows]
        columns.append(_parse_column(name, cells))
    return DataFrame(columns)


def write_csv(frame: DataFrame, path: str | Path) -> None:
    """Write ``frame`` to ``path``; missing cells become empty strings."""
    data = frame.to_dict()
    names = frame.column_names
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for i in range(frame.n_rows):
            writer.writerow(["" if data[n][i] is None else data[n][i] for n in names])


def _parse_column(name: str, cells: list[str]) -> Column:
    parsed: list[float | None] = []
    numeric = True
    for cell in cells:
        if cell.strip().lower() in _MISSING_MARKERS:
            parsed.append(None)
            continue
        try:
            parsed.append(float(cell))
        except ValueError:
            numeric = False
            break
    if numeric and any(v is not None for v in parsed):
        values = np.array([np.nan if v is None else v for v in parsed], dtype=float)
        return Column(name, values, kind=ColumnKind.NUMERIC)
    values = [None if cell.strip().lower() in _MISSING_MARKERS else cell for cell in cells]
    return Column(name, np.array(values, dtype=object), kind=ColumnKind.CATEGORICAL)
