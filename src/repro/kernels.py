"""Kernel-mode switch for the pollute → detect → repair hot path.

The cleaning kernels — the §3.4 error injectors, the §4.2 detectors and
repairers, and the approximate-FD miner behind them — exist in two
implementations:

* ``"vectorized"`` (the default): numpy bulk operations over ``Column``
  storage. Rng-driven kernels consume the generator stream with bulk
  draws only where the stream is provably identical to the scalar-draw
  sequence (one ``rng.integers(bound, size=k)`` replaces ``k`` scalar
  draws *iff* the bound is constant across the k draws — numpy's bounded
  integers fill outputs sequentially from the bit stream, so the two
  spellings consume identically). Where the bound varies per row, draw
  order is kept and only the pure part is vectorized.
* ``"reference"``: the original row-at-a-time implementations, kept so
  equivalence is testable — ``tests/test_kernels_equivalence.py`` proves
  both modes produce bit-identical frames, detections, repairs, and
  session traces.

The switch is process-global (kernels are stateless; the mode only picks
an implementation, never changes results) and can be preset with the
``REPRO_KERNELS`` environment variable.
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["kernel_mode", "set_kernel_mode", "use_kernels", "KERNEL_MODES"]

KERNEL_MODES = ("vectorized", "reference")

_MODE = os.environ.get("REPRO_KERNELS", "vectorized")
if _MODE not in KERNEL_MODES:
    raise ValueError(
        f"REPRO_KERNELS must be one of {KERNEL_MODES}, got {_MODE!r}"
    )


def kernel_mode() -> str:
    """The active kernel implementation: ``"vectorized"`` or ``"reference"``."""
    return _MODE


def set_kernel_mode(mode: str) -> str:
    """Select the kernel implementation; returns the previous mode."""
    global _MODE
    if mode not in KERNEL_MODES:
        raise ValueError(f"kernel mode must be one of {KERNEL_MODES}, got {mode!r}")
    previous = _MODE
    _MODE = mode
    return previous


@contextlib.contextmanager
def use_kernels(mode: str):
    """Context manager pinning the kernel mode within a block."""
    previous = set_kernel_mode(mode)
    try:
        yield
    finally:
        set_kernel_mode(previous)
