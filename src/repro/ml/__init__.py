"""From-scratch machine-learning substrate.

scikit-learn is not available in the reproduction environment, so this
subpackage implements the learners the paper evaluates (SVM, KNN, MLP,
gradient boosting, logistic regression, linear regression), the metrics
(F1, accuracy, MAE), model selection (train/test split, random
hyperparameter search), and tabular preprocessing (imputation, scaling,
one-hot encoding) on top of numpy.
"""

from repro.ml.base import BaseEstimator, clone
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import (
    LinearRegression,
    LinearRegressionClassifier,
    LogisticRegression,
)
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    mean_absolute_error,
    precision_score,
    recall_score,
)
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import (
    KFold,
    RandomSearch,
    train_test_split,
)
from repro.ml.pipeline import TabularModel
from repro.ml.preprocessing import (
    OneHotEncoder,
    StandardScaler,
    TabularPreprocessor,
    clear_fit_cache,
    fit_cache_stats,
    signature_mode,
)
from repro.ml.registry import available_algorithms, make_classifier
from repro.ml.svm import LinearSVC

__all__ = [
    "BaseEstimator",
    "clone",
    "GradientBoostingClassifier",
    "KNeighborsClassifier",
    "LinearRegression",
    "LinearRegressionClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "LinearSVC",
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "mean_absolute_error",
    "precision_score",
    "recall_score",
    "KFold",
    "RandomSearch",
    "train_test_split",
    "OneHotEncoder",
    "StandardScaler",
    "TabularPreprocessor",
    "TabularModel",
    "clear_fit_cache",
    "fit_cache_stats",
    "signature_mode",
    "available_algorithms",
    "make_classifier",
]
