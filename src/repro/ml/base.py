"""Estimator protocol: parameters, cloning, and validation helpers."""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

__all__ = ["BaseEstimator", "clone", "check_X_y", "check_X"]


class BaseEstimator:
    """Base class with the sklearn-style parameter protocol.

    Subclasses must accept all hyperparameters as keyword arguments of
    ``__init__`` and store them under the same attribute names; fitted state
    uses a trailing underscore (``coef_`` etc.). That convention is what
    makes :func:`clone` and random hyperparameter search work generically.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, p in signature.parameters.items()
            if name != "self" and p.kind is not inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> dict[str, Any]:
        """Return the constructor hyperparameters of this estimator."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set constructor hyperparameters; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no hyperparameter {name!r}; valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def is_fitted(self) -> bool:
        """True once ``fit`` has produced trailing-underscore state."""
        return any(
            name.endswith("_") and not name.startswith("_") for name in vars(self)
        )


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with the same parameters."""
    return type(estimator)(**estimator.get_params())


def check_X(X: np.ndarray) -> np.ndarray:
    """Validate a 2-D float feature matrix without NaNs."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains NaN or infinity; impute before fitting")
    return X


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and an integer label vector together."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(X) != len(y):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y.astype(int)
