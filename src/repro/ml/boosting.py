"""Gradient boosting classification on CART regression trees."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X, check_X_y
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingClassifier", "GradientBoostingRegressor"]


class GradientBoostingRegressor(BaseEstimator):
    """Squared-loss gradient boosting on CART trees (for the §6
    regression-task extension of COMET)."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit on the given training data and return ``self``."""
        X = check_X(X)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.base_score_ = float(y.mean())
        residual = y - self.base_score_
        self.trees_: list[DecisionTreeRegressor] = []
        for __ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X, residual)
            update = tree.predict(X)
            residual -= self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        X = check_X(X)
        out = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out


class GradientBoostingClassifier(BaseEstimator):
    """Binomial-deviance gradient boosting; multiclass via one-vs-rest.

    Each stage fits a regression tree to the negative gradient of the
    logistic loss (``y − p``) and adds it with a shrinkage factor, the
    classic Friedman (2001) recipe the paper's GB configuration uses.

    Parameters
    ----------
    n_estimators:
        Boosting stages per binary problem.
    learning_rate:
        Shrinkage applied to each stage.
    max_depth:
        Depth of the stage trees.
    subsample:
        Row fraction sampled (without replacement) per stage; 1.0 disables
        stochastic boosting.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        min_samples_leaf: int = 1,
        random_state: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        """Fit on the given training data and return ``self``."""
        X, y = check_X_y(X, y)
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.random_state)
        self.ensembles_: list[tuple[float, list[DecisionTreeRegressor]]] = []
        binary_targets = (
            [np.where(y == self.classes_[1], 1.0, 0.0)]
            if len(self.classes_) == 2
            else [np.where(y == cls, 1.0, 0.0) for cls in self.classes_]
        )
        for target in binary_targets:
            self.ensembles_.append(self._fit_binary(X, target, rng))
        return self

    def _fit_binary(
        self, X: np.ndarray, target: np.ndarray, rng: np.random.Generator
    ) -> tuple[float, list[DecisionTreeRegressor]]:
        pos_rate = float(np.clip(target.mean(), 1e-6, 1.0 - 1e-6))
        base_score = float(np.log(pos_rate / (1.0 - pos_rate)))
        raw = np.full(len(X), base_score)
        trees: list[DecisionTreeRegressor] = []
        n = len(X)
        for __ in range(self.n_estimators):
            prob = _sigmoid(raw)
            residual = target - prob
            if self.subsample < 1.0:
                size = max(2 * self.min_samples_leaf, int(round(n * self.subsample)))
                idx = rng.choice(n, size=min(size, n), replace=False)
            else:
                idx = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X[idx], residual[idx])
            raw += self.learning_rate * tree.predict(X)
            trees.append(tree)
        return base_score, trees

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores (pre-argmax)."""
        X = check_X(X)
        scores = np.empty((len(X), len(self.ensembles_)))
        for j, (base_score, trees) in enumerate(self.ensembles_):
            raw = np.full(len(X), base_score)
            for tree in trees:
                raw += self.learning_rate * tree.predict(X)
            scores[:, j] = raw
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates; rows sum to one."""
        scores = self.decision_function(X)
        if len(self.classes_) == 2:
            p1 = _sigmoid(scores[:, 0])
            return np.column_stack([1.0 - p1, p1])
        probs = _sigmoid(scores)
        return probs / probs.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
