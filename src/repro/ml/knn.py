"""Brute-force k-nearest-neighbors classification."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X, check_X_y

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseEstimator):
    """Euclidean k-NN with majority voting (ties broken by class order).

    Parameters
    ----------
    n_neighbors:
        Number of neighbors consulted per query row (clamped to the
        training-set size at predict time).
    """

    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Fit on the given training data and return ``self``."""
        X, y = check_X_y(X, y)
        self.X_ = X
        self.y_ = y
        self.classes_ = np.unique(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates; rows sum to one."""
        X = check_X(X)
        k = min(self.n_neighbors, len(self.X_))
        lookup = {c: i for i, c in enumerate(self.classes_.tolist())}
        votes = np.zeros((len(X), len(self.classes_)))
        # Chunk queries so the pairwise distance matrix stays small.
        chunk = max(1, 2_000_000 // max(1, len(self.X_)))
        train_sq = np.sum(self.X_**2, axis=1)
        for start in range(0, len(X), chunk):
            q = X[start : start + chunk]
            d2 = np.sum(q**2, axis=1)[:, None] - 2.0 * q @ self.X_.T + train_sq[None, :]
            neighbor_idx = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            for row, idx in enumerate(neighbor_idx):
                for label in self.y_[idx].tolist():
                    votes[start + row, lookup[label]] += 1.0
        return votes / votes.sum(axis=1, keepdims=True)
