"""Linear models: ridge regression, logistic regression, and their
classification adapters.

These are also the convex learners ActiveClean requires (§4.5 of the paper
evaluates AC with SVM, linear regression — LIR — and logistic regression —
LOR), so they expose per-sample loss gradients through
``gradient_norms(X, y)``.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, check_X, check_X_y

__all__ = ["LinearRegression", "LinearRegressionClassifier", "LogisticRegression"]


class LinearRegression(BaseEstimator):
    """Ridge regression with a closed-form normal-equation solution."""

    def __init__(self, alpha: float = 1e-3) -> None:
        self.alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        """Fit on the given training data and return ``self``."""
        X = check_X(X)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        Xb = _add_bias(X)
        d = Xb.shape[1]
        reg = self.alpha * np.eye(d)
        reg[-1, -1] = 0.0  # do not penalize the bias
        self.coef_ = np.linalg.solve(Xb.T @ Xb + reg, Xb.T @ y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        X = check_X(X)
        out = _add_bias(X) @ self.coef_
        return out[:, 0] if out.shape[1] == 1 else out


class LinearRegressionClassifier(BaseEstimator):
    """Least-squares classification ("LIR" in the paper's AC comparison).

    Binary problems regress on the {0, 1} label and threshold at 0.5;
    multiclass problems fit one-vs-rest regressions and take the argmax.
    """

    def __init__(self, alpha: float = 1e-3) -> None:
        self.alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressionClassifier":
        """Fit on the given training data and return ``self``."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        Y = _one_hot(y, self.classes_)
        self._model_ = LinearRegression(alpha=self.alpha).fit(X, Y)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores (pre-argmax)."""
        scores = self._model_.predict(X)
        return scores if scores.ndim == 2 else scores[:, None]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def gradient_norms(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample squared-loss gradient norms (for ActiveClean)."""
        X, y = check_X_y(X, y)
        residual = self.decision_function(X) - _one_hot(y, self.classes_)
        row_norm = np.linalg.norm(_add_bias(X), axis=1)
        return np.linalg.norm(residual, axis=1) * row_norm

    def sgd_step(self, X: np.ndarray, y: np.ndarray, lr: float) -> None:
        """One batch gradient step on the squared loss (ActiveClean update)."""
        X, y = check_X_y(X, y)
        Xb = _add_bias(X)
        residual = Xb @ self._model_.coef_ - _one_hot(y, self.classes_)
        grad = Xb.T @ residual / len(X)
        self._model_.coef_ -= lr * grad


class LogisticRegression(BaseEstimator):
    """Multinomial logistic regression trained with L-BFGS.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = weaker L2 penalty).
    max_iter:
        L-BFGS iteration cap.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        self.C = C
        self.max_iter = max_iter

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on the given training data and return ``self``."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n, d = X.shape
        k = len(self.classes_)
        Xb = _add_bias(X)
        Y = _one_hot(y, self.classes_)
        lam = 1.0 / (self.C * n)

        def objective(w_flat: np.ndarray) -> tuple[float, np.ndarray]:
            W = w_flat.reshape(d + 1, k)
            probs = _softmax(Xb @ W)
            nll = -np.sum(Y * np.log(probs + 1e-12)) / n
            penalty = 0.5 * lam * np.sum(W[:-1] ** 2)
            grad = Xb.T @ (probs - Y) / n
            grad[:-1] += lam * W[:-1]
            return nll + penalty, grad.ravel()

        w0 = np.zeros((d + 1) * k)
        result = optimize.minimize(
            objective, w0, jac=True, method="L-BFGS-B", options={"maxiter": self.max_iter}
        )
        self.coef_ = result.x.reshape(d + 1, k)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates; rows sum to one."""
        X = check_X(X)
        return _softmax(_add_bias(X) @ self.coef_)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores (pre-argmax)."""
        X = check_X(X)
        return _add_bias(X) @ self.coef_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def gradient_norms(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample NLL gradient norms (for ActiveClean)."""
        X, y = check_X_y(X, y)
        probs = self.predict_proba(X)
        residual = probs - _one_hot(y, self.classes_)
        row_norm = np.linalg.norm(_add_bias(X), axis=1)
        return np.linalg.norm(residual, axis=1) * row_norm

    def sgd_step(self, X: np.ndarray, y: np.ndarray, lr: float) -> None:
        """One batch gradient step on the NLL (ActiveClean update)."""
        X, y = check_X_y(X, y)
        Xb = _add_bias(X)
        probs = _softmax(Xb @ self.coef_)
        grad = Xb.T @ (probs - _one_hot(y, self.classes_)) / len(X)
        self.coef_ -= lr * grad


def _add_bias(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((len(X), 1))])


def _one_hot(y: np.ndarray, classes: np.ndarray) -> np.ndarray:
    lookup = {c: i for i, c in enumerate(classes.tolist())}
    out = np.zeros((len(y), len(classes)))
    for i, label in enumerate(y.tolist()):
        out[i, lookup[label]] = 1.0
    return out


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
