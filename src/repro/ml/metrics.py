"""Classification and regression metrics.

The paper reports the F1 score throughout ("prediction accuracy" refers to
F1 in all experiments) and uses the mean absolute error for the Estimator
accuracy analysis (Figure 11).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "f1_score",
    "mean_absolute_error",
    "r2_score",
]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("metrics are undefined on empty inputs")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = #samples with true class i predicted as j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    labels = np.union1d(np.unique(y_true), np.unique(y_pred)).astype(int)
    if n_classes is None:
        n_classes = int(labels.max()) + 1 if labels.size else 0
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(matrix, (y_true.astype(int), y_pred.astype(int)), 1)
    return matrix


def precision_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Binary precision for the ``positive`` class; 0 when nothing predicted."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    predicted = y_pred == positive
    if not predicted.any():
        return 0.0
    return float(np.mean(y_true[predicted] == positive))


def recall_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Binary recall for the ``positive`` class; 0 when class absent."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    actual = y_true == positive
    if not actual.any():
        return 0.0
    return float(np.mean(y_pred[actual] == positive))


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "auto") -> float:
    """F1 score.

    ``average='binary'`` computes the positive-class (label 1) F1;
    ``'macro'`` averages per-class F1 over the classes present in
    ``y_true``; the default ``'auto'`` picks binary for exactly-two-class
    problems and macro otherwise (including the degenerate single-class
    case), matching how the paper reports F1 across both its binary and its
    three-class (CMC) tasks.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    classes = np.unique(y_true)
    if average == "auto":
        if classes.size == 2:
            # Positive class = the larger of the two labels present, so
            # {0, 1} → 1 and label encodings like {0, 2} still work.
            return _binary_f1(y_true, y_pred, positive=int(classes[1]))
        average = "macro"
    if average == "binary":
        return _binary_f1(y_true, y_pred, positive=1)
    if average == "macro":
        scores = [_binary_f1(y_true, y_pred, positive=int(c)) for c in classes]
        return float(np.mean(scores))
    raise ValueError(f"unknown average {average!r}; use 'auto', 'binary' or 'macro'")


def _binary_f1(y_true: np.ndarray, y_pred: np.ndarray, positive: int) -> float:
    precision = precision_score(y_true, y_pred, positive=positive)
    recall = recall_score(y_true, y_pred, positive=positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute deviation between two real-valued vectors."""
    y_true, y_pred = _check_pair(np.asarray(y_true, float), np.asarray(y_pred, float))
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 − SSE/SST).

    The regression counterpart of the F1 score in COMET's regression-task
    extension (§6); a constant-target degenerate case scores 0 for exact
    predictions and is unbounded below otherwise, like sklearn's.
    """
    y_true, y_pred = _check_pair(np.asarray(y_true, float), np.asarray(y_pred, float))
    sse = float(np.sum((y_true - y_pred) ** 2))
    sst = float(np.sum((y_true - y_true.mean()) ** 2))
    if sst == 0.0:
        return 0.0 if sse > 0.0 else 1.0
    return 1.0 - sse / sst
