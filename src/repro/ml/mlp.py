"""Multi-layer perceptron classification (ReLU hidden layers, softmax
output, Adam optimizer)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X, check_X_y

__all__ = ["MLPClassifier"]


class MLPClassifier(BaseEstimator):
    """A small feed-forward network trained with mini-batch Adam.

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers.
    learning_rate:
        Adam step size.
    max_epochs:
        Upper bound on passes over the training data.
    batch_size:
        Mini-batch size (clamped to the dataset size).
    alpha:
        L2 penalty on the weights.
    tol / patience:
        Training stops early when the epoch loss fails to improve by
        ``tol`` for ``patience`` consecutive epochs.
    """

    def __init__(
        self,
        hidden_sizes: tuple = (32,),
        learning_rate: float = 1e-2,
        max_epochs: int = 120,
        batch_size: int = 64,
        alpha: float = 1e-4,
        tol: float = 1e-4,
        patience: int = 8,
        random_state: int = 0,
    ) -> None:
        self.hidden_sizes = hidden_sizes
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.alpha = alpha
        self.tol = tol
        self.patience = patience
        self.random_state = random_state

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        """Fit on the given training data and return ``self``."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        k = len(self.classes_)
        sizes = [d, *list(self.hidden_sizes), k]
        self.weights_ = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        Y = np.zeros((n, k))
        lookup = {c: i for i, c in enumerate(self.classes_.tolist())}
        for i, label in enumerate(y.tolist()):
            Y[i, lookup[label]] = 1.0

        m = [np.zeros_like(w) for w in self.weights_] + [np.zeros_like(b) for b in self.biases_]
        v = [np.zeros_like(w) for w in self.weights_] + [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n)
        best_loss = np.inf
        stall = 0
        for __ in range(self.max_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                loss, grads = self._backprop(X[idx], Y[idx])
                epoch_loss += loss * len(idx)
                step += 1
                for slot, grad in enumerate(grads):
                    m[slot] = beta1 * m[slot] + (1 - beta1) * grad
                    v[slot] = beta2 * v[slot] + (1 - beta2) * grad**2
                    m_hat = m[slot] / (1 - beta1**step)
                    v_hat = v[slot] / (1 - beta2**step)
                    update = self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                    if slot < len(self.weights_):
                        self.weights_[slot] -= update
                    else:
                        self.biases_[slot - len(self.weights_)] -= update
            epoch_loss /= n
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break
        return self

    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        activations = [X]
        for layer, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = activations[-1] @ W + b
            if layer < len(self.weights_) - 1:
                z = np.maximum(z, 0.0)
            activations.append(z)
        return activations

    def _backprop(self, X: np.ndarray, Y: np.ndarray) -> tuple[float, list[np.ndarray]]:
        activations = self._forward(X)
        probs = _softmax(activations[-1])
        n = len(X)
        loss = -np.sum(Y * np.log(probs + 1e-12)) / n
        loss += 0.5 * self.alpha * sum(np.sum(w**2) for w in self.weights_)
        delta = (probs - Y) / n
        w_grads: list[np.ndarray] = [None] * len(self.weights_)  # type: ignore[list-item]
        b_grads: list[np.ndarray] = [None] * len(self.biases_)  # type: ignore[list-item]
        for layer in range(len(self.weights_) - 1, -1, -1):
            w_grads[layer] = activations[layer].T @ delta + self.alpha * self.weights_[layer]
            b_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * (activations[layer] > 0.0)
        return loss, w_grads + b_grads

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates; rows sum to one."""
        X = check_X(X)
        return _softmax(self._forward(X)[-1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
