"""Train/test splitting, cross-validation folds, and random search.

The paper performs a 10-sample random hyperparameter optimization per
configuration and pre-pollution setting (§4.4); :class:`RandomSearch`
reproduces that protocol with an explicit seed.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, clone

__all__ = ["train_test_split", "KFold", "RandomSearch"]


def train_test_split(
    n_rows: int,
    test_size: float = 0.2,
    rng: np.random.Generator | int | None = None,
    stratify: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_indices, test_indices) for a dataset of ``n_rows``.

    With ``stratify`` given (an int label vector), each class contributes
    proportionally to the test set, which keeps F1 stable on the imbalanced
    datasets (Churn, Credit).
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    if n_rows < 2:
        raise ValueError("need at least two rows to split")
    rng = np.random.default_rng(rng)
    if stratify is None:
        order = rng.permutation(n_rows)
        n_test = max(1, int(round(n_rows * test_size)))
        return np.sort(order[n_test:]), np.sort(order[:n_test])
    stratify = np.asarray(stratify)
    if len(stratify) != n_rows:
        raise ValueError("stratify vector length must equal n_rows")
    test_parts = []
    for cls in np.unique(stratify):
        members = np.flatnonzero(stratify == cls)
        members = rng.permutation(members)
        n_test = max(1, int(round(len(members) * test_size)))
        test_parts.append(members[:n_test])
    test_idx = np.sort(np.concatenate(test_parts))
    mask = np.ones(n_rows, dtype=bool)
    mask[test_idx] = False
    return np.flatnonzero(mask), test_idx


class KFold:
    """Shuffled k-fold index generator."""

    def __init__(self, n_splits: int = 5, rng: np.random.Generator | int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self._rng = np.random.default_rng(rng)

    def split(self, n_rows: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) per fold."""
        if n_rows < self.n_splits:
            raise ValueError(f"cannot split {n_rows} rows into {self.n_splits} folds")
        order = self._rng.permutation(n_rows)
        folds = np.array_split(order, self.n_splits)
        for i in range(self.n_splits):
            test = np.sort(folds[i])
            train = np.sort(np.concatenate([f for j, f in enumerate(folds) if j != i]))
            yield train, test


class RandomSearch:
    """Random hyperparameter search with a holdout validation split.

    Parameters
    ----------
    estimator:
        Template estimator; each candidate is a :func:`clone` with sampled
        parameters.
    param_distributions:
        Mapping of parameter name → list of candidate values (sampled
        uniformly) or a callable ``rng -> value``.
    n_iter:
        Number of sampled candidates (the paper uses 10).
    scorer:
        ``scorer(estimator, X, y) -> float``; higher is better.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_distributions: Mapping[str, Sequence | Callable],
        n_iter: int = 10,
        scorer: Callable | None = None,
        validation_size: float = 0.25,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.estimator = estimator
        self.param_distributions = dict(param_distributions)
        self.n_iter = n_iter
        self.scorer = scorer or _default_scorer
        self.validation_size = validation_size
        self._rng = np.random.default_rng(rng)
        self.best_params_: dict | None = None
        self.best_score_: float = -np.inf
        self.best_estimator_: BaseEstimator | None = None

    def _sample_params(self) -> dict:
        params = {}
        for name, dist in self.param_distributions.items():
            if callable(dist):
                params[name] = dist(self._rng)
            else:
                params[name] = dist[self._rng.integers(len(dist))]
        return params

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomSearch":
        """Evaluate candidates on a holdout split, refit the winner on all data."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        train_idx, val_idx = train_test_split(
            len(X), test_size=self.validation_size, rng=self._rng, stratify=y
        )
        seen: set[tuple] = set()
        for __ in range(self.n_iter):
            params = self._sample_params()
            key = tuple(sorted((k, repr(v)) for k, v in params.items()))
            if key in seen:
                continue
            seen.add(key)
            candidate = clone(self.estimator).set_params(**params)
            candidate.fit(X[train_idx], y[train_idx])
            score = self.scorer(candidate, X[val_idx], y[val_idx])
            if score > self.best_score_:
                self.best_score_ = score
                self.best_params_ = params
        if self.best_params_ is None:
            self.best_params_ = {}
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y)
        return self


def _default_scorer(estimator: BaseEstimator, X: np.ndarray, y: np.ndarray) -> float:
    from repro.ml.metrics import f1_score

    return f1_score(y, estimator.predict(X))
