"""End-to-end tabular model: preprocessing + classifier behind one call.

COMET repeatedly evaluates "train on this (possibly polluted) frame, score
F1 on that frame"; :class:`TabularModel` packages that loop body.
"""

from __future__ import annotations

import numpy as np

from repro.frame import DataFrame
from repro.ml.base import BaseEstimator, clone
from repro.ml.metrics import f1_score, r2_score
from repro.ml.preprocessing import TabularPreprocessor

__all__ = ["TabularModel"]


class TabularModel:
    """Fit a model on a :class:`DataFrame` and score another.

    Parameters
    ----------
    estimator:
        Unfitted estimator template (cloned on every ``fit``).
    label:
        Name of the label column.
    feature_names:
        Feature columns; defaults to all non-label columns of the frame
        passed to ``fit``.
    task:
        ``"classification"`` (F1 score, integer-encoded labels — the
        paper's setting) or ``"regression"`` (R², raw float targets — the
        §6 extension).
    preprocessor:
        Optional pre-fit :class:`TabularPreprocessor` to reuse as-is —
        ``fit`` then skips featurization fitting entirely (the caller
        vouches that the fitted statistics match the training frame, e.g.
        repeated refits on the same data state). An unfitted instance is
        fit once on the first training frame and reused afterwards.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        label: str,
        feature_names: list[str] | None = None,
        task: str = "classification",
        preprocessor: TabularPreprocessor | None = None,
    ) -> None:
        if task not in ("classification", "regression"):
            raise ValueError(f"unknown task {task!r}")
        self.estimator = estimator
        self.label = label
        self.feature_names = feature_names
        self.task = task
        self.preprocessor = preprocessor

    def _targets(self, frame: DataFrame) -> np.ndarray:
        if self.task == "classification":
            return frame.label_array(self.label)
        column = frame[self.label]
        if not column.is_numeric:
            raise ValueError(f"regression label {self.label!r} must be numeric")
        if column.n_missing:
            raise ValueError(f"label column {self.label!r} contains missing values")
        return column.values.astype(float)

    def fit(self, frame: DataFrame) -> "TabularModel":
        """Fit on the given training data and return ``self``."""
        if self.preprocessor is not None:
            if not hasattr(self.preprocessor, "encoder_"):
                self.preprocessor.fit(frame)
            self.features_ = list(self.preprocessor.feature_names)
            self.preprocessor_ = self.preprocessor
        else:
            features = self.feature_names or [
                n for n in frame.column_names if n != self.label
            ]
            self.features_ = list(features)
            self.preprocessor_ = TabularPreprocessor(self.features_).fit(frame)
        X = self.preprocessor_.transform(frame)
        y = self._targets(frame)
        self.model_ = clone(self.estimator)
        self.model_.fit(X, y)
        return self

    def predict(self, frame: DataFrame) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        X = self.preprocessor_.transform(frame)
        return self.model_.predict(X)

    def score(self, frame: DataFrame) -> float:
        """Task metric on ``frame``: F1 (classification) or R² (regression)."""
        y_true = self._targets(frame)
        if self.task == "classification":
            return f1_score(y_true, self.predict(frame))
        return r2_score(y_true, self.predict(frame))

    def score_f1(self, frame: DataFrame) -> float:
        """Macro/binary F1 of the fitted model on ``frame``."""
        y_true = frame.label_array(self.label)
        return f1_score(y_true, self.predict(frame))

    def fit_score(self, train: DataFrame, test: DataFrame) -> float:
        """Train on ``train``, return the task metric on ``test``
        (the COMET loop body)."""
        return self.fit(train).score(test)
