"""Tabular preprocessing: imputation, scaling, one-hot encoding.

The Polluter injects missing values and the learners require finite
matrices, so the preprocessing stage is where dirty cells become model
inputs: numeric missing cells are mean-imputed (the train mean), while
categorical missing cells become an explicit ``<missing>`` category —
mirroring how placeholder values behave in the paper's pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.frame import Column, DataFrame

__all__ = ["StandardScaler", "OneHotEncoder", "TabularPreprocessor"]


class StandardScaler:
    """Zero-mean unit-variance scaling; constant columns stay at zero."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Fit on the given training data and return ``self``."""
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Transform the input using the fitted state."""
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"fitted on {self.mean_.shape[0]} columns, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encoding of object columns; unseen categories encode to zeros."""

    def fit(self, columns: list[np.ndarray]) -> "OneHotEncoder":
        """Fit on the given training data and return ``self``."""
        self.categories_: list[list] = []
        for values in columns:
            present = [v for v in values.tolist() if v is not None]
            self.categories_.append(sorted(set(present), key=str))
        return self

    def transform(self, columns: list[np.ndarray]) -> np.ndarray:
        """Transform the input using the fitted state."""
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"fitted on {len(self.categories_)} columns, got {len(columns)}"
            )
        blocks = []
        for values, cats in zip(columns, self.categories_):
            lookup = {c: i for i, c in enumerate(cats)}
            block = np.zeros((len(values), len(cats)))
            for row, value in enumerate(values.tolist()):
                j = lookup.get(value)
                if j is not None:
                    block[row, j] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((0, 0))
        return np.hstack(blocks)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        return sum(len(c) for c in self.categories_)


_MISSING_CATEGORY = "<missing>"


class TabularPreprocessor:
    """DataFrame → float matrix: impute, scale numerics, one-hot categoricals.

    Fit on the training frame only and reuse for the test frame so that no
    statistics leak across the split. The feature order of the output matrix
    is: scaled numeric columns (frame order), then one-hot blocks (frame
    order).

    Parameters
    ----------
    feature_names:
        Columns to encode, in order. The label column must not be included.
    """

    def __init__(self, feature_names: list[str]) -> None:
        if not feature_names:
            raise ValueError("need at least one feature column")
        self.feature_names = list(feature_names)

    def fit(self, frame: DataFrame) -> "TabularPreprocessor":
        """Fit on the given training data and return ``self``."""
        self.numeric_names_ = [
            n for n in self.feature_names if frame[n].is_numeric
        ]
        self.categorical_names_ = [
            n for n in self.feature_names if frame[n].is_categorical
        ]
        self.numeric_means_ = {}
        for name in self.numeric_names_:
            col = frame[name]
            present = col.values[~col.missing_mask]
            present = present[np.isfinite(present)]
            self.numeric_means_[name] = float(present.mean()) if present.size else 0.0
        numeric = self._numeric_matrix(frame)
        self.scaler_ = StandardScaler().fit(numeric) if self.numeric_names_ else None
        self.encoder_ = OneHotEncoder().fit(
            [self._categorical_values(frame, n) for n in self.categorical_names_]
        )
        return self

    def transform(self, frame: DataFrame) -> np.ndarray:
        """Transform the input using the fitted state."""
        parts = []
        if self.numeric_names_:
            parts.append(self.scaler_.transform(self._numeric_matrix(frame)))
        if self.categorical_names_:
            parts.append(
                self.encoder_.transform(
                    [self._categorical_values(frame, n) for n in self.categorical_names_]
                )
            )
        if not parts:
            raise ValueError("no feature columns to transform")
        return np.hstack(parts)

    def fit_transform(self, frame: DataFrame) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(frame).transform(frame)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        n = len(self.numeric_names_)
        if self.categorical_names_:
            n += self.encoder_.n_output_features()
        return n

    # ------------------------------------------------------------------ #
    def _numeric_matrix(self, frame: DataFrame) -> np.ndarray:
        if not self.numeric_names_:
            return np.zeros((frame.n_rows, 0))
        cols = []
        for name in self.numeric_names_:
            col = frame[name]
            values = col.values.copy()
            values[col.missing_mask] = self.numeric_means_[name]
            # Guard against non-finite dirty cells (e.g. inf from scaling
            # errors compounding); clamp to the imputation value.
            bad = ~np.isfinite(values)
            values[bad] = self.numeric_means_[name]
            cols.append(values)
        return np.column_stack(cols)

    @staticmethod
    def _categorical_values(frame: DataFrame, name: str) -> np.ndarray:
        col = frame[name]
        values = col.values.copy()
        values[col.missing_mask] = _MISSING_CATEGORY
        return values
