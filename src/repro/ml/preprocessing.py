"""Tabular preprocessing: imputation, scaling, one-hot encoding.

The Polluter injects missing values and the learners require finite
matrices, so the preprocessing stage is where dirty cells become model
inputs: numeric missing cells are mean-imputed (the train mean), while
categorical missing cells become an explicit ``<missing>`` category —
mirroring how placeholder values behave in the paper's pipeline.

Fitting is per-column and memoized: the E1 sweep refits the preprocessor
on data states that differ from the base frame in exactly one polluted
column, so the fit statistics of every *other* numeric column are
content-hashed and served from a bounded process-wide cache instead of
being recomputed per pollution state (categorical category sets are
cheaper to recompute than to digest robustly, so they skip the cache).
Cache hits return the same values a recomputation would (the key is a
digest of the column's bytes), so caching never changes results — see
``repro.runtime`` for the determinism contract.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.frame import Column, DataFrame

__all__ = [
    "StandardScaler",
    "OneHotEncoder",
    "TabularPreprocessor",
    "clear_fit_cache",
    "fit_cache_stats",
]


class StandardScaler:
    """Zero-mean unit-variance scaling; constant columns stay at zero."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Fit on the given training data and return ``self``."""
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Transform the input using the fitted state."""
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"fitted on {self.mean_.shape[0]} columns, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encoding of object columns; unseen categories encode to zeros."""

    def fit(self, columns: list[np.ndarray]) -> "OneHotEncoder":
        """Fit on the given training data and return ``self``."""
        self.categories_: list[list] = []
        for values in columns:
            present = [v for v in values.tolist() if v is not None]
            self.categories_.append(sorted(set(present), key=str))
        return self

    def transform(self, columns: list[np.ndarray]) -> np.ndarray:
        """Transform the input using the fitted state."""
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"fitted on {len(self.categories_)} columns, got {len(columns)}"
            )
        blocks = []
        for values, cats in zip(columns, self.categories_):
            lookup = {c: i for i, c in enumerate(cats)}
            block = np.zeros((len(values), len(cats)))
            for row, value in enumerate(values.tolist()):
                j = lookup.get(value)
                if j is not None:
                    block[row, j] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((0, 0))
        return np.hstack(blocks)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        return sum(len(c) for c in self.categories_)


_MISSING_CATEGORY = "<missing>"

# ---------------------------------------------------------------------- #
# fit-signature cache
# ---------------------------------------------------------------------- #
#: column-content digest → per-column fit statistics (immutable tuples).
_FIT_CACHE: OrderedDict[bytes, tuple] = OrderedDict()
_FIT_CACHE_MAX = 1024
_FIT_CACHE_LOCK = threading.Lock()
_FIT_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_fit_cache() -> None:
    """Drop all memoized per-column fit statistics and reset counters."""
    with _FIT_CACHE_LOCK:
        _FIT_CACHE.clear()
        _FIT_CACHE_STATS["hits"] = 0
        _FIT_CACHE_STATS["misses"] = 0


def fit_cache_stats() -> dict[str, int]:
    """Current hit/miss counters of the featurization cache."""
    with _FIT_CACHE_LOCK:
        return dict(_FIT_CACHE_STATS)


def _column_signature(column: Column) -> bytes:
    """Content digest of a numeric column: values, missing mask, length.

    Only numeric columns are digested: their ``tobytes`` serialization is
    vectorized and injective, so hashing costs one memory pass. A robust
    digest of an object column would cost more than the category-set
    computation it memoizes, so categorical fits skip the cache entirely.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(b"num\x00")
    h.update(column.values.tobytes())
    h.update(column.missing_mask.tobytes())
    h.update(len(column).to_bytes(8, "little"))
    return h.digest()


def _cached_column_fit(column: Column, compute) -> tuple:
    """Serve ``compute(column)`` from the cache, keyed by content digest."""
    key = _column_signature(column)
    with _FIT_CACHE_LOCK:
        cached = _FIT_CACHE.get(key)
        if cached is not None:
            _FIT_CACHE.move_to_end(key)
            _FIT_CACHE_STATS["hits"] += 1
            return cached
        _FIT_CACHE_STATS["misses"] += 1
    stats = compute(column)
    with _FIT_CACHE_LOCK:
        _FIT_CACHE[key] = stats
        _FIT_CACHE.move_to_end(key)
        while len(_FIT_CACHE) > _FIT_CACHE_MAX:
            _FIT_CACHE.popitem(last=False)
    return stats


def _fit_numeric_column(column: Column) -> tuple[float, float, float]:
    """(imputation mean, scaler mean, scaler std) for one numeric column."""
    values = column.values
    present = values[~column.missing_mask]
    present = present[np.isfinite(present)]
    impute = float(present.mean()) if present.size else 0.0
    filled = values.copy()
    filled[~np.isfinite(filled)] = impute
    std = float(filled.std())
    return impute, float(filled.mean()), std if std != 0.0 else 1.0


def _fit_categorical_column(column: Column) -> tuple:
    """Sorted category tuple (with ``<missing>``) for one object column."""
    values = column.values[~column.missing_mask]
    present = set(values.tolist())
    if column.n_missing:
        present.add(_MISSING_CATEGORY)
    return tuple(sorted(present, key=str))


class TabularPreprocessor:
    """DataFrame → float matrix: impute, scale numerics, one-hot categoricals.

    Fit on the training frame only and reuse for the test frame so that no
    statistics leak across the split. The feature order of the output matrix
    is: scaled numeric columns (frame order), then one-hot blocks (frame
    order).

    Parameters
    ----------
    feature_names:
        Columns to encode, in order. The label column must not be included.
    cache:
        Serve numeric per-column fit statistics from the process-wide
        fit-signature cache (default). Disable to force recomputation;
        the fitted state is identical either way.
    """

    def __init__(self, feature_names: list[str], cache: bool = True) -> None:
        if not feature_names:
            raise ValueError("need at least one feature column")
        self.feature_names = list(feature_names)
        self.cache = cache

    def _column_fit(self, column: Column, compute) -> tuple:
        if self.cache:
            return _cached_column_fit(column, compute)
        return compute(column)

    def fit(self, frame: DataFrame) -> "TabularPreprocessor":
        """Fit on the given training data and return ``self``."""
        self.numeric_names_ = [
            n for n in self.feature_names if frame[n].is_numeric
        ]
        self.categorical_names_ = [
            n for n in self.feature_names if frame[n].is_categorical
        ]
        self.numeric_means_ = {}
        scale_means, scale_stds = [], []
        for name in self.numeric_names_:
            impute, mean, std = self._column_fit(frame[name], _fit_numeric_column)
            self.numeric_means_[name] = impute
            scale_means.append(mean)
            scale_stds.append(std)
        if self.numeric_names_:
            self.scaler_ = StandardScaler()
            self.scaler_.mean_ = np.asarray(scale_means)
            self.scaler_.scale_ = np.asarray(scale_stds)
        else:
            self.scaler_ = None
        self.encoder_ = OneHotEncoder()
        self.encoder_.categories_ = [
            list(_fit_categorical_column(frame[n]))
            for n in self.categorical_names_
        ]
        return self

    def transform(self, frame: DataFrame) -> np.ndarray:
        """Transform the input using the fitted state."""
        parts = []
        if self.numeric_names_:
            parts.append(self.scaler_.transform(self._numeric_matrix(frame)))
        if self.categorical_names_:
            parts.append(
                self.encoder_.transform(
                    [self._categorical_values(frame, n) for n in self.categorical_names_]
                )
            )
        if not parts:
            raise ValueError("no feature columns to transform")
        return np.hstack(parts)

    def fit_transform(self, frame: DataFrame) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(frame).transform(frame)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        n = len(self.numeric_names_)
        if self.categorical_names_:
            n += self.encoder_.n_output_features()
        return n

    # ------------------------------------------------------------------ #
    def _numeric_matrix(self, frame: DataFrame) -> np.ndarray:
        if not self.numeric_names_:
            return np.zeros((frame.n_rows, 0))
        cols = []
        for name in self.numeric_names_:
            col = frame[name]
            values = col.values.copy()
            values[col.missing_mask] = self.numeric_means_[name]
            # Guard against non-finite dirty cells (e.g. inf from scaling
            # errors compounding); clamp to the imputation value.
            bad = ~np.isfinite(values)
            values[bad] = self.numeric_means_[name]
            cols.append(values)
        return np.column_stack(cols)

    @staticmethod
    def _categorical_values(frame: DataFrame, name: str) -> np.ndarray:
        col = frame[name]
        values = col.values.copy()
        values[col.missing_mask] = _MISSING_CATEGORY
        return values
