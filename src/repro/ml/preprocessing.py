"""Tabular preprocessing: imputation, scaling, one-hot encoding.

The Polluter injects missing values and the learners require finite
matrices, so the preprocessing stage is where dirty cells become model
inputs: numeric missing cells are mean-imputed (the train mean), while
categorical missing cells become an explicit ``<missing>`` category —
mirroring how placeholder values behave in the paper's pipeline.

Fitting and transforming are memoized on column *identity tokens* (see
:mod:`repro.frame`): frames in the E1 sweep differ from the base frame in
exactly one polluted column and share the rest, so a signature is an O(1)
token comparison instead of an O(n) content digest. That makes the cache
worthwhile for categorical columns too, and cheap enough to extend to
whole transformed feature matrices, keyed by the tuple of column tokens —
a repeated fit over an unchanged frame skips featurization entirely.
A content digest remains as a fallback for externally constructed numeric
arrays (and as the measurable pre-token baseline, via
:func:`signature_mode`). Cache hits return the same values a
recomputation would — tokens change on every mutation — so caching never
changes results; see ``repro.runtime`` for the determinism contract.
"""

from __future__ import annotations

import contextlib
import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.frame import Column, DataFrame

__all__ = [
    "StandardScaler",
    "OneHotEncoder",
    "TabularPreprocessor",
    "clear_fit_cache",
    "fit_cache_stats",
    "signature_mode",
]


class StandardScaler:
    """Zero-mean unit-variance scaling; constant columns stay at zero."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Fit on the given training data and return ``self``."""
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Transform the input using the fitted state."""
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"fitted on {self.mean_.shape[0]} columns, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encoding of object columns; unseen categories encode to zeros."""

    def fit(self, columns: list[np.ndarray]) -> "OneHotEncoder":
        """Fit on the given training data and return ``self``."""
        self.categories_: list[list] = []
        for values in columns:
            present = [v for v in values.tolist() if v is not None]
            self.categories_.append(sorted(set(present), key=str))
        return self

    def transform(self, columns: list[np.ndarray]) -> np.ndarray:
        """Transform the input using the fitted state."""
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"fitted on {len(self.categories_)} columns, got {len(columns)}"
            )
        blocks = []
        for values, cats in zip(columns, self.categories_):
            lookup = {c: i for i, c in enumerate(cats)}
            block = np.zeros((len(values), len(cats)))
            for row, value in enumerate(values.tolist()):
                j = lookup.get(value)
                if j is not None:
                    block[row, j] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((0, 0))
        return np.hstack(blocks)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        return sum(len(c) for c in self.categories_)


_MISSING_CATEGORY = "<missing>"

# ---------------------------------------------------------------------- #
# fit-signature and transformed-matrix caches
# ---------------------------------------------------------------------- #
#: column signature → per-column fit statistics (immutable tuples).
_FIT_CACHE: OrderedDict[bytes, tuple] = OrderedDict()
_FIT_CACHE_MAX = 2048
#: (fit signatures, input signatures) → read-only transformed matrix.
_TRANSFORM_CACHE: OrderedDict[tuple, np.ndarray] = OrderedDict()
_TRANSFORM_CACHE_MAX = 128
#: Bounds so a service holding many sessions cannot hoard matrices.
_TRANSFORM_CACHE_MAX_BYTES = 64 * 1024 * 1024
_TRANSFORM_ENTRY_MAX_BYTES = 16 * 1024 * 1024
_TRANSFORM_CACHE_BYTES = 0
_CACHE_LOCK = threading.Lock()


def _zero_stats() -> dict[str, int]:
    return {"hits": 0, "misses": 0, "transform_hits": 0, "transform_misses": 0}


_CACHE_STATS = _zero_stats()

#: ``"token"`` (O(1) identity signatures) or ``"digest"`` (the pre-COW
#: content-hash baseline: numeric columns only, no transform memo).
_SIGNATURE_MODE = "token"


@contextlib.contextmanager
def signature_mode(mode: str):
    """Temporarily select how column signatures are computed.

    ``"token"`` is the production mode. ``"digest"`` reproduces the
    digest-based baseline so benchmarks can measure what the token layer
    buys; both caches are cleared on entry and exit so modes never mix.
    """
    global _SIGNATURE_MODE
    if mode not in ("token", "digest"):
        raise ValueError(f"unknown signature mode {mode!r}")
    previous = _SIGNATURE_MODE
    clear_fit_cache()
    _SIGNATURE_MODE = mode
    try:
        yield
    finally:
        _SIGNATURE_MODE = previous
        clear_fit_cache()


def clear_fit_cache() -> None:
    """Drop all memoized featurization state and reset the counters."""
    global _TRANSFORM_CACHE_BYTES
    with _CACHE_LOCK:
        _FIT_CACHE.clear()
        _TRANSFORM_CACHE.clear()
        _TRANSFORM_CACHE_BYTES = 0
        for key in _CACHE_STATS:
            _CACHE_STATS[key] = 0


def fit_cache_stats(reset: bool = False) -> dict[str, int]:
    """Process-wide hit/miss counters of the featurization caches.

    ``hits``/``misses`` count per-column fit lookups (numeric and
    categorical); ``transform_hits``/``transform_misses`` count whole
    transformed-matrix lookups. ``reset=True`` zeroes the counters after
    reading — benchmark figures use that to report per-phase hit rates
    instead of process-lifetime aggregates (per-instance numbers live on
    ``TabularPreprocessor.cache_stats_``).
    """
    with _CACHE_LOCK:
        out = dict(_CACHE_STATS)
        if reset:
            for key in _CACHE_STATS:
                _CACHE_STATS[key] = 0
        return out


def _column_signature(column: Column) -> bytes | None:
    """O(1) cache key for a column: its identity token.

    Tokens change on every mutation and are process-unique (see
    :mod:`repro.frame.column`), so equal signatures imply equal content.
    In ``"digest"`` mode — and for objects without a token — numeric
    columns fall back to a blake2b digest of their bytes (one memory
    pass) and categorical columns return ``None`` (uncacheable): a robust
    object-column digest costs more than the category set it would
    memoize, which is exactly why the token layer exists.
    """
    if _SIGNATURE_MODE == "token":
        token = getattr(column, "signature", None)
        if token is not None:
            return b"tok\x00" + token
    if not column.is_numeric:
        return None
    h = hashlib.blake2b(digest_size=16)
    h.update(b"num\x00")
    h.update(column.values.tobytes())
    h.update(column.missing_mask.tobytes())
    h.update(len(column).to_bytes(8, "little"))
    return h.digest()


def _cached_column_fit(column: Column, compute, stats: dict) -> tuple:
    """Serve ``compute(column)`` from the cache, keyed by signature."""
    key = _column_signature(column)
    if key is None:
        stats["misses"] += 1
        with _CACHE_LOCK:
            _CACHE_STATS["misses"] += 1
        return compute(column)
    with _CACHE_LOCK:
        cached = _FIT_CACHE.get(key)
        if cached is not None:
            _FIT_CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            stats["hits"] += 1
            return cached
        _CACHE_STATS["misses"] += 1
    stats["misses"] += 1
    value = compute(column)
    with _CACHE_LOCK:
        _FIT_CACHE[key] = value
        _FIT_CACHE.move_to_end(key)
        while len(_FIT_CACHE) > _FIT_CACHE_MAX:
            _FIT_CACHE.popitem(last=False)
    return value


def _transform_cache_get(key: tuple) -> np.ndarray | None:
    with _CACHE_LOCK:
        cached = _TRANSFORM_CACHE.get(key)
        if cached is not None:
            _TRANSFORM_CACHE.move_to_end(key)
        return cached


def _transform_cache_put(key: tuple, matrix: np.ndarray) -> None:
    global _TRANSFORM_CACHE_BYTES
    if matrix.nbytes > _TRANSFORM_ENTRY_MAX_BYTES:
        return
    master = matrix.copy()
    master.setflags(write=False)
    with _CACHE_LOCK:
        if key not in _TRANSFORM_CACHE:
            _TRANSFORM_CACHE[key] = master
            _TRANSFORM_CACHE_BYTES += master.nbytes
        _TRANSFORM_CACHE.move_to_end(key)
        while _TRANSFORM_CACHE and (
            len(_TRANSFORM_CACHE) > _TRANSFORM_CACHE_MAX
            or _TRANSFORM_CACHE_BYTES > _TRANSFORM_CACHE_MAX_BYTES
        ):
            __, evicted = _TRANSFORM_CACHE.popitem(last=False)
            _TRANSFORM_CACHE_BYTES -= evicted.nbytes


def _fit_numeric_column(column: Column) -> tuple[float, float, float]:
    """(imputation mean, scaler mean, scaler std) for one numeric column."""
    values = column.values
    present = values[~column.missing_mask]
    present = present[np.isfinite(present)]
    impute = float(present.mean()) if present.size else 0.0
    filled = values.copy()
    filled[~np.isfinite(filled)] = impute
    std = float(filled.std())
    return impute, float(filled.mean()), std if std != 0.0 else 1.0


def _fit_categorical_column(column: Column) -> tuple:
    """Sorted category tuple (with ``<missing>``) for one object column."""
    values = column.values[~column.missing_mask]
    present = set(values.tolist())
    if column.n_missing:
        present.add(_MISSING_CATEGORY)
    return tuple(sorted(present, key=str))


class TabularPreprocessor:
    """DataFrame → float matrix: impute, scale numerics, one-hot categoricals.

    Fit on the training frame only and reuse for the test frame so that no
    statistics leak across the split. The feature order of the output matrix
    is: scaled numeric columns (frame order), then one-hot blocks (frame
    order).

    Parameters
    ----------
    feature_names:
        Columns to encode, in order. The label column must not be included.
    cache:
        Serve per-column fit statistics — and, when every feature column
        carries an identity signature, whole transformed matrices — from
        the process-wide featurization cache (default). Disable to force
        recomputation; fitted state and outputs are identical either way.

    Attributes
    ----------
    cache_stats_:
        Per-instance hit/miss counters (same keys as
        :func:`fit_cache_stats`), accumulated over this object's
        lifetime — unlike the process-global counters, they are not
        polluted by other sessions or benchmark figures.
    """

    def __init__(self, feature_names: list[str], cache: bool = True) -> None:
        if not feature_names:
            raise ValueError("need at least one feature column")
        self.feature_names = list(feature_names)
        self.cache = cache
        self.cache_stats_ = _zero_stats()

    def _stats(self) -> dict:
        # Instances unpickled from pre-versioning checkpoints lack the
        # counter dict; recreate it lazily.
        if not hasattr(self, "cache_stats_"):
            self.cache_stats_ = _zero_stats()
        return self.cache_stats_

    def _column_fit(self, column: Column, compute) -> tuple:
        if self.cache:
            return _cached_column_fit(column, compute, self._stats())
        return compute(column)

    def fit(self, frame: DataFrame) -> "TabularPreprocessor":
        """Fit on the given training data and return ``self``."""
        self.numeric_names_ = [
            n for n in self.feature_names if frame[n].is_numeric
        ]
        self.categorical_names_ = [
            n for n in self.feature_names if frame[n].is_categorical
        ]
        self.numeric_means_ = {}
        scale_means, scale_stds = [], []
        for name in self.numeric_names_:
            impute, mean, std = self._column_fit(frame[name], _fit_numeric_column)
            self.numeric_means_[name] = impute
            scale_means.append(mean)
            scale_stds.append(std)
        if self.numeric_names_:
            self.scaler_ = StandardScaler()
            self.scaler_.mean_ = np.asarray(scale_means)
            self.scaler_.scale_ = np.asarray(scale_stds)
        else:
            self.scaler_ = None
        self.encoder_ = OneHotEncoder()
        self.encoder_.categories_ = [
            list(self._column_fit(frame[n], _fit_categorical_column))
            for n in self.categorical_names_
        ]
        # The fitted state is a pure function of these signatures — they
        # key the transformed-matrix memo. The memo needs O(1) keys to
        # pay off, so the digest baseline runs without it; ``None`` (an
        # unsignable column) disables it too.
        self._fit_key = (
            self._frame_key(frame) if _SIGNATURE_MODE == "token" else None
        )
        return self

    def _frame_key(self, frame: DataFrame) -> tuple | None:
        signatures = []
        for name in self.feature_names:
            signature = _column_signature(frame[name])
            if signature is None:
                return None
            signatures.append(signature)
        return tuple(signatures)

    def transform(self, frame: DataFrame) -> np.ndarray:
        """Transform the input using the fitted state.

        When caching is on and both the fit frame and ``frame`` carry
        O(1) signatures, the whole output matrix is memoized: repeated
        transforms of an unchanged frame (the dominant access pattern of
        repeated E1 sweeps over mostly-shared data states) skip
        featurization entirely. Returns a fresh writable array either
        way.
        """
        key = None
        if self.cache and getattr(self, "_fit_key", None) is not None:
            input_key = self._frame_key(frame)
            if input_key is not None:
                key = (self._fit_key, input_key)
                cached = _transform_cache_get(key)
                stats = self._stats()
                if cached is not None:
                    stats["transform_hits"] += 1
                    with _CACHE_LOCK:
                        _CACHE_STATS["transform_hits"] += 1
                    return cached.copy()
                stats["transform_misses"] += 1
                with _CACHE_LOCK:
                    _CACHE_STATS["transform_misses"] += 1
        out = self._transform_uncached(frame)
        if key is not None:
            _transform_cache_put(key, out)
        return out

    def _transform_uncached(self, frame: DataFrame) -> np.ndarray:
        parts = []
        if self.numeric_names_:
            parts.append(self.scaler_.transform(self._numeric_matrix(frame)))
        if self.categorical_names_:
            parts.append(
                self.encoder_.transform(
                    [self._categorical_values(frame, n) for n in self.categorical_names_]
                )
            )
        if not parts:
            raise ValueError("no feature columns to transform")
        return np.hstack(parts)

    def fit_transform(self, frame: DataFrame) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(frame).transform(frame)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        n = len(self.numeric_names_)
        if self.categorical_names_:
            n += self.encoder_.n_output_features()
        return n

    # ------------------------------------------------------------------ #
    def _numeric_matrix(self, frame: DataFrame) -> np.ndarray:
        if not self.numeric_names_:
            return np.zeros((frame.n_rows, 0))
        cols = []
        for name in self.numeric_names_:
            col = frame[name]
            values = col.values.copy()
            values[col.missing_mask] = self.numeric_means_[name]
            # Guard against non-finite dirty cells (e.g. inf from scaling
            # errors compounding); clamp to the imputation value.
            bad = ~np.isfinite(values)
            values[bad] = self.numeric_means_[name]
            cols.append(values)
        return np.column_stack(cols)

    @staticmethod
    def _categorical_values(frame: DataFrame, name: str) -> np.ndarray:
        col = frame[name]
        values = col.values.copy()
        values[col.missing_mask] = _MISSING_CATEGORY
        return values
