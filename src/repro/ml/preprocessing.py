"""Tabular preprocessing: imputation, scaling, one-hot encoding.

The Polluter injects missing values and the learners require finite
matrices, so the preprocessing stage is where dirty cells become model
inputs: numeric missing cells are mean-imputed (the train mean), while
categorical missing cells become an explicit ``<missing>`` category —
mirroring how placeholder values behave in the paper's pipeline.

Fitting and transforming are memoized on column *identity tokens* (see
:mod:`repro.frame`): frames in the E1 sweep differ from the base frame in
exactly one polluted column and share the rest, so a signature is an O(1)
token comparison instead of an O(n) content digest. That makes the cache
worthwhile for categorical columns too, and cheap enough to extend to
whole transformed feature matrices, keyed by the tuple of column tokens —
a repeated fit over an unchanged frame skips featurization entirely.
A content digest remains as a fallback for externally constructed
columns (and as the measurable pre-token baseline, via
:func:`signature_mode`).

All memoized state lives on the process-wide :mod:`repro.cache` layer
(namespaces ``"fit"``, ``"transform"``, ``"blocks"``): entries are
byte-accounted, shared across sessions, and evicted under the
``SessionQuotas.max_cache_bytes`` budget. Memoization also reaches
*below* the frame level: per-column transformed blocks are keyed by the
fitted statistics' values plus a content signature, and a polluted
column carrying row-level lineage (:meth:`Column.delta_base`) is served
by masked-scatter-patching the base state's cached block — only the
touched rows are recomputed. Every output cell is an independent
elementwise function of its input cell, so a patch is bit-identical to
a recompute; caching never changes results (see ``repro.runtime`` for
the determinism contract).
"""

from __future__ import annotations

import contextlib
import hashlib

import numpy as np

from repro.cache import estimate_nbytes, shared_cache
from repro.frame import Column, DataFrame

__all__ = [
    "StandardScaler",
    "OneHotEncoder",
    "TabularPreprocessor",
    "clear_fit_cache",
    "fit_cache_stats",
    "signature_mode",
]


class StandardScaler:
    """Zero-mean unit-variance scaling; constant columns stay at zero."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Fit on the given training data and return ``self``."""
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Transform the input using the fitted state."""
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"fitted on {self.mean_.shape[0]} columns, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encoding of object columns; unseen categories encode to zeros."""

    def fit(self, columns: list[np.ndarray]) -> "OneHotEncoder":
        """Fit on the given training data and return ``self``."""
        self.categories_: list[list] = []
        for values in columns:
            present = [v for v in values.tolist() if v is not None]
            self.categories_.append(sorted(set(present), key=str))
        return self

    def transform(self, columns: list[np.ndarray]) -> np.ndarray:
        """Transform the input using the fitted state."""
        if len(columns) != len(self.categories_):
            raise ValueError(
                f"fitted on {len(self.categories_)} columns, got {len(columns)}"
            )
        blocks = []
        for values, cats in zip(columns, self.categories_):
            lookup = {c: i for i, c in enumerate(cats)}
            block = np.zeros((len(values), len(cats)))
            for row, value in enumerate(values.tolist()):
                j = lookup.get(value)
                if j is not None:
                    block[row, j] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((0, 0))
        return np.hstack(blocks)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        return sum(len(c) for c in self.categories_)


_MISSING_CATEGORY = "<missing>"

# ---------------------------------------------------------------------- #
# featurization namespaces on the process-wide shared cache
# ---------------------------------------------------------------------- #
#: column signature → per-column fit statistics (immutable tuples).
_NS_FIT = shared_cache().register("fit", floor_bytes=2 * 1024 * 1024)
#: (fit signatures, input signatures) → read-only transformed matrix.
_NS_TRANSFORM = shared_cache().register(
    "transform", floor_bytes=8 * 1024 * 1024
)
#: (fitted-stat values, column signature) → read-only per-column block.
#: Keying by stat *values* (not fit identity) lets two preprocessors
#: whose statistics coincide — the unchanged columns of a polluted E1
#: state — share blocks.
_NS_BLOCKS = shared_cache().register("blocks", floor_bytes=8 * 1024 * 1024)

#: Counter updates share the cache's lock so ``fit_cache_stats(reset=True)``
#: is atomic against puts from concurrent scheduler workers — a reset can
#: no longer race a lookup and lose its count.
_CACHE_LOCK = shared_cache().lock


def _zero_stats() -> dict[str, int]:
    return {
        "hits": 0,
        "misses": 0,
        "transform_hits": 0,
        "transform_misses": 0,
        "block_hits": 0,
        "block_misses": 0,
        "delta_hits": 0,
    }


_CACHE_STATS = _zero_stats()

#: ``"token"`` (O(1) identity signatures) or ``"digest"`` (the pre-COW
#: content-hash baseline: numeric columns only, no transform memo).
_SIGNATURE_MODE = "token"


@contextlib.contextmanager
def signature_mode(mode: str):
    """Temporarily select how column signatures are computed.

    ``"token"`` is the production mode. ``"digest"`` reproduces the
    digest-based baseline so benchmarks can measure what the token layer
    buys; both caches are cleared on entry and exit so modes never mix.
    """
    global _SIGNATURE_MODE
    if mode not in ("token", "digest"):
        raise ValueError(f"unknown signature mode {mode!r}")
    previous = _SIGNATURE_MODE
    clear_fit_cache()
    _SIGNATURE_MODE = mode
    try:
        yield
    finally:
        _SIGNATURE_MODE = previous
        clear_fit_cache()


def clear_fit_cache() -> None:
    """Drop all memoized featurization state and reset the counters.

    Atomic: the entry drop and the counter reset happen under one lock,
    so a concurrent worker's lookup can neither hit a dropped entry nor
    leave a count that the reset then loses.
    """
    cache = shared_cache()
    with _CACHE_LOCK:
        for namespace in (_NS_FIT, _NS_TRANSFORM, _NS_BLOCKS):
            cache.clear(namespace)
        for key in _CACHE_STATS:
            _CACHE_STATS[key] = 0


def fit_cache_stats(reset: bool = False) -> dict[str, int]:
    """Process-wide hit/miss counters of the featurization caches.

    ``hits``/``misses`` count per-column fit lookups (numeric and
    categorical); ``transform_hits``/``transform_misses`` count whole
    transformed-matrix lookups; ``block_hits``/``block_misses`` count
    per-column transformed-block lookups below the frame level, of which
    ``delta_hits`` are misses served by patching the base state's block
    via row lineage instead of a full recompute. ``reset=True`` zeroes
    the counters after reading, atomically — a racing lookup either lands
    before the read (and is reported) or after the reset (and counts
    toward the next window); it is never lost. Benchmark figures use
    that to report per-phase hit rates instead of process-lifetime
    aggregates (per-instance numbers live on
    ``TabularPreprocessor.cache_stats_``). Byte-level accounting for the
    same namespaces lives on :func:`repro.cache.cache_stats`.
    """
    with _CACHE_LOCK:
        out = dict(_CACHE_STATS)
        if reset:
            for key in _CACHE_STATS:
                _CACHE_STATS[key] = 0
        return out


def _column_signature(column: Column) -> bytes | None:
    """Content-proving cache key for a column.

    In ``"token"`` mode: the column's row-level delta signature when it
    carries lineage (stable across replays that rebuild the same
    pollution from the same base — a re-polluted column mints a fresh
    token but hashes to the same delta signature), otherwise the O(1)
    identity token. Tokens change on every mutation and are
    process-unique (see :mod:`repro.frame.column`), so equal signatures
    imply equal content either way.

    In ``"digest"`` mode — and for objects without a token — the key is
    a blake2b content digest: numeric columns hash their raw bytes,
    categorical columns hash their integer codes plus the category list
    (``(codes, categories)`` jointly determine every cell including the
    missing ones, so the digest is content-proving too).
    """
    if _SIGNATURE_MODE == "token":
        delta_signature = getattr(column, "delta_signature", None)
        if delta_signature is not None:
            sig = delta_signature()
            if sig is not None:
                return sig
        token = getattr(column, "signature", None)
        if token is not None:
            return b"tok\x00" + token
    if not column.is_numeric:
        codes, cats = column.codes()
        h = hashlib.blake2b(digest_size=16)
        h.update(b"cat\x00")
        h.update(len(column).to_bytes(8, "little"))
        h.update(np.ascontiguousarray(codes, dtype=np.int64).tobytes())
        for cat in cats:
            encoded = str(cat).encode("utf-8", "surrogatepass")
            h.update(len(encoded).to_bytes(4, "little"))
            h.update(encoded)
        return h.digest()
    h = hashlib.blake2b(digest_size=16)
    h.update(b"num\x00")
    h.update(column.values.tobytes())
    h.update(column.missing_mask.tobytes())
    h.update(len(column).to_bytes(8, "little"))
    return h.digest()


def _cached_column_fit(column: Column, compute, stats: dict) -> tuple:
    """Serve ``compute(column)`` from the shared cache, keyed by signature."""
    key = _column_signature(column)
    if key is None:
        stats["misses"] += 1
        with _CACHE_LOCK:
            _CACHE_STATS["misses"] += 1
        return compute(column)
    cache = shared_cache()
    cached = cache.get(_NS_FIT, key)
    if cached is not None:
        with _CACHE_LOCK:
            _CACHE_STATS["hits"] += 1
        stats["hits"] += 1
        return cached
    with _CACHE_LOCK:
        _CACHE_STATS["misses"] += 1
    stats["misses"] += 1
    value = compute(column)
    cache.put(_NS_FIT, key, value, nbytes=estimate_nbytes(value))
    return value


def _fit_numeric_column(column: Column) -> tuple[float, float, float]:
    """(imputation mean, scaler mean, scaler std) for one numeric column."""
    values = column.values
    present = values[~column.missing_mask]
    present = present[np.isfinite(present)]
    impute = float(present.mean()) if present.size else 0.0
    filled = values.copy()
    filled[~np.isfinite(filled)] = impute
    std = float(filled.std())
    return impute, float(filled.mean()), std if std != 0.0 else 1.0


def _fit_categorical_column(column: Column) -> tuple:
    """Sorted category tuple (with ``<missing>``) for one object column."""
    values = column.values[~column.missing_mask]
    present = set(values.tolist())
    if column.n_missing:
        present.add(_MISSING_CATEGORY)
    return tuple(sorted(present, key=str))


class TabularPreprocessor:
    """DataFrame → float matrix: impute, scale numerics, one-hot categoricals.

    Fit on the training frame only and reuse for the test frame so that no
    statistics leak across the split. The feature order of the output matrix
    is: scaled numeric columns (frame order), then one-hot blocks (frame
    order).

    Parameters
    ----------
    feature_names:
        Columns to encode, in order. The label column must not be included.
    cache:
        Serve per-column fit statistics — and, when every feature column
        carries an identity signature, whole transformed matrices — from
        the process-wide featurization cache (default). Disable to force
        recomputation; fitted state and outputs are identical either way.

    Attributes
    ----------
    cache_stats_:
        Per-instance hit/miss counters (same keys as
        :func:`fit_cache_stats`), accumulated over this object's
        lifetime — unlike the process-global counters, they are not
        polluted by other sessions or benchmark figures.
    """

    def __init__(self, feature_names: list[str], cache: bool = True) -> None:
        if not feature_names:
            raise ValueError("need at least one feature column")
        self.feature_names = list(feature_names)
        self.cache = cache
        self.cache_stats_ = _zero_stats()

    def _stats(self) -> dict:
        # Instances unpickled from older checkpoints lack the counter
        # dict (or the newer block/delta counters); backfill lazily.
        if not hasattr(self, "cache_stats_"):
            self.cache_stats_ = _zero_stats()
        elif "block_hits" not in self.cache_stats_:
            for key, value in _zero_stats().items():
                self.cache_stats_.setdefault(key, value)
        return self.cache_stats_

    def _column_fit(self, column: Column, compute) -> tuple:
        if self.cache:
            return _cached_column_fit(column, compute, self._stats())
        return compute(column)

    def fit(self, frame: DataFrame) -> "TabularPreprocessor":
        """Fit on the given training data and return ``self``."""
        self.numeric_names_ = [
            n for n in self.feature_names if frame[n].is_numeric
        ]
        self.categorical_names_ = [
            n for n in self.feature_names if frame[n].is_categorical
        ]
        self.numeric_means_ = {}
        scale_means, scale_stds = [], []
        for name in self.numeric_names_:
            impute, mean, std = self._column_fit(frame[name], _fit_numeric_column)
            self.numeric_means_[name] = impute
            scale_means.append(mean)
            scale_stds.append(std)
        if self.numeric_names_:
            self.scaler_ = StandardScaler()
            self.scaler_.mean_ = np.asarray(scale_means)
            self.scaler_.scale_ = np.asarray(scale_stds)
        else:
            self.scaler_ = None
        self.encoder_ = OneHotEncoder()
        self.encoder_.categories_ = [
            list(self._column_fit(frame[n], _fit_categorical_column))
            for n in self.categorical_names_
        ]
        # The fitted state is a pure function of these signatures — they
        # key the transformed-matrix memo. The memo needs O(1) keys to
        # pay off, so the digest baseline runs without it; ``None`` (an
        # unsignable column) disables it too.
        self._fit_key = (
            self._frame_key(frame) if _SIGNATURE_MODE == "token" else None
        )
        return self

    def _frame_key(self, frame: DataFrame) -> tuple | None:
        signatures = []
        for name in self.feature_names:
            signature = _column_signature(frame[name])
            if signature is None:
                return None
            signatures.append(signature)
        return tuple(signatures)

    def transform(self, frame: DataFrame) -> np.ndarray:
        """Transform the input using the fitted state.

        When caching is on and both the fit frame and ``frame`` carry
        O(1) signatures, the whole output matrix is memoized: repeated
        transforms of an unchanged frame (the dominant access pattern of
        repeated E1 sweeps over mostly-shared data states) skip
        featurization entirely. Returns a fresh writable array either
        way.
        """
        key = None
        cache = shared_cache()
        if self.cache and getattr(self, "_fit_key", None) is not None:
            input_key = self._frame_key(frame)
            if input_key is not None:
                key = (self._fit_key, input_key)
                cached = cache.get(_NS_TRANSFORM, key)
                stats = self._stats()
                if cached is not None:
                    stats["transform_hits"] += 1
                    with _CACHE_LOCK:
                        _CACHE_STATS["transform_hits"] += 1
                    return cached.copy()
                stats["transform_misses"] += 1
                with _CACHE_LOCK:
                    _CACHE_STATS["transform_misses"] += 1
        if self.cache and _SIGNATURE_MODE == "token":
            out = self._transform_blocks(frame)
        else:
            out = self._transform_uncached(frame)
        if key is not None:
            master = out.copy()
            master.setflags(write=False)
            cache.put(_NS_TRANSFORM, key, master, nbytes=master.nbytes)
        return out

    def _transform_blocks(self, frame: DataFrame) -> np.ndarray:
        """Assemble the output matrix from shared per-column blocks.

        Each block is keyed by the fitted statistics' *values* plus the
        column's content signature, so fresh fits whose statistics
        coincide with an earlier one (all unchanged columns of a polluted
        E1 state) reuse blocks across preprocessor instances — this is
        where fresh polluted states, which always miss the whole-matrix
        memo, still skip most featurization work. A block miss on a
        column carrying row-level lineage is served by masked-scatter
        patching the base state's cached block: copy, recompute only the
        changed rows. Every output cell is an independent elementwise
        function of its input cell, so both the per-column assembly and
        the patch are bit-identical to :meth:`_transform_uncached`.
        """
        parts: list[np.ndarray] = []
        numeric_blocks: list[np.ndarray] = []
        for j, name in enumerate(self.numeric_names_):
            column = frame[name]
            impute = self.numeric_means_[name]
            mean = self.scaler_.mean_[j]
            scale = self.scaler_.scale_[j]
            stats_key = ("num", float(impute), float(mean), float(scale))
            numeric_blocks.append(
                self._cached_block(
                    stats_key,
                    column,
                    compute=lambda: self._numeric_block(
                        column, impute, mean, scale
                    ),
                    patch=lambda base, rows: self._patch_numeric(
                        base, rows, column, impute, mean, scale
                    ),
                )
            )
        if numeric_blocks:
            parts.append(np.column_stack(numeric_blocks))
        for j, name in enumerate(self.categorical_names_):
            column = frame[name]
            cats = self.encoder_.categories_[j]
            stats_key = ("cat", tuple(cats))
            parts.append(
                self._cached_block(
                    stats_key,
                    column,
                    compute=lambda: self._categorical_block(column, cats),
                    patch=lambda base, rows: self._patch_categorical(
                        base, rows, column, cats
                    ),
                )
            )
        if not parts:
            raise ValueError("no feature columns to transform")
        return np.hstack(parts)

    def _cached_block(
        self, stats_key: tuple, column: Column, compute, patch
    ) -> np.ndarray:
        """One column's transformed block, via the shared block cache.

        Returned arrays are owned by the cache (read-only): callers
        assemble them with copying stack operations. Besides its content
        signature, a block is aliased under the column's identity token
        so later delta patches can find it by ``delta_base()`` alone.
        """
        cache = shared_cache()
        stats = self._stats()
        sig = _column_signature(column)
        key = (stats_key, sig)
        block = cache.get(_NS_BLOCKS, key)
        if block is not None:
            stats["block_hits"] += 1
            with _CACHE_LOCK:
                _CACHE_STATS["block_hits"] += 1
            return block
        stats["block_misses"] += 1
        with _CACHE_LOCK:
            _CACHE_STATS["block_misses"] += 1
        block = None
        delta = column.delta_base() if hasattr(column, "delta_base") else None
        if delta is not None:
            base_token, rows = delta
            base_block = cache.get(
                _NS_BLOCKS, (stats_key, b"tok\x00" + base_token)
            )
            if base_block is not None:
                block = patch(base_block, rows)
                stats["delta_hits"] += 1
                with _CACHE_LOCK:
                    _CACHE_STATS["delta_hits"] += 1
        if block is None:
            block = compute()
        block = np.ascontiguousarray(block)
        block.setflags(write=False)
        cache.put(_NS_BLOCKS, key, block, nbytes=block.nbytes)
        token = getattr(column, "token", None)
        if token is not None:
            token_key = (stats_key, b"tok\x00" + token)
            if token_key != key:
                cache.put(_NS_BLOCKS, token_key, block, nbytes=block.nbytes)
        return block

    def _numeric_block(self, column: Column, impute, mean, scale) -> np.ndarray:
        """One numeric column, imputed/clamped/scaled — the exact per-cell
        operations :meth:`_numeric_matrix` + ``StandardScaler`` apply."""
        values = column.values.copy()
        values[column.missing_mask] = impute
        values[~np.isfinite(values)] = impute
        return (values - mean) / scale

    @staticmethod
    def _patch_numeric(
        base: np.ndarray, rows: np.ndarray, column: Column, impute, mean, scale
    ) -> np.ndarray:
        out = base.copy()
        values = column.values[rows].copy()
        values[column.missing_mask[rows]] = impute
        values[~np.isfinite(values)] = impute
        out[rows] = (values - mean) / scale
        return out

    @staticmethod
    def _categorical_block(column: Column, cats: list) -> np.ndarray:
        """One one-hot block — the exact per-cell operations
        :meth:`_categorical_values` + ``OneHotEncoder`` apply."""
        lookup = {c: i for i, c in enumerate(cats)}
        values = column.values.copy()
        values[column.missing_mask] = _MISSING_CATEGORY
        block = np.zeros((len(values), len(cats)))
        for row, value in enumerate(values.tolist()):
            j = lookup.get(value)
            if j is not None:
                block[row, j] = 1.0
        return block

    @staticmethod
    def _patch_categorical(
        base: np.ndarray, rows: np.ndarray, column: Column, cats: list
    ) -> np.ndarray:
        lookup = {c: i for i, c in enumerate(cats)}
        out = base.copy()
        out[rows, :] = 0.0
        values = column.values[rows]
        missing = column.missing_mask[rows]
        for k, row in enumerate(rows.tolist()):
            value = _MISSING_CATEGORY if missing[k] else values[k]
            j = lookup.get(value)
            if j is not None:
                out[row, j] = 1.0
        return out

    def _transform_uncached(self, frame: DataFrame) -> np.ndarray:
        parts = []
        if self.numeric_names_:
            parts.append(self.scaler_.transform(self._numeric_matrix(frame)))
        if self.categorical_names_:
            parts.append(
                self.encoder_.transform(
                    [self._categorical_values(frame, n) for n in self.categorical_names_]
                )
            )
        if not parts:
            raise ValueError("no feature columns to transform")
        return np.hstack(parts)

    def fit_transform(self, frame: DataFrame) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(frame).transform(frame)

    def n_output_features(self) -> int:
        """Number of columns the transform produces."""
        n = len(self.numeric_names_)
        if self.categorical_names_:
            n += self.encoder_.n_output_features()
        return n

    # ------------------------------------------------------------------ #
    def _numeric_matrix(self, frame: DataFrame) -> np.ndarray:
        if not self.numeric_names_:
            return np.zeros((frame.n_rows, 0))
        cols = []
        for name in self.numeric_names_:
            col = frame[name]
            values = col.values.copy()
            values[col.missing_mask] = self.numeric_means_[name]
            # Guard against non-finite dirty cells (e.g. inf from scaling
            # errors compounding); clamp to the imputation value.
            bad = ~np.isfinite(values)
            values[bad] = self.numeric_means_[name]
            cols.append(values)
        return np.column_stack(cols)

    @staticmethod
    def _categorical_values(frame: DataFrame, name: str) -> np.ndarray:
        col = frame[name]
        values = col.values.copy()
        values[col.missing_mask] = _MISSING_CATEGORY
        return values
