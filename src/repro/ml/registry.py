"""Algorithm registry: names used throughout the paper → estimators.

``svm``, ``knn``, ``mlp``, ``gb`` are the four classifiers of §4.4;
``lir``, ``lor`` and ``ac_svm`` are the convex learners used in the
ActiveClean comparison (§4.5). Each entry also carries the random-search
hyperparameter space used for the paper's 10-sample optimization.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.ml.base import BaseEstimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearRegressionClassifier, LogisticRegression
from repro.ml.mlp import MLPClassifier
from repro.ml.svm import LinearSVC

__all__ = ["make_classifier", "available_algorithms", "hyperparameter_space", "CONVEX_ALGORITHMS"]

#: Algorithms with per-sample gradient access (usable by ActiveClean).
CONVEX_ALGORITHMS = ("ac_svm", "lir", "lor")

_FACTORIES: dict[str, Callable[[], BaseEstimator]] = {
    "svm": lambda: LinearSVC(C=1.0),
    "knn": lambda: KNeighborsClassifier(n_neighbors=5),
    "mlp": lambda: MLPClassifier(hidden_sizes=(32,), max_epochs=60, random_state=0),
    "gb": lambda: GradientBoostingClassifier(n_estimators=40, max_depth=3),
    "lir": lambda: LinearRegressionClassifier(alpha=1e-3),
    "lor": lambda: LogisticRegression(C=1.0),
    "ac_svm": lambda: LinearSVC(C=1.0),
}

_SPACES: dict[str, Mapping[str, Sequence]] = {
    "svm": {"C": [0.03, 0.1, 0.3, 1.0, 3.0, 10.0]},
    "knn": {"n_neighbors": [3, 5, 7, 9, 11, 15]},
    "mlp": {
        "hidden_sizes": [(16,), (32,), (64,), (32, 16)],
        "learning_rate": [3e-3, 1e-2, 3e-2],
    },
    "gb": {
        "n_estimators": [20, 40, 60],
        "max_depth": [2, 3, 4],
        "learning_rate": [0.05, 0.1, 0.2],
    },
    "lir": {"alpha": [1e-4, 1e-3, 1e-2, 1e-1]},
    "lor": {"C": [0.03, 0.1, 0.3, 1.0, 3.0, 10.0]},
    "ac_svm": {"C": [0.03, 0.1, 0.3, 1.0, 3.0, 10.0]},
}


def available_algorithms() -> list[str]:
    """Names accepted by :func:`make_classifier`."""
    return sorted(_FACTORIES)


def make_classifier(name: str) -> BaseEstimator:
    """Instantiate a fresh, unfitted classifier by paper name."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {available_algorithms()}"
        ) from None
    return factory()


def hyperparameter_space(name: str) -> Mapping[str, Sequence]:
    """Random-search space for the given algorithm name."""
    try:
        return dict(_SPACES[name.lower()])
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {available_algorithms()}"
        ) from None
