"""Linear support vector classification.

A one-vs-rest linear SVM trained on the smooth squared-hinge loss with
L-BFGS; exposes per-sample hinge gradients for ActiveClean (which the paper
evaluates as "AC-SVM").
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import BaseEstimator, check_X, check_X_y
from repro.ml.linear import _add_bias

__all__ = ["LinearSVC"]


class LinearSVC(BaseEstimator):
    """One-vs-rest linear SVM (squared hinge, L2 regularized).

    Parameters
    ----------
    C:
        Inverse regularization strength.
    max_iter:
        L-BFGS iteration cap per binary subproblem.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200) -> None:
        self.C = C
        self.max_iter = max_iter

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVC":
        """Fit on the given training data and return ``self``."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        Xb = _add_bias(X)
        n, d = Xb.shape
        lam = 1.0 / (self.C * n)
        weights = []
        for cls in self.classes_:
            target = np.where(y == cls, 1.0, -1.0)

            def objective(w: np.ndarray) -> tuple[float, np.ndarray]:
                margins = target * (Xb @ w)
                slack = np.maximum(0.0, 1.0 - margins)
                loss = np.mean(slack**2) + 0.5 * lam * np.sum(w[:-1] ** 2)
                coef = -2.0 * slack * target / n
                grad = Xb.T @ coef
                grad[:-1] += lam * w[:-1]
                return loss, grad

            result = optimize.minimize(
                objective,
                np.zeros(d),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            weights.append(result.x)
        self.coef_ = np.column_stack(weights)  # (d+1, n_classes)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class scores (pre-argmax)."""
        X = check_X(X)
        return _add_bias(X) @ self.coef_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        scores = self.decision_function(X)
        if len(self.classes_) == 2:
            # Use the positive-class column of the OvR pair for a stable
            # binary decision.
            return self.classes_[(scores[:, 1] > scores[:, 0]).astype(int)]
        return self.classes_[np.argmax(scores, axis=1)]

    def gradient_norms(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-sample hinge-loss gradient norms (for ActiveClean)."""
        X, y = check_X_y(X, y)
        Xb = _add_bias(X)
        scores = Xb @ self.coef_
        norms = np.zeros(len(X))
        row_norm = np.linalg.norm(Xb, axis=1)
        for j, cls in enumerate(self.classes_):
            target = np.where(y == cls, 1.0, -1.0)
            slack = np.maximum(0.0, 1.0 - target * scores[:, j])
            norms += 2.0 * slack * row_norm
        return norms

    def sgd_step(self, X: np.ndarray, y: np.ndarray, lr: float) -> None:
        """One batch gradient step on the squared hinge (ActiveClean update)."""
        X, y = check_X_y(X, y)
        Xb = _add_bias(X)
        scores = Xb @ self.coef_
        for j, cls in enumerate(self.classes_):
            target = np.where(y == cls, 1.0, -1.0)
            slack = np.maximum(0.0, 1.0 - target * scores[:, j])
            grad = Xb.T @ (-2.0 * slack * target) / len(X)
            self.coef_[:, j] -= lr * grad
