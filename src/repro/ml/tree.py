"""CART regression trees (the weak learner inside gradient boosting)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, check_X

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0


class DecisionTreeRegressor(BaseEstimator):
    """Exact greedy CART with squared-error splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (a single leaf is depth 0).
    min_samples_leaf:
        Minimum samples on each side of a split.
    min_samples_split:
        Minimum samples required to consider splitting a node.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Fit on the given training data and return ``self``."""
        X = check_X(X)
        y = np.asarray(y, dtype=float)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.nodes_: list[_Node] = []
        self._build(X, y, np.arange(len(X)), depth=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict labels (or values) for the given input."""
        X = check_X(X)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.nodes_[0]
            while node.feature != -1:
                node = (
                    self.nodes_[node.left]
                    if row[node.feature] <= node.threshold
                    else self.nodes_[node.right]
                )
            out[i] = node.value
        return out

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for n in self.nodes_ if n.feature == -1)

    # ------------------------------------------------------------------ #
    def _build(self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node_id = len(self.nodes_)
        self.nodes_.append(_Node(value=float(y[idx].mean())))
        if depth >= self.max_depth or len(idx) < self.min_samples_split:
            return node_id
        split = self._best_split(X, y, idx)
        if split is None:
            return node_id
        feature, threshold = split
        mask = X[idx, feature] <= threshold
        left_id = self._build(X, y, idx[mask], depth + 1)
        right_id = self._build(X, y, idx[~mask], depth + 1)
        node = self.nodes_[node_id]
        node.feature = feature
        node.threshold = threshold
        node.left = left_id
        node.right = right_id
        return node_id

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> tuple[int, float] | None:
        n = len(idx)
        y_node = y[idx]
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        total_sum = y_node.sum()
        base_sse = np.sum(y_node**2) - total_sum**2 / n
        min_leaf = self.min_samples_leaf
        for feature in range(X.shape[1]):
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y_node[order]
            # Candidate split positions: between distinct consecutive values.
            distinct = v_sorted[1:] != v_sorted[:-1]
            positions = np.flatnonzero(distinct) + 1  # left part size
            if positions.size == 0:
                continue
            valid = (positions >= min_leaf) & (positions <= n - min_leaf)
            positions = positions[valid]
            if positions.size == 0:
                continue
            prefix = np.cumsum(y_sorted)
            left_sum = prefix[positions - 1]
            right_sum = total_sum - left_sum
            gain = left_sum**2 / positions + right_sum**2 / (n - positions) - total_sum**2 / n
            j = int(np.argmax(gain))
            if gain[j] > best_gain and gain[j] > 1e-12 * max(1.0, base_sse):
                best_gain = gain[j]
                pos = positions[j]
                threshold = 0.5 * (v_sorted[pos - 1] + v_sorted[pos])
                best = (feature, float(threshold))
        return best
