"""Execution engine: pluggable parallel backends for COMET's hot paths.

The Estimator's E1 sweep retrains the model ``|candidates| ×
n_combinations × n_pollution_steps`` times per session iteration, and the
estimations for different candidates are independent (PAPER §3.1).  This
package turns that loop into *task dispatch*: the caller builds a flat
list of picklable :class:`~repro.runtime.tasks.FitScoreTask` objects and
hands them to an :class:`~repro.runtime.backends.ExecutionBackend`, which
runs them serially, on a thread pool, or on a process pool.

Backend selection
-----------------
Backends are selected by name through the registry::

    from repro.runtime import make_backend

    backend = make_backend("thread", jobs=4)   # "serial" / "process" /
    with backend:                              # "distributed"
        scores = backend.map(fn, tasks)

``make_backend`` auto-falls back to :class:`SerialBackend` whenever
``jobs <= 1`` — asking for one worker *is* serial execution, so callers
never pay pool overhead for it.  The ``"distributed"`` backend
(:mod:`repro.runtime.distributed` — remote worker processes over
line-delimited JSON) is exempt: its single worker still runs in another
process, possibly on another machine.  Passing an already-constructed backend
instance returns it unchanged, which lets tests and power users inject
custom backends.  ``Comet(..., backend="thread", jobs=4)`` and the CLI's
``--backend/--jobs`` flags route through the same registry.

Determinism guarantees
----------------------
Serial, thread, process, and distributed runs of the same session are
**bit-identical**:

1. *All randomness is consumed while building tasks, never while running
   them.*  The Estimator draws per-candidate RNG streams (via
   ``Generator.spawn``) in a fixed candidate order and materializes every
   polluted data state up front; a task is then a pure function of its
   payload (fit a model, score a split).
2. *Results are reassembled by position.*  ``ExecutionBackend.map``
   returns results in task order regardless of completion order.
3. *Model fits are deterministic.*  Learners take explicit
   ``random_state`` hyperparameters and never touch global RNG state, and
   the featurization cache only memoizes values that a cache-miss would
   recompute identically.

Consequently a :class:`~repro.core.trace.CleaningTrace` produced with
``backend="thread", jobs=4`` equals the ``backend="serial"`` trace for
the same seed, and the choice of backend is purely a throughput knob.
"""

from repro.runtime.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.runtime.distributed import (
    DistributedBackend,
    RemoteTaskError,
    WorkerLostError,
    listen_worker,
    run_worker,
    worker_serve,
)
from repro.runtime.registry import (
    available_backends,
    make_backend,
    register_backend,
)
from repro.runtime.tasks import FitScoreTask, run_fit_score_task

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "DistributedBackend",
    "RemoteTaskError",
    "WorkerLostError",
    "worker_serve",
    "run_worker",
    "listen_worker",
    "available_backends",
    "make_backend",
    "register_backend",
    "FitScoreTask",
    "run_fit_score_task",
]
