"""Execution backends: serial, thread-pool, and process-pool task runners.

A backend is a context manager owning worker resources plus one verb,
``map(fn, tasks)``, which applies ``fn`` to every task and returns the
results *in task order* — completion order never leaks through, which is
half of the determinism guarantee (see the package docstring).

Pools are created lazily on first ``map`` so a backend constructed but
never used costs nothing; entering the context starts the pool eagerly
and leaving it shuts the pool down.

The in-process pools here are one end of a spectrum; the
:class:`~repro.runtime.distributed.DistributedBackend` implements the
same two primitives (ordered ``map`` plus a ``submit`` future) over
remote worker processes, so callers — the estimator's flat E1 dispatch,
the service scheduler — never distinguish local from distributed
execution.
"""

from __future__ import annotations

import abc
import threading
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable, Iterable, Sequence

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadBackend", "ProcessBackend"]


class ExecutionBackend(abc.ABC):
    """Common API of all execution backends.

    Subclasses implement :meth:`map`; pooled backends additionally manage
    worker lifecycles through :meth:`start` / :meth:`shutdown`, which the
    context-manager protocol calls for them.
    """

    #: Registry name of the backend (``"serial"``, ``"thread"``, …).
    name: str = "?"
    #: Number of workers the backend runs tasks on (1 for serial).
    workers: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results come back in task order."""

    def submit(self, fn: Callable, /, *args) -> Future:
        """Run ``fn(*args)`` asynchronously, returning its :class:`Future`.

        The default runs inline and returns an already-resolved future,
        so serial execution keeps its strict ordering; pooled backends
        override this with a real dispatch. ``submit`` is the primitive
        the session scheduler (``repro.service``) builds on — ``map``
        remains the verb of the deterministic sweep contract.
        """
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 — futures carry failures
            future.set_exception(exc)
        return future

    def start(self) -> None:
        """Acquire worker resources (no-op for serial execution)."""

    def shutdown(self) -> None:
        """Release worker resources (no-op for serial execution)."""

    def __enter__(self) -> "ExecutionBackend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Run every task inline on the calling thread (the reference order)."""

    name = "serial"

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results come back in task order."""
        return [fn(task) for task in tasks]


class _PooledBackend(ExecutionBackend):
    """Shared lazy-pool plumbing for the thread and process backends.

    Lifecycle transitions are lock-protected: one backend instance may be
    shared by many sessions dispatching from different threads (the
    ``repro.service`` topology), and the lazy first ``map`` must create
    exactly one pool — not one per racing caller.
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: Executor | None = None
        self._lifecycle = threading.Lock()

    @abc.abstractmethod
    def _make_pool(self) -> Executor:
        """Construct the executor backing this backend."""

    def start(self) -> None:
        """Acquire worker resources (idempotent, thread-safe)."""
        self._acquire_pool()

    def _acquire_pool(self) -> Executor:
        with self._lifecycle:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def shutdown(self) -> None:
        """Release worker resources (idempotent, thread-safe)."""
        with self._lifecycle:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results come back in task order.

        Concurrent ``map`` calls from different threads are safe (they
        share one pool). ``shutdown`` is safe to race with *idle* maps —
        the next dispatch lazily rebuilds the pool — but shutting down
        while a dispatch is in flight surfaces as an executor error in
        that dispatch; callers owning a shared backend (the service)
        must drain their sessions before shutting it down.
        """
        tasks = list(tasks) if not isinstance(tasks, Sequence) else tasks
        if not tasks:
            return []
        # Local reference so a racing shutdown() cannot None the pool
        # between the acquire and the dispatch.
        return list(self._acquire_pool().map(fn, tasks))

    def submit(self, fn: Callable, /, *args) -> Future:
        """Dispatch ``fn(*args)`` onto the pool, returning its future."""
        return self._acquire_pool().submit(fn, *args)


class ThreadBackend(_PooledBackend):
    """Thread-pool execution: shared memory, no pickling.

    The fit-score workload is numpy-heavy, so threads overlap the
    GIL-releasing linear algebra; payloads are shared by reference, which
    makes this the cheapest parallel backend for in-process use.
    """

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-worker"
        )


class ProcessBackend(_PooledBackend):
    """Process-pool execution: true CPU parallelism, pickled payloads.

    Tasks and the mapped function must be picklable (module-level
    callables, dataclass payloads).  If the host forbids spawning worker
    processes (sandboxes, restricted containers), ``map`` degrades to
    inline execution with a warning rather than failing the run — the
    results are identical either way.
    """

    name = "process"

    def __init__(self, workers: int = 2) -> None:
        super().__init__(workers)
        self._degraded = False

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results come back in task order.

        Pool failures degrade to the inline fallback — stickily, so a
        host that forbids worker processes pays the failed pool setup
        once, not per sweep. ``OSError`` is caught around the dispatch
        as well as pool creation because worker processes are only
        spawned at first submit — that is where a fork-denying host
        actually raises. Fit-score tasks are pure numpy computation and
        never raise ``OSError`` themselves, so the attribution is
        unambiguous for this workload.
        """
        tasks = list(tasks) if not isinstance(tasks, Sequence) else tasks
        if not tasks:
            return []
        if self._degraded:
            return [fn(task) for task in tasks]
        try:
            return list(self._acquire_pool().map(fn, tasks))
        except (BrokenExecutor, OSError, PermissionError) as exc:
            self.shutdown()
            self._degraded = True
            warnings.warn(
                f"process backend unavailable ({exc}); running tasks inline",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(task) for task in tasks]

    def submit(self, fn: Callable, /, *args) -> Future:
        """Dispatch onto the pool; a degraded backend resolves inline."""
        if self._degraded:
            return ExecutionBackend.submit(self, fn, *args)
        try:
            return self._acquire_pool().submit(fn, *args)
        except (BrokenExecutor, OSError, PermissionError) as exc:
            self.shutdown()
            self._degraded = True
            warnings.warn(
                f"process backend unavailable ({exc}); running tasks inline",
                RuntimeWarning,
                stacklevel=2,
            )
            return ExecutionBackend.submit(self, fn, *args)
