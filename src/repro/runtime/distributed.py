"""Distributed execution backend: fit-score sweeps on remote workers.

The coordinator (:class:`DistributedBackend`) ships pickled tasks to
worker *processes* — on this machine or across the network — over the
same line-delimited-JSON framing the COMET service speaks
(:mod:`repro.runtime.wire`).  On a multi-core host two local workers
give the E1 sweep the true CPU parallelism the in-process pools cannot
(one Python process is one GIL); across hosts it is the only road past
the machine boundary.

Topology
--------
The coordinator always listens on a TCP port; workers dial in and
register (``repro worker --connect host:port``).  For inverted networks
the worker can listen instead (``repro worker --listen host:port``) and
the coordinator dials out to the addresses in its ``connect=[...]``
option (or the ``REPRO_DISTRIBUTED_CONNECT`` environment variable).
When neither is configured the backend *spawns* ``jobs`` local worker
subprocesses pointed at its own listener, so
``Comet(backend="distributed", jobs=2)`` works with zero setup.

Protocol (one JSON object per line; pickles ride base64 inside)::

    worker → hello     {"op": "hello", "worker": id, "pid", "protocol"
                        [, "auth_nonce"]}
    coord  → welcome   {"op": "welcome", "heartbeat": seconds
                        [, "auth_mac", "auth_nonce"]}
    worker → auth      {"op": "auth", "mac"}       (token mode only)
    coord  → task      {"op": "task", "id": n, "payload": b64(pickle)}
    worker → result    {"op": "result", "id": n, "ok": true, "payload"}
                       {"op": "result", "id": n, "ok": false, "error",
                        "traceback"}
    worker → heartbeat {"op": "heartbeat"}        (idle or busy — a
                       dedicated thread beats while a task runs)
    coord  → shutdown  {"op": "shutdown"}

Pickles are code execution on both ends, so the handshake is *mutual*
when a shared token is configured (:mod:`repro.security`): the hello
carries the worker's challenge nonce, the welcome answers it with the
coordinator's HMAC proof plus the coordinator's own challenge, and the
worker's ``auth`` frame closes the loop.  The worker verifies the
coordinator **before entering its task loop** — it never unpickles a
payload from an unproven peer — and the coordinator verifies the worker
before registering it for dispatch.  Role labels in the MACs keep one
direction's transcript from replaying as the other's.  TLS
(``TransportSecurity`` cert/CA knobs) wraps the sockets underneath the
framing for links that cross untrusted networks.  Without a token the
protocol is open: run it only inside a trusted boundary (loopback, a
private network, an SSH tunnel).

Fault tolerance
---------------
Workers send periodic heartbeats; the coordinator evicts a worker whose
connection drops, whose heartbeats stop (``heartbeat_timeout``), or
whose task exceeds ``task_timeout`` — and **requeues** the task the
evicted worker held, at the front of the queue.  A task that raised on a
worker is *not* requeued (tasks are pure, so it would raise everywhere);
the error surfaces as :class:`RemoteTaskError` carrying the remote
traceback.  If no worker is available for ``register_timeout`` seconds
the coordinator runs queued tasks inline (with a warning) so a sweep
never stalls.

Determinism
-----------
The bit-identical-trace contract of :mod:`repro.runtime` is preserved
unchanged: every random draw happened while *building* tasks, each task
is a pure function of its pickled payload, and results are reassembled
by submission position.  Worker placement, eviction, and requeueing can
therefore never alter a trace — only its wall-clock.
"""

from __future__ import annotations

import itertools
import os
import socket
import ssl
import subprocess
import sys
import threading
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import Future
from typing import Callable, Iterable, Sequence

from repro.runtime.backends import ExecutionBackend
from repro.runtime.wire import (
    DEFAULT_MAX_TASK_FRAME,
    FrameError,
    JSONLineConnection,
    format_address,
    parse_address,
    pickle_to_text,
    text_to_pickle,
)
from repro.security import (
    AUTH_TOKEN_ENV,
    ROLE_COORDINATOR,
    ROLE_WORKER,
    TransportSecurity,
    is_loopback_host,
    load_token,
    new_nonce,
)

__all__ = [
    "DistributedBackend",
    "RemoteTaskError",
    "WorkerLostError",
    "worker_serve",
    "run_worker",
    "PROTOCOL_VERSION",
]

#: Version tag exchanged in the hello/welcome handshake.
PROTOCOL_VERSION = 1

#: Environment variable naming worker listeners the coordinator dials
#: (comma-separated ``host:port`` entries).
CONNECT_ENV = "REPRO_DISTRIBUTED_CONNECT"


class RemoteTaskError(RuntimeError):
    """A task raised on a worker; carries the remote type and traceback."""

    def __init__(self, error: dict, remote_traceback: str = "") -> None:
        message = f"{error.get('type', 'Exception')}: {error.get('message', '')}"
        if remote_traceback:
            message += "\n--- remote traceback ---\n" + remote_traceback
        super().__init__(message)
        self.error_type = error.get("type", "Exception")
        self.remote_traceback = remote_traceback


class WorkerLostError(RuntimeError):
    """A task's workers kept dying until its retry budget ran out."""


# ---------------------------------------------------------------------- #
# coordinator-side bookkeeping
# ---------------------------------------------------------------------- #
class _Task:
    """One queued unit of work: the call, its wire payload, its future."""

    __slots__ = ("id", "call", "payload", "future", "attempts", "started_at")

    def __init__(self, task_id: int, call: tuple, payload: str) -> None:
        self.id = task_id
        self.call = call  # (fn, args) — kept for the inline fallback
        self.payload = payload
        self.future: Future = Future()
        self.attempts = 0
        self.started_at = 0.0


class _Worker:
    """One registered remote worker (its connection and liveness)."""

    __slots__ = ("id", "conn", "pid", "last_seen", "current", "done", "dead")

    def __init__(self, worker_id: str, conn: JSONLineConnection, pid: int) -> None:
        self.id = worker_id
        self.conn = conn
        self.pid = pid
        self.last_seen = time.monotonic()
        self.current: _Task | None = None
        self.done = 0
        self.dead = False


class DistributedBackend(ExecutionBackend):
    """Coordinate fit-score tasks across remote worker processes.

    Parameters
    ----------
    jobs:
        Nominal worker count.  With no ``connect`` addresses this many
        local ``repro worker`` subprocesses are spawned against the
        coordinator's own listener (``spawn_workers`` overrides).
    connect:
        Addresses of *listening* workers (``repro worker --listen``) to
        dial at startup, as ``host:port`` strings or ``(host, port)``
        pairs.  Defaults to the ``REPRO_DISTRIBUTED_CONNECT``
        environment variable; when set, no local workers are spawned.
    listen:
        ``(host, port)`` the coordinator binds for dial-in workers
        (default: loopback, ephemeral port — read it back from
        :attr:`address`).
    spawn_workers:
        Local worker subprocesses to launch (default: ``jobs`` when
        ``connect`` is empty, else 0).
    heartbeat:
        Seconds between worker heartbeats (sent to workers in the
        welcome frame).
    heartbeat_timeout:
        Silence after which a worker is evicted (default
        ``5 × heartbeat``).
    task_timeout:
        Wall-clock bound per task dispatch; exceeding it evicts the
        worker and requeues the task (default: none — fit tasks vary
        hugely with dataset size).
    register_timeout:
        How long a queued task waits for *any* worker before the
        coordinator runs it inline (``inline_fallback=False`` disables
        the fallback and keeps waiting).
    max_task_retries:
        Worker deaths one task survives before its future fails with
        :class:`WorkerLostError`.
    security:
        :class:`~repro.security.TransportSecurity` for every link this
        coordinator owns.  A token turns on the mutual HMAC handshake
        (both for dial-in workers and for listeners it dials);
        ``certfile``/``keyfile`` wrap accepted connections in TLS;
        ``cafile`` verifies listening workers it dials out to.  Spawned
        local workers inherit the token through the environment and the
        coordinator's certificate as their CA, so
        ``Comet(backend="distributed")`` stays zero-setup.
    insecure:
        Allow a non-loopback ``listen`` without a token.  The default
        refuses (fail-closed): the task protocol unpickles payloads,
        which is code execution for any peer that can reach the port.

    The backend is thread-safe: concurrent ``map`` calls (the service
    topology — many sessions, one shared backend) interleave their tasks
    on one queue and collect by future, so ordering per call is intact.
    """

    name = "distributed"

    def __init__(
        self,
        jobs: int = 2,
        *,
        connect: Iterable | None = None,
        listen: tuple[str, int] = ("127.0.0.1", 0),
        spawn_workers: int | None = None,
        heartbeat: float = 1.0,
        heartbeat_timeout: float | None = None,
        task_timeout: float | None = None,
        register_timeout: float = 10.0,
        handshake_timeout: float = 10.0,
        max_frame: int = DEFAULT_MAX_TASK_FRAME,
        inline_fallback: bool = True,
        max_task_retries: int = 3,
        security: TransportSecurity | None = None,
        insecure: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        token = security.token if security is not None else None
        if not token and not insecure and not is_loopback_host(listen[0]):
            raise ValueError(
                f"refusing to coordinate on non-loopback host {listen[0]!r} "
                "without authentication: the task protocol unpickles "
                "payloads, which is code execution for any peer that can "
                "reach the port. Pass security=TransportSecurity(token=...) "
                f"(or set {AUTH_TOKEN_ENV}), or insecure=True to accept "
                "the risk."
            )
        self.security = security
        self.workers = jobs
        self.connect = [self._normalize(a) for a in (connect or [])]
        self.listen = listen
        self.spawn_workers = (
            (jobs if not self.connect else 0)
            if spawn_workers is None
            else spawn_workers
        )
        self.heartbeat = float(heartbeat)
        self.heartbeat_timeout = (
            5.0 * self.heartbeat if heartbeat_timeout is None else heartbeat_timeout
        )
        self.task_timeout = task_timeout
        self.register_timeout = register_timeout
        self.handshake_timeout = handshake_timeout
        self.max_frame = max_frame
        self.inline_fallback = inline_fallback
        self.max_task_retries = max_task_retries

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: deque[_Task] = deque()
        self._inflight: dict[int, _Task] = {}
        self._workers: dict[str, _Worker] = {}
        self._task_ids = itertools.count()
        self._worker_ids = itertools.count()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._procs: list[subprocess.Popen] = []
        self._stop = threading.Event()
        self._started = False
        self._degraded = False
        self._warned_inline = False
        self._last_worker_seen = time.monotonic()
        self._counters = {"done": 0, "requeued": 0, "evicted": 0, "inline": 0}

    @staticmethod
    def _normalize(address) -> tuple[str, int]:
        if isinstance(address, str):
            return parse_address(address)
        host, port = address
        return str(host), int(port)

    @classmethod
    def from_env(cls, jobs: int = 2, **kwargs) -> "DistributedBackend":
        """Build with ``connect`` taken from ``REPRO_DISTRIBUTED_CONNECT``
        and the shared token from ``REPRO_AUTH_TOKEN``.

        This is how ``Comet(backend="distributed")`` picks up security
        with zero code changes: export the token and every link —
        coordinator listener, dialed workers, spawned local workers —
        authenticates with it.
        """
        if "connect" not in kwargs:
            raw = os.environ.get(CONNECT_ENV, "")
            addresses = [part.strip() for part in raw.split(",") if part.strip()]
            kwargs["connect"] = addresses or None
        if "security" not in kwargs:
            token = load_token()
            if token is not None:
                kwargs["security"] = TransportSecurity(token=token)
        return cls(jobs, **kwargs)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int] | None:
        """``(host, port)`` of the coordinator's listener once started."""
        if self._listener is None:
            return None
        return self._listener.getsockname()[:2]

    def start(self) -> None:
        """Open the listener, dial/spawn workers, start service threads."""
        with self._lock:
            if self._started or self._degraded:
                return
            self._started = True
            self._stop.clear()
        try:
            self._listener = socket.create_server(self.listen, backlog=16)
        except OSError as exc:
            self._degrade(f"cannot listen on {format_address(self.listen)}: {exc}")
            return
        self._last_worker_seen = time.monotonic()
        self._spawn_thread(self._accept_loop, "repro-dist-accept")
        self._spawn_thread(self._dispatch_loop, "repro-dist-dispatch")
        self._spawn_thread(self._monitor_loop, "repro-dist-monitor")
        for address in self.connect:
            self._dial_worker(address)
        if self.spawn_workers > 0:
            try:
                self._spawn_local_workers(self.spawn_workers)
            except OSError as exc:
                self.shutdown()
                self._degrade(f"cannot spawn local workers: {exc}")

    def shutdown(self) -> None:
        """Stop serving: dismiss workers, fail leftovers, reap processes."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            self._stop.set()
            workers = list(self._workers.values())
            leftovers = list(self._pending) + list(self._inflight.values())
            self._pending.clear()
            self._inflight.clear()
            self._workers.clear()
            self._cond.notify_all()
        for task in leftovers:
            if not task.future.done():
                task.future.set_exception(
                    RuntimeError("distributed backend was shut down mid-task")
                )
        for worker in workers:
            try:
                worker.conn.send({"op": "shutdown"})
            except (OSError, FrameError):
                pass
            worker.conn.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        self._procs.clear()

    def _degrade(self, reason: str) -> None:
        self._degraded = True
        warnings.warn(
            f"distributed backend unavailable ({reason}); running tasks inline",
            RuntimeWarning,
            stacklevel=3,
        )

    def _spawn_thread(self, target: Callable, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _spawn_local_workers(self, count: int) -> None:
        """Launch ``count`` ``repro worker`` subprocesses at our listener."""
        host, port = self.address
        # The workers must import repro the way this process does, even
        # when it runs from a source tree that is not installed — put the
        # directory *containing* the repro package on their PYTHONPATH.
        package_parent = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_parent, env.get("PYTHONPATH")) if p
        )
        extra: list[str] = []
        if self.security is not None:
            if self.security.token:
                # Through the environment, never argv: /proc/<pid>/cmdline
                # is world-readable.
                env[AUTH_TOKEN_ENV] = self.security.token
            if self.security.serves_tls:
                # Our own certificate is the workers' CA: that pins it.
                extra += ["--tls-ca", self.security.certfile]
        for index in range(count):
            self._procs.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        f"{host}:{port}",
                        "--id",
                        f"local-{index}",
                        *extra,
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                )
            )

    def _dial_worker(self, address: tuple[str, int]) -> None:
        """Connect out to one listening worker (``connect`` topology)."""
        try:
            sock = socket.create_connection(address, timeout=self.handshake_timeout)
            if self.security is not None and self.security.dials_tls:
                sock = self.security.wrap_client(
                    sock, server_hostname=address[0]
                )
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach worker at {format_address(address)}: {exc}"
            ) from exc
        conn = JSONLineConnection(sock, self.max_frame)
        self._spawn_thread(
            lambda: self._serve_connection(conn), "repro-dist-reader"
        )

    # ------------------------------------------------------------------ #
    # worker connections
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set():
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed by shutdown
            if self.security is not None and self.security.serves_tls:
                # Handshake deferred to the reader thread — a hostile
                # peer must not stall the accept loop.
                try:
                    sock = self.security.wrap_server(sock)
                except OSError:
                    sock.close()
                    continue
            conn = JSONLineConnection(sock, self.max_frame)
            self._spawn_thread(
                lambda c=conn: self._serve_connection(c), "repro-dist-reader"
            )

    def _serve_connection(self, conn: JSONLineConnection) -> None:
        """Handshake one connection, then pump its frames until it dies."""
        if isinstance(conn.sock, ssl.SSLSocket) and conn.sock.server_side:
            conn.sock.settimeout(self.handshake_timeout)
            try:
                conn.sock.do_handshake()
            except OSError:
                conn.close()
                return  # peer does not speak TLS
        worker = self._handshake(conn)
        if worker is None:
            conn.close()
            return
        try:
            while not self._stop.is_set():
                try:
                    frame = conn.recv()
                except (FrameError, OSError):
                    break
                if frame is None:
                    break
                self._on_frame(worker, frame)
        finally:
            self._evict(worker, "connection lost")

    def _handshake(self, conn: JSONLineConnection) -> _Worker | None:
        conn.sock.settimeout(self.handshake_timeout)
        security = self.security
        try:
            hello = conn.recv()
            if not hello or hello.get("op") != "hello":
                return None
            if hello.get("protocol") != PROTOCOL_VERSION:
                conn.send(
                    {
                        "op": "goodbye",
                        "reason": f"protocol {hello.get('protocol')!r} "
                        f"unsupported (want {PROTOCOL_VERSION})",
                    }
                )
                return None
            welcome: dict = {"op": "welcome", "heartbeat": self.heartbeat}
            if security is not None and security.requires_auth:
                # Mutual challenge–response: answer the worker's nonce
                # (proving *we* hold the token before it will unpickle
                # anything from us), challenge it back, and verify its
                # proof before it is registered for dispatch.
                worker_nonce = hello.get("auth_nonce")
                if not isinstance(worker_nonce, str) or not worker_nonce:
                    conn.send(
                        {
                            "op": "goodbye",
                            "reason": "authentication required: configure "
                            "the shared token (repro worker --auth-token/"
                            f"--auth-token-file or {AUTH_TOKEN_ENV})",
                        }
                    )
                    return None
                coordinator_nonce = new_nonce()
                welcome["auth_mac"] = security.mac(
                    ROLE_COORDINATOR, worker_nonce
                )
                welcome["auth_nonce"] = coordinator_nonce
                conn.send(welcome)
                proof = conn.recv()
                if (
                    not proof
                    or proof.get("op") != "auth"
                    or not security.check_mac(
                        ROLE_WORKER, coordinator_nonce, proof.get("mac")
                    )
                ):
                    conn.send(
                        {"op": "goodbye", "reason": "invalid auth credential"}
                    )
                    return None
            else:
                conn.send(welcome)
        except (FrameError, OSError):
            return None
        conn.sock.settimeout(None)
        base = str(hello.get("worker") or conn.peer)
        with self._lock:
            worker_id = f"{base}#{next(self._worker_ids)}"
            worker = _Worker(worker_id, conn, int(hello.get("pid") or 0))
            self._workers[worker_id] = worker
            self._last_worker_seen = time.monotonic()
            self._cond.notify_all()
        return worker

    def _on_frame(self, worker: _Worker, frame: dict) -> None:
        with self._lock:
            worker.last_seen = time.monotonic()
            self._last_worker_seen = worker.last_seen
        op = frame.get("op")
        if op == "result":
            self._complete(worker, frame)
        # heartbeats only refresh last_seen, handled above

    def _complete(self, worker: _Worker, frame: dict) -> None:
        task_id = frame.get("id")
        with self._lock:
            task = self._inflight.pop(task_id, None)
            if task is None:
                # The monitor may have evicted-and-requeued this task a
                # moment before its (late) result landed; serve the
                # result rather than computing it again elsewhere.
                for queued in self._pending:
                    if queued.id == task_id:
                        task = queued
                        self._pending.remove(queued)
                        break
            if worker.current is task or (
                worker.current is not None and worker.current.id == task_id
            ):
                worker.current = None
            worker.done += 1
            self._counters["done"] += 1
            self._cond.notify_all()
        if task is None or task.future.done():
            return
        if frame.get("ok"):
            try:
                task.future.set_result(text_to_pickle(frame["payload"]))
            except Exception as exc:  # undecodable result payload
                task.future.set_exception(
                    RemoteTaskError(
                        {"type": type(exc).__name__, "message": str(exc)}
                    )
                )
        else:
            task.future.set_exception(
                RemoteTaskError(
                    frame.get("error") or {}, frame.get("traceback", "")
                )
            )

    def _evict(self, worker: _Worker, reason: str) -> None:
        """Drop a worker; requeue (or fail) the task it was running."""
        with self._lock:
            if worker.dead:
                return
            worker.dead = True
            self._workers.pop(worker.id, None)
            task, worker.current = worker.current, None
            requeue = None
            if task is not None and self._inflight.pop(task.id, None) is not None:
                task.attempts += 1
                if task.attempts > self.max_task_retries:
                    requeue = False
                else:
                    requeue = True
                    self._pending.appendleft(task)
                    self._counters["requeued"] += 1
            self._counters["evicted"] += 1
            self._cond.notify_all()
        worker.conn.close()
        if requeue is False and not task.future.done():
            task.future.set_exception(
                WorkerLostError(
                    f"task {task.id} lost {task.attempts} workers "
                    f"(last: {worker.id}, {reason})"
                )
            )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        tick = max(0.05, self.heartbeat / 2.0)
        while True:
            inline_task = None
            with self._lock:
                while not self._stop.is_set():
                    assignment = self._next_assignment()
                    if assignment is not None:
                        break
                    if self._pending and self._inline_due():
                        inline_task = self._pending.popleft()
                        self._counters["inline"] += 1
                        break
                    self._cond.wait(timeout=tick)
                else:
                    return
                if inline_task is None and assignment is not None:
                    task, worker = assignment
                    worker.current = task
                    task.started_at = time.monotonic()
                    self._inflight[task.id] = task
            if inline_task is not None:
                self._run_inline(inline_task)
                continue
            try:
                worker.conn.send(
                    {"op": "task", "id": task.id, "payload": task.payload}
                )
            except (OSError, FrameError):
                self._evict(worker, "send failed")

    def _next_assignment(self) -> tuple[_Task, _Worker] | None:
        if not self._pending:
            return None
        for worker in self._workers.values():
            if worker.current is None and not worker.dead:
                return self._pending.popleft(), worker
        return None

    def _inline_due(self) -> bool:
        """Whether queued work has waited long enough to run locally."""
        if not self.inline_fallback or self._workers:
            return False
        if time.monotonic() - self._last_worker_seen < self.register_timeout:
            return False
        if not self._warned_inline:
            self._warned_inline = True
            warnings.warn(
                "no distributed worker available for "
                f"{self.register_timeout:g}s; running queued tasks inline",
                RuntimeWarning,
                stacklevel=2,
            )
        return True

    def _run_inline(self, task: _Task) -> None:
        if task.future.done():
            return
        fn, args = task.call
        try:
            task.future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 — futures carry failures
            task.future.set_exception(exc)

    def _monitor_loop(self) -> None:
        tick = max(0.05, self.heartbeat / 2.0)
        while not self._stop.wait(tick):
            now = time.monotonic()
            stale: list[tuple[_Worker, str]] = []
            with self._lock:
                for worker in self._workers.values():
                    if now - worker.last_seen > self.heartbeat_timeout:
                        stale.append((worker, "heartbeat timeout"))
                    elif (
                        self.task_timeout is not None
                        and worker.current is not None
                        and now - worker.current.started_at > self.task_timeout
                    ):
                        stale.append((worker, "task timeout"))
            for worker, reason in stale:
                self._evict(worker, reason)

    # ------------------------------------------------------------------ #
    # the ExecutionBackend verbs
    # ------------------------------------------------------------------ #
    def _enqueue(self, fn: Callable, args: tuple) -> Future:
        task = _Task(
            next(self._task_ids), (fn, args), pickle_to_text((fn, args))
        )
        with self._lock:
            self._pending.append(task)
            self._cond.notify_all()
        return task.future

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """Apply ``fn`` to every task; results come back in task order.

        Tasks fan out across every registered worker; eviction and
        requeue keep the call running through worker deaths, and the
        inline fallback keeps it running with no workers at all.
        """
        tasks = list(tasks) if not isinstance(tasks, Sequence) else tasks
        if not tasks:
            return []
        if self._degraded:
            return [fn(task) for task in tasks]
        self.start()
        if self._degraded:  # start() may have just degraded
            return [fn(task) for task in tasks]
        futures = [self._enqueue(fn, (task,)) for task in tasks]
        return [future.result() for future in futures]

    def submit(self, fn: Callable, /, *args) -> Future:
        """Dispatch ``fn(*args)`` to the worker pool, returning its future."""
        if not self._degraded:
            self.start()
        if self._degraded:
            return ExecutionBackend.submit(self, fn, *args)
        return self._enqueue(fn, args)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def wait_for_workers(self, count: int, timeout: float = 30.0) -> int:
        """Block until ``count`` workers registered (returns live count)."""
        self.start()
        deadline = time.monotonic() + timeout
        with self._lock:
            while len(self._workers) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._degraded:
                    break
                self._cond.wait(timeout=remaining)
            return len(self._workers)

    def worker_info(self) -> list[dict]:
        """Snapshot of every live worker (id, pid, busy, tasks done)."""
        with self._lock:
            return [
                {
                    "id": w.id,
                    "pid": w.pid,
                    "busy": w.current is not None,
                    "tasks_done": w.done,
                }
                for w in self._workers.values()
            ]

    def stats(self) -> dict:
        """Queue depth, worker counts, and lifetime task counters."""
        with self._lock:
            return {
                "backend": self.name,
                "nominal_workers": self.workers,
                "live_workers": len(self._workers),
                "spawned_processes": len(self._procs),
                "pending": len(self._pending),
                "inflight": len(self._inflight),
                "degraded": self._degraded,
                **self._counters,
            }

    def __repr__(self) -> str:
        return (
            f"DistributedBackend(jobs={self.workers}, "
            f"live={len(self._workers)}, address={self.address})"
        )


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #
def _execute_frame(frame: dict) -> dict:
    """Run one task frame, rendering the outcome as a result frame."""
    try:
        fn, args = text_to_pickle(frame["payload"])
        result = fn(*args)
        return {
            "op": "result",
            "id": frame.get("id"),
            "ok": True,
            "payload": pickle_to_text(result),
        }
    except Exception as exc:  # noqa: BLE001 — shipped back, never fatal here
        return {
            "op": "result",
            "id": frame.get("id"),
            "ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)},
            "traceback": traceback.format_exc(limit=30),
        }


def worker_serve(
    conn: JSONLineConnection,
    *,
    worker_id: str = "worker",
    security: TransportSecurity | None = None,
    _fail_after_tasks: int | None = None,
    _mute: bool = False,
) -> int:
    """Serve one coordinator over an established connection.

    Performs the hello/welcome handshake — *mutual* when ``security``
    carries a token: the hello ships a challenge nonce the coordinator
    must answer in its welcome, and an unproven coordinator is refused
    **before the task loop starts**, so this worker never unpickles a
    payload from a peer that has not demonstrated token possession.
    Then starts the heartbeat thread (which beats *during* task
    execution — liveness is orthogonal to progress) and loops
    task → result until the coordinator says ``shutdown`` or the
    connection ends.  Returns the number of tasks completed.

    ``_fail_after_tasks`` and ``_mute`` are failure-injection hooks for
    the fault-tolerance tests: the former makes the worker drop its
    connection (simulated crash) when task ``n + 1`` arrives, the latter
    suppresses heartbeats so eviction-by-silence can be exercised.
    """
    try:
        challenge = (
            new_nonce()
            if security is not None and security.requires_auth
            else None
        )
        hello = {
            "op": "hello",
            "worker": worker_id,
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
        }
        if challenge is not None:
            hello["auth_nonce"] = challenge
        conn.send(hello)
        welcome = conn.recv()
        if not welcome or welcome.get("op") != "welcome":
            reason = (welcome or {}).get("reason", "no welcome frame")
            raise ConnectionError(f"coordinator rejected worker: {reason}")
        if challenge is not None:
            if not security.check_mac(
                ROLE_COORDINATOR, challenge, welcome.get("auth_mac")
            ):
                raise ConnectionError(
                    "coordinator failed authentication: its welcome does "
                    "not prove possession of the shared token; refusing to "
                    "accept tasks (payloads are pickles — code execution)"
                )
            coordinator_nonce = welcome.get("auth_nonce")
            if not isinstance(coordinator_nonce, str) or not coordinator_nonce:
                raise ConnectionError(
                    "coordinator sent no auth challenge of its own; "
                    "refusing a one-sided handshake"
                )
            conn.send(
                {
                    "op": "auth",
                    "mac": security.mac(ROLE_WORKER, coordinator_nonce),
                }
            )
    except BaseException:
        # A refused peer must see EOF, not a half-open socket it can
        # keep feeding frames into.
        conn.close()
        raise
    interval = float(welcome.get("heartbeat", 1.0))
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(interval):
            try:
                conn.send({"op": "heartbeat"})
            except (OSError, FrameError):
                return

    if not _mute:
        threading.Thread(
            target=_beat, name=f"{worker_id}-heartbeat", daemon=True
        ).start()
    done = 0
    try:
        while True:
            frame = conn.recv()
            if frame is None or frame.get("op") == "shutdown":
                break
            if frame.get("op") != "task":
                continue
            if _fail_after_tasks is not None and done >= _fail_after_tasks:
                conn.close()  # simulated crash: vanish without replying
                break
            conn.send(_execute_frame(frame))
            done += 1
    finally:
        stop_beating.set()
        conn.close()
    return done


def run_worker(
    *,
    connect: str | tuple[str, int],
    worker_id: str = "worker",
    retries: int = 60,
    backoff: float = 0.25,
    max_frame: int = DEFAULT_MAX_TASK_FRAME,
    security: TransportSecurity | None = None,
) -> int:
    """Dial a coordinator (with bounded connect retries) and serve it.

    The retry loop tolerates the common startup race — worker processes
    launched a moment before the coordinator binds its listener — by
    retrying refused connections with linear backoff for up to
    ``retries × backoff`` seconds.  A failed TLS handshake is *not*
    retried (it is a configuration mismatch, not a startup race).
    Returns the number of tasks served.
    """
    address = (
        parse_address(connect) if isinstance(connect, str) else connect
    )
    last_error: OSError | None = None
    for attempt in range(max(1, retries)):
        try:
            sock = socket.create_connection(address, timeout=30.0)
            break
        except OSError as exc:
            last_error = exc
            time.sleep(backoff * min(attempt + 1, 8))
    else:
        raise ConnectionError(
            f"cannot reach coordinator at {format_address(address)} "
            f"after {retries} attempts: {last_error}"
        )
    if security is not None and security.dials_tls:
        try:
            sock = security.wrap_client(sock, server_hostname=address[0])
        except OSError as exc:
            sock.close()
            raise ConnectionError(
                f"TLS handshake with coordinator at "
                f"{format_address(address)} failed: {exc}"
            ) from exc
    sock.settimeout(None)
    return worker_serve(
        JSONLineConnection(sock, max_frame),
        worker_id=worker_id,
        security=security,
    )


def listen_worker(
    *,
    listen: str | tuple[str, int],
    worker_id: str = "worker",
    max_frame: int = DEFAULT_MAX_TASK_FRAME,
    once: bool = False,
    ready: Callable[[tuple[str, int]], None] | None = None,
    security: TransportSecurity | None = None,
    insecure: bool = False,
) -> int:
    """Listen for coordinators and serve them one at a time.

    The inverted topology: the worker owns a port
    (``repro worker --listen``) and coordinators dial in via their
    ``connect=[...]`` option.  ``ready`` is called once with the bound
    address (the CLI prints its readiness line from it).  Serves
    coordinators sequentially until interrupted, or exactly one with
    ``once=True``.  Returns the total number of tasks served.

    Fail-closed: a non-loopback ``listen`` without a shared token
    raises :class:`ValueError` before the socket is even bound — this
    path unpickles whatever an accepted peer sends — unless
    ``insecure`` explicitly accepts the exposure.
    """
    address = parse_address(listen) if isinstance(listen, str) else listen
    token = security.token if security is not None else None
    if not token and not insecure and not is_loopback_host(address[0]):
        raise ValueError(
            f"refusing to listen on non-loopback host {address[0]!r} "
            "without authentication: the task protocol unpickles payloads, "
            "which is code execution for any peer that can reach --listen. "
            f"Set --auth-token/--auth-token-file (or {AUTH_TOKEN_ENV}), "
            "or pass --insecure to accept the risk."
        )
    total = 0
    with socket.create_server(address, backlog=2) as listener:
        if ready is not None:
            ready(listener.getsockname()[:2])
        while True:
            sock, _ = listener.accept()
            sock.settimeout(None)
            if security is not None and security.serves_tls:
                try:
                    sock = security.wrap_server(sock)
                    sock.settimeout(30.0)
                    sock.do_handshake()
                    sock.settimeout(None)
                except OSError:
                    sock.close()
                    continue  # peer does not speak TLS
            try:
                total += worker_serve(
                    JSONLineConnection(sock, max_frame),
                    worker_id=worker_id,
                    security=security,
                )
            except (ConnectionError, FrameError, OSError):
                pass  # a vanished coordinator ends its pairing, not the worker
            if once:
                return total
