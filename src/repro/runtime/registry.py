"""Backend registry: select an execution backend by name.

Mirrors the ML registry idiom (``repro.ml.registry``): a name → factory
mapping with a ``make_backend`` constructor used by :class:`~repro.core.
comet.Comet`, the experiment runner, and the CLI's ``--backend`` flag.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)

__all__ = ["register_backend", "make_backend", "available_backends"]

#: name → factory taking the worker count.
_BACKENDS: dict[str, Callable[[int], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[int], ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites silently)."""
    _BACKENDS[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def make_backend(
    backend: str | ExecutionBackend = "serial", jobs: int = 1
) -> ExecutionBackend:
    """Instantiate a backend by name, with serial auto-fallback.

    Parameters
    ----------
    backend:
        Registry name, or an already-constructed backend (returned as-is
        so callers can inject custom implementations).
    jobs:
        Worker count.  ``jobs <= 1`` always yields a
        :class:`SerialBackend` — one worker is serial execution, so no
        pool is ever paid for it.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    factory = _BACKENDS.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        )
    if jobs <= 1:
        return SerialBackend()
    return factory(jobs)


register_backend("serial", lambda jobs: SerialBackend())
register_backend("thread", lambda jobs: ThreadBackend(jobs))
register_backend("process", lambda jobs: ProcessBackend(jobs))
