"""Backend registry: select an execution backend by name.

Mirrors the ML registry idiom (``repro.ml.registry``): a name → factory
mapping with a ``make_backend`` constructor used by :class:`~repro.core.
comet.Comet`, the experiment runner, and the CLI's ``--backend`` flag.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.runtime.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.runtime.distributed import DistributedBackend

__all__ = ["register_backend", "make_backend", "available_backends"]


class _Entry(NamedTuple):
    factory: Callable[[int], ExecutionBackend]
    #: Whether ``jobs <= 1`` should yield a :class:`SerialBackend`
    #: instead of calling the factory.  True for the in-process pools
    #: (one worker *is* serial execution); False for backends whose
    #: workers live elsewhere — one *remote* worker is still remote.
    serial_when_single: bool


#: name → registered entry.
_BACKENDS: dict[str, _Entry] = {}


def register_backend(
    name: str,
    factory: Callable[[int], ExecutionBackend],
    *,
    serial_when_single: bool = True,
) -> None:
    """Register a backend factory under ``name`` (overwrites silently)."""
    _BACKENDS[name] = _Entry(factory, serial_when_single)


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def make_backend(
    backend: str | ExecutionBackend = "serial", jobs: int = 1
) -> ExecutionBackend:
    """Instantiate a backend by name, with serial auto-fallback.

    Parameters
    ----------
    backend:
        Registry name, or an already-constructed backend (returned as-is
        so callers can inject custom implementations).
    jobs:
        Worker count.  ``jobs <= 1`` yields a :class:`SerialBackend` for
        the in-process pools — one worker is serial execution, so no
        pool is ever paid for it.  Backends registered with
        ``serial_when_single=False`` (``"distributed"``) are exempt:
        their single worker runs somewhere a serial fallback cannot.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    entry = _BACKENDS.get(backend)
    if entry is None:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {available_backends()}"
        )
    if jobs <= 1 and entry.serial_when_single:
        return SerialBackend()
    return entry.factory(max(jobs, 1))


register_backend("serial", lambda jobs: SerialBackend())
register_backend("thread", lambda jobs: ThreadBackend(jobs))
register_backend("process", lambda jobs: ProcessBackend(jobs))
register_backend(
    "distributed",
    lambda jobs: DistributedBackend.from_env(jobs),
    serial_when_single=False,
)
