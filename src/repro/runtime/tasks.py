"""Picklable units of work for the execution backends.

A :class:`FitScoreTask` freezes everything one model evaluation needs —
the estimator template, the label column, the task kind, and the train /
test frames — so :func:`run_fit_score_task` is a pure function of its
payload.  That purity is what lets the backends run tasks in any order
(or in other processes) while the session stays bit-identical to a
serial run: every data state and every random draw happened *before* the
task was built.

Task frames are copy-on-write (:mod:`repro.frame`): states produced by
one E1 sweep share their untouched columns, so pickling a batch of tasks
serializes each shared column once (pickle's memo follows object
identity) and the salted identity tokens survive the trip. Worker
processes therefore see the *same* token on the same content across
tasks and sweeps, and their featurization caches hit exactly like the
parent's would — without shipping any cache state.

The same purity is what makes the distributed backend's fault tolerance
safe: :func:`run_fit_score_task` is importable by name in any worker
process (pickle-by-reference) and has no side effects, so a task whose
worker died mid-run can simply be requeued on another worker — the rerun
produces byte-identical results because every input was frozen into the
payload at build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.frame import DataFrame
from repro.ml.base import BaseEstimator
from repro.ml.pipeline import TabularModel

__all__ = ["FitScoreTask", "run_fit_score_task"]


@dataclass
class FitScoreTask:
    """One "fit on this frame, score on that frame" evaluation.

    Attributes
    ----------
    estimator:
        Unfitted estimator template (cloned inside the task run).
    label:
        Label column name.
    train, test:
        The (possibly polluted) data states to fit and score on.
    task:
        ``"classification"`` or ``"regression"``.
    tag:
        Opaque caller bookkeeping (e.g. ``(candidate_index, position)``);
        carried through untouched so results can be reassembled.
    """

    estimator: BaseEstimator
    label: str
    train: DataFrame
    test: DataFrame
    task: str = "classification"
    tag: Any = field(default=None, compare=False)

    def run(self) -> float:
        """Execute the evaluation and return the task metric."""
        model = TabularModel(self.estimator, label=self.label, task=self.task)
        return model.fit_score(self.train, self.test)


def run_fit_score_task(task: FitScoreTask) -> float:
    """Module-level runner (process backends need a picklable callable)."""
    return task.run()
