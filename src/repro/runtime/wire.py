"""Line-delimited-JSON wire framing shared across the networked layers.

One frame is one JSON object on one ``\\n``-terminated line — the format
``repro.service.transport`` introduced for the TCP service and the
distributed execution backend (:mod:`repro.runtime.distributed`) reuses
for its coordinator↔worker protocol.  Keeping the framing in the runtime
package (the lowest networked layer) lets both import it without a
dependency cycle: the service already builds on ``repro.runtime``.

Helpers come in three groups:

- *frames*: :func:`encode_frame` / :func:`read_frame` /
  :class:`JSONLineConnection` move whole JSON-object frames with a hard
  size limit; violations raise :class:`FrameError` (servers render it
  with :func:`frame_error`, peers treat it as a protocol breach).
- *payloads*: :func:`pickle_to_text` / :func:`text_to_pickle` embed
  binary pickles (tasks, results) in JSON frames via base64.  Only
  exchange pickles with peers that have proven themselves: unpickling
  hostile bytes is code execution.  :mod:`repro.security` supplies the
  proof — a mutual HMAC handshake gates the distributed protocol before
  any payload is decoded, and optional TLS wraps the socket *beneath*
  this framing, so nothing in this module changes when a link is
  secured.
- *addresses*: :func:`parse_address` / :func:`format_address` for the
  ``host:port`` strings the CLI and environment variables use.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import threading

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FrameError",
    "frame_error",
    "encode_frame",
    "read_frame",
    "JSONLineConnection",
    "pickle_to_text",
    "text_to_pickle",
    "parse_address",
    "format_address",
]

#: Upper bound on one service-request frame (bytes) before rejection.
DEFAULT_MAX_FRAME = 1_000_000

#: Upper bound on one coordinator↔worker frame.  Task frames carry
#: base64-pickled data states, so they dwarf service requests.
DEFAULT_MAX_TASK_FRAME = 256_000_000


class FrameError(ValueError):
    """A frame violated the protocol (too big, truncated, not JSON)."""


def frame_error(message: str) -> dict:
    """The structured error response servers send for a bad frame."""
    return {
        "ok": False,
        "error": {"type": "FrameError", "message": message, "code": "bad_frame"},
    }


def encode_frame(obj: dict) -> bytes:
    """Serialize one frame: compact JSON plus the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def read_frame(rfile, limit: int = DEFAULT_MAX_FRAME) -> dict | None:
    """Read one frame from a buffered binary reader.

    Returns ``None`` on clean EOF between frames.  Raises
    :class:`FrameError` for oversized or truncated lines, invalid JSON,
    and non-object frames — the caller decides whether that ends the
    connection (peer protocol) or becomes an error response (server
    protocol, which keeps its own finer-grained loop in
    ``repro.service.transport``).
    """
    line = rfile.readline(limit + 1)
    if not line:
        return None
    if len(line) > limit:
        raise FrameError(f"frame exceeds {limit} bytes")
    if not line.endswith(b"\n"):
        raise FrameError("truncated frame (EOF before newline)")
    try:
        frame = json.loads(line.decode("utf-8", errors="replace"))
    except json.JSONDecodeError as exc:
        raise FrameError(f"invalid JSON frame: {exc}") from None
    if not isinstance(frame, dict):
        raise FrameError("frame must be a JSON object")
    return frame


class JSONLineConnection:
    """One socket speaking JSON-object lines in both directions.

    Sends are serialized by a lock so frames from different threads
    (e.g. a worker's heartbeat thread racing its result writes) never
    interleave; reads are expected from a single owning thread.
    """

    def __init__(self, sock: socket.socket, max_frame: int = DEFAULT_MAX_TASK_FRAME):
        self.sock = sock
        self.max_frame = max_frame
        self._rfile = sock.makefile("rb")
        self._send_lock = threading.Lock()

    def send(self, obj: dict) -> None:
        """Write one frame (thread-safe; raises ``OSError`` when broken)."""
        payload = encode_frame(obj)
        if len(payload) > self.max_frame:
            raise FrameError(
                f"outgoing frame of {len(payload)} bytes exceeds {self.max_frame}"
            )
        with self._send_lock:
            self.sock.sendall(payload)

    def recv(self) -> dict | None:
        """Read one frame (``None`` on clean EOF; ``FrameError`` on abuse)."""
        return read_frame(self._rfile, self.max_frame)

    def close(self) -> None:
        """Tear the connection down (idempotent, swallows socket errors)."""
        for closer in (self._rfile.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass

    @property
    def peer(self) -> str:
        """``host:port`` of the remote end (best-effort, for logs)."""
        try:
            return format_address(self.sock.getpeername()[:2])
        except OSError:
            return "?"


# ---------------------------------------------------------------------- #
# binary payloads inside JSON frames
# ---------------------------------------------------------------------- #
def pickle_to_text(obj) -> str:
    """Base64 text of ``obj``'s pickle, embeddable in a JSON frame."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def text_to_pickle(text: str):
    """Rehydrate a :func:`pickle_to_text` payload (trusted peers only)."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# ---------------------------------------------------------------------- #
# addresses
# ---------------------------------------------------------------------- #
def parse_address(text: str) -> tuple[str, int]:
    """Parse ``host:port`` (host defaults to loopback when omitted)."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected host:port, got {text!r}")
    return host or "127.0.0.1", int(port)


def format_address(address: tuple[str, int]) -> str:
    """Format ``(host, port)`` back into the ``host:port`` string."""
    return f"{address[0]}:{address[1]}"
