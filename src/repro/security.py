"""Transport security shared by every networked layer.

Both networked subsystems — the service transports
(:mod:`repro.service.transport`) and the distributed execution backend
(:mod:`repro.runtime.distributed`) — move requests and pickled task
payloads over plain sockets.  This module is the one place their
security knobs live, so ``serve`` and ``repro worker`` harden the same
way:

- **Shared-token authentication.**  A single secret string (generate
  one with :func:`generate_token`) is configured on every peer —
  ``serve --auth-token/--auth-token-file``, ``repro worker
  --auth-token/--auth-token-file``, or the ``REPRO_AUTH_TOKEN``
  environment variable (:func:`load_token`).  Socket peers prove
  possession via an HMAC-SHA256 challenge–response
  (:func:`compute_mac` / :func:`verify_mac` over a single-use
  :func:`new_nonce`), so the token itself never crosses the wire on
  the JSON-lines transports; the HTTP adapter uses a conventional
  ``Authorization: Bearer`` header instead (TLS recommended there).
  Unauthenticated peers get the structured ``code: "unauthorized"``
  error before any verb is dispatched or any pickle is decoded.
- **Optional TLS.**  :class:`TransportSecurity` wraps sockets through
  ``ssl.SSLContext`` at the socket layer, underneath the JSON-lines
  framing (:mod:`repro.runtime.wire` is unchanged).  Self-signed
  deployments pin the peer certificate by handing the listener's cert
  to the dialing side as its CA bundle (``CometClient(tls=...)``,
  ``worker --tls-ca``).
- **Fail-closed binds.**  Binding a non-loopback interface without a
  token refuses to start (:func:`serve_security_error` /
  :func:`worker_security_error`) unless ``--insecure`` is passed —
  the distributed task protocol exchanges pickles, which are code
  execution for whoever can reach the port.

Everything here is stdlib-only (``hmac``, ``secrets``, ``ssl``) and
imports nothing from the rest of ``repro``, so the lowest networked
layer (``repro.runtime``) can depend on it without cycles.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import secrets
import socket
import ssl
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "AUTH_TOKEN_ENV",
    "TransportSecurity",
    "load_token",
    "generate_token",
    "new_nonce",
    "compute_mac",
    "verify_mac",
    "is_loopback_host",
    "serve_security_error",
    "worker_security_error",
    "ROLE_CLIENT",
    "ROLE_COORDINATOR",
    "ROLE_WORKER",
]

#: Environment variable consulted by :func:`load_token` when neither an
#: explicit token nor a token file is given.
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"

#: Challenge–response role labels.  The role is mixed into the MAC so a
#: transcript from one direction (say, a worker proving itself to a
#: coordinator) can never be replayed as the other direction's proof.
ROLE_CLIENT = "client"
ROLE_COORDINATOR = "coordinator"
ROLE_WORKER = "worker"


def generate_token(nbytes: int = 32) -> str:
    """A fresh random shared token (hex; safe for files and env vars)."""
    return secrets.token_hex(nbytes)


def new_nonce() -> str:
    """A single-use challenge nonce (hex)."""
    return secrets.token_hex(16)


def compute_mac(token: str, role: str, nonce: str) -> str:
    """HMAC-SHA256 proof that ``role`` holds ``token``, bound to ``nonce``."""
    message = f"comet-auth:{role}:{nonce}".encode("utf-8")
    return hmac.new(token.encode("utf-8"), message, hashlib.sha256).hexdigest()


def verify_mac(token: str, role: str, nonce: str, mac) -> bool:
    """Constant-time check of a :func:`compute_mac` proof."""
    if not isinstance(mac, str) or not mac:
        return False
    return hmac.compare_digest(compute_mac(token, role, nonce), mac)


def load_token(
    token: str | None = None,
    token_file: str | Path | None = None,
    *,
    env: bool = True,
) -> str | None:
    """Resolve the shared auth token from flag, file, or environment.

    Precedence: an explicit ``token`` wins, then ``token_file`` (first
    line, stripped — the file should be ``chmod 600``), then the
    ``REPRO_AUTH_TOKEN`` environment variable.  Returns ``None`` when no
    source is configured; raises :class:`ValueError` when a configured
    source yields an empty token (an empty secret is a misconfiguration,
    never a valid credential).
    """
    if token is not None:
        cleaned = token.strip()
        if not cleaned:
            raise ValueError("auth token is empty")
        return cleaned
    if token_file is not None:
        text = Path(token_file).read_text(encoding="utf-8").strip()
        if not text:
            raise ValueError(f"auth token file {token_file} is empty")
        return text.splitlines()[0].strip()
    if env:
        raw = os.environ.get(AUTH_TOKEN_ENV)
        if raw is not None:
            cleaned = raw.strip()
            if not cleaned:
                raise ValueError(f"{AUTH_TOKEN_ENV} is set but empty")
            return cleaned
    return None


def is_loopback_host(host: str) -> bool:
    """Whether ``host`` names only the loopback interface.

    Wildcard binds (``0.0.0.0``, ``::``, the empty string) include
    non-loopback interfaces and therefore return False — the fail-closed
    checks treat them as remote-reachable.
    """
    if host in ("localhost", "::1"):
        return True
    if host.startswith("127."):
        return True
    return False


@dataclass(frozen=True)
class TransportSecurity:
    """The security configuration one networked peer runs with.

    Parameters
    ----------
    token:
        Shared secret for peer authentication (``None`` disables auth).
    certfile, keyfile:
        PEM certificate/key presented when this peer accepts TLS
        connections (server side).  ``keyfile`` may be ``None`` when the
        certificate file also contains the key.
    cafile:
        CA bundle used to verify the remote end when this peer *dials*
        TLS connections.  For self-signed deployments, point it at the
        listener's certificate itself — that pins the exact cert.
    tls:
        Whether dialed connections use TLS.  ``None`` (default) infers
        it from ``cafile``; pass ``True`` with no ``cafile`` to verify
        against the system CA store.
    verify:
        Set False to skip certificate verification on dialed
        connections (testing only; the token still authenticates).
    """

    token: str | None = None
    certfile: str | None = None
    keyfile: str | None = None
    cafile: str | None = None
    tls: bool | None = None
    verify: bool = True

    # ------------------------------------------------------------------ #
    # capability flags
    # ------------------------------------------------------------------ #
    @property
    def requires_auth(self) -> bool:
        """Whether peers must pass the token challenge."""
        return bool(self.token)

    @property
    def serves_tls(self) -> bool:
        """Whether accepted connections are wrapped in TLS."""
        return self.certfile is not None

    @property
    def dials_tls(self) -> bool:
        """Whether outgoing connections are wrapped in TLS."""
        if self.tls is not None:
            return self.tls
        return self.cafile is not None

    # ------------------------------------------------------------------ #
    # challenge–response
    # ------------------------------------------------------------------ #
    def mac(self, role: str, nonce: str) -> str:
        """This peer's proof for ``nonce`` (requires a token)."""
        if not self.token:
            raise ValueError("no auth token configured")
        return compute_mac(self.token, role, nonce)

    def check_mac(self, role: str, nonce: str, mac) -> bool:
        """Verify a peer's proof (False when no token is configured)."""
        if not self.token:
            return False
        return verify_mac(self.token, role, nonce, mac)

    def check_bearer(self, header) -> bool:
        """Verify an HTTP ``Authorization: Bearer <token>`` header."""
        if not self.token or not isinstance(header, str):
            return False
        scheme, _, credential = header.partition(" ")
        if scheme.lower() != "bearer":
            return False
        return hmac.compare_digest(self.token, credential.strip())

    # ------------------------------------------------------------------ #
    # TLS wrapping (the framing above the socket is unchanged)
    # ------------------------------------------------------------------ #
    def server_context(self) -> ssl.SSLContext:
        """The ``SSLContext`` used for accepted connections."""
        if self.certfile is None:
            raise ValueError("no TLS certificate configured")
        context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        context.load_cert_chain(self.certfile, self.keyfile)
        return context

    def client_context(self) -> ssl.SSLContext:
        """The ``SSLContext`` used for dialed connections."""
        context = ssl.create_default_context(cafile=self.cafile)
        if not self.verify:
            context.check_hostname = False
            context.verify_mode = ssl.CERT_NONE
        return context

    def wrap_server(self, sock: socket.socket) -> ssl.SSLSocket:
        """Wrap an accepted socket; the handshake is deferred.

        ``do_handshake_on_connect=False`` keeps the (potentially slow or
        hostile) handshake out of the accept loop — the per-connection
        handler performs it on its own thread via ``do_handshake()``.
        """
        return self.server_context().wrap_socket(
            sock, server_side=True, do_handshake_on_connect=False
        )

    def wrap_client(
        self, sock: socket.socket, server_hostname: str
    ) -> ssl.SSLSocket:
        """Wrap a dialed socket (handshake happens immediately)."""
        return self.client_context().wrap_socket(
            sock, server_hostname=server_hostname
        )


# ---------------------------------------------------------------------- #
# fail-closed bind policy
# ---------------------------------------------------------------------- #
def serve_security_error(
    host: str,
    *,
    token: str | None,
    tls: bool,
    http: bool = False,
    insecure: bool = False,
) -> str | None:
    """Why a ``serve`` bind must refuse to start, or ``None`` if it may.

    Non-loopback binds require a token (any peer that can reach the port
    could otherwise drive — and shut down — the service), and a
    non-loopback HTTP bind additionally requires TLS (the Bearer token
    would cross the network in cleartext).  ``insecure`` waives both.
    """
    if insecure or is_loopback_host(host):
        return None
    if not token:
        return (
            f"refusing to serve on non-loopback host {host!r} without "
            "authentication: any peer that can reach the port could drive "
            "or shut down the service. Set --auth-token/--auth-token-file "
            f"(or {AUTH_TOKEN_ENV}), or pass --insecure to accept the risk."
        )
    if http and not tls:
        return (
            f"refusing to serve HTTP on non-loopback host {host!r} without "
            "TLS: the Authorization bearer token would cross the network "
            "in cleartext. Set --tls-cert/--tls-key, or pass --insecure "
            "to accept the risk."
        )
    return None


def worker_security_error(
    host: str,
    *,
    token: str | None,
    insecure: bool = False,
) -> str | None:
    """Why a ``repro worker --listen`` bind must refuse, or ``None``.

    A listening worker unpickles task payloads from whoever completes
    the handshake — arbitrary code execution — so a non-loopback bind
    without a token is never allowed to start silently.
    """
    if insecure or is_loopback_host(host):
        return None
    if not token:
        return (
            f"refusing to listen on non-loopback host {host!r} without "
            "authentication: the task protocol unpickles payloads, which "
            "is code execution for any peer that can reach --listen. Set "
            f"--auth-token/--auth-token-file (or {AUTH_TOKEN_ENV}), or "
            "pass --insecure to accept the risk."
        )
    return None
