"""Serving façade: many named cleaning sessions over one shared backend.

Built on the session protocol (``repro.session``): the service holds a
registry of named :class:`~repro.session.CleaningSession` objects, all
dispatching their estimation sweeps through a single shared
``repro.runtime`` backend, and exposes JSON request/response handlers
(``create`` / ``recommend`` / ``step`` / ``run`` / ``status`` /
``result`` / ``checkpoint`` / ``close``).

Iteration verbs run on a bounded :class:`SessionScheduler` worker pool
keyed by session, per-session budgets (:class:`SessionQuotas`) are
enforced at the verb layer, and three transports carry the verbs: the
JSON-lines stream loop (CLI ``serve`` on stdio), the line-delimited-JSON
:class:`CometTCPServer` (CLI ``serve --port``), and the minimal
:class:`CometHTTPServer` adapter (``serve --port --http``).
:class:`CometClient` is the programmatic TCP client.

The networked transports take a
:class:`~repro.security.TransportSecurity` (shared-token HMAC auth +
optional TLS); unauthorized requests surface as
:class:`UnauthorizedError` payloads without consuming quota.
"""

from repro.service.quotas import (
    QuotaExceededError,
    ServiceError,
    SessionBusyError,
    SessionQuotas,
    UnauthorizedError,
)
from repro.service.scheduler import SessionScheduler
from repro.service.service import (
    CometService,
    dispatch_line,
    parse_request,
    serve_stream,
)
from repro.service.transport import (
    CometClient,
    CometClientError,
    CometConnectionError,
    CometHTTPServer,
    CometTCPServer,
)

__all__ = [
    "CometService",
    "serve_stream",
    "dispatch_line",
    "parse_request",
    "SessionScheduler",
    "SessionQuotas",
    "ServiceError",
    "QuotaExceededError",
    "SessionBusyError",
    "UnauthorizedError",
    "CometTCPServer",
    "CometHTTPServer",
    "CometClient",
    "CometClientError",
    "CometConnectionError",
]
