"""Serving façade: many named cleaning sessions over one shared backend.

Built on the session protocol (``repro.session``): the service holds a
registry of named :class:`~repro.session.CleaningSession` objects, all
dispatching their estimation sweeps through a single shared
``repro.runtime`` backend, and exposes JSON request/response handlers
(``create`` / ``recommend`` / ``step`` / ``run`` / ``status`` /
``checkpoint`` / ``close``) plus a JSON-lines stream loop for the CLI's
``serve`` subcommand.
"""

from repro.service.service import CometService, serve_stream

__all__ = ["CometService", "serve_stream"]
