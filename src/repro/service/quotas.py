"""Per-session budgets and structured service errors.

The service enforces quotas at the *verb* layer — the only place every
path into a session (stdio, TCP, HTTP, programmatic ``handle``) funnels
through — so a misbehaving client exhausts its own allowance, never the
process. Three knobs:

- ``max_sessions`` — concurrent sessions one client may hold open;
- ``max_iterations`` — estimation sweeps one session may consume over
  its lifetime (checked before each sweep, so exhaustion always lands
  on a clean iteration boundary: ``status`` and ``checkpoint`` keep
  working afterwards);
- ``max_seconds`` — accumulated engine wall-clock one session may burn
  in iteration verbs (same boundary guarantee);
- ``max_cache_bytes`` — process-wide byte budget for the shared
  featurization/FD caches (:mod:`repro.cache`). Unlike the other knobs
  it is enforced by *eviction*, never by erroring a verb: exceeding it
  costs recomputation, not availability.

Failures surface as :class:`ServiceError` subclasses, which the JSON
layer renders as structured error objects
(``{"type", "code", "message", "details"}``) instead of bare strings —
machine clients branch on ``code``, humans read ``message``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SessionQuotas",
    "ServiceError",
    "QuotaExceededError",
    "SessionBusyError",
    "UnauthorizedError",
    "error_payload",
]


class ServiceError(Exception):
    """Base of service-level failures with a machine-readable payload."""

    #: Stable machine-readable discriminator (subclasses override).
    code = "service_error"

    def __init__(self, message: str, **details) -> None:
        super().__init__(message)
        self.details = details


class QuotaExceededError(ServiceError):
    """A per-session or per-client quota is exhausted.

    ``details`` names the quota plus its limit and observed usage, so a
    client can distinguish "stop stepping this session" from "close a
    session before opening another".
    """

    code = "quota_exceeded"


class SessionBusyError(ServiceError):
    """An iteration verb raced an in-flight one on the same session."""

    code = "session_busy"


class UnauthorizedError(ServiceError):
    """The caller has not (or not successfully) authenticated.

    Raised/rendered by the transports *before* a verb is dispatched, so
    an unauthorized request never consumes quota, touches the scheduler,
    or reaches session state. ``details`` may carry the mechanism the
    transport expects (``auth`` verb challenge–response over TCP,
    ``Authorization: Bearer`` over HTTP).
    """

    code = "unauthorized"


def error_payload(exc: BaseException) -> dict:
    """The structured JSON error object for one failure."""
    payload = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, ServiceError):
        payload["code"] = exc.code
        if exc.details:
            payload["details"] = exc.details
    return payload


@dataclass(frozen=True)
class SessionQuotas:
    """Resource limits the service enforces per client and per session.

    ``None`` disables a limit (the default: a trusted local service).
    The instance is immutable and shared by every handler thread.
    """

    #: Estimation sweeps one session may consume over its lifetime.
    max_iterations: int | None = None
    #: Accumulated engine seconds one session may spend iterating.
    max_seconds: float | None = None
    #: Concurrent sessions one client may hold open.
    max_sessions: int | None = None
    #: Process-wide byte budget for the shared caches (eviction-enforced;
    #: ``None`` keeps :data:`repro.cache.DEFAULT_MAX_BYTES`).
    max_cache_bytes: int | None = None

    def __post_init__(self) -> None:
        for field_name in (
            "max_iterations",
            "max_seconds",
            "max_sessions",
            "max_cache_bytes",
        ):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")

    def to_dict(self) -> dict:
        """JSON-friendly snapshot (the service-level ``status`` verb)."""
        return {
            "max_iterations": self.max_iterations,
            "max_seconds": self.max_seconds,
            "max_sessions": self.max_sessions,
            "max_cache_bytes": self.max_cache_bytes,
        }

    # ------------------------------------------------------------------ #
    # checks (raise QuotaExceededError; no-ops when the knob is None)
    # ------------------------------------------------------------------ #
    def check_create(self, client: str, open_sessions: int) -> None:
        """Gate ``create``: would one more session exceed the client cap?"""
        if self.max_sessions is not None and open_sessions >= self.max_sessions:
            raise QuotaExceededError(
                f"client {client!r} already holds {open_sessions} of "
                f"{self.max_sessions} allowed concurrent sessions "
                "(close one first)",
                quota="max_sessions",
                limit=self.max_sessions,
                used=open_sessions,
                client=client,
            )

    def check_iteration(self, name: str, iterations: int, elapsed: float) -> None:
        """Gate one more sweep for session ``name`` (iteration boundary)."""
        if self.max_iterations is not None and iterations >= self.max_iterations:
            raise QuotaExceededError(
                f"session {name!r} consumed all {self.max_iterations} "
                "allowed iterations",
                quota="max_iterations",
                limit=self.max_iterations,
                used=iterations,
                name=name,
            )
        if self.max_seconds is not None and elapsed >= self.max_seconds:
            raise QuotaExceededError(
                f"session {name!r} consumed its {self.max_seconds:g}s "
                f"wall-clock allowance ({elapsed:.3f}s used)",
                quota="max_seconds",
                limit=self.max_seconds,
                used=round(elapsed, 6),
                name=name,
            )
