"""The async session scheduler: iteration verbs on a bounded worker pool.

``step``, ``run``, and ``recommend`` are the verbs that spend compute
(each pays an E1 estimation sweep); everything else (``status``,
``checkpoint``, ``close``) is cheap.
The scheduler routes the expensive verbs onto a bounded pool of worker
threads — built on ``repro.runtime``'s :class:`ThreadBackend`, whose
pooled backends grew a ``submit`` primitive for exactly this — so one
slow E1
sweep occupies one worker, never the transport thread that carried the
request. ``status`` on session B answers immediately while session A is
mid-``run``, whether the caller arrived over stdio, TCP, or HTTP.

Jobs are keyed by session: at most one iteration job per session may be
in flight (a second submission raises
:class:`~repro.service.quotas.SessionBusyError` instead of silently
queueing work the client cannot see). Callers either wait on the
returned future (the default, synchronous verb semantics) or collect it
later through the service's ``result`` verb.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable

from repro.runtime import ExecutionBackend, ThreadBackend
from repro.service.quotas import SessionBusyError

__all__ = ["SessionScheduler"]


class SessionScheduler:
    """Bounded, session-keyed dispatch for iteration verbs.

    Parameters
    ----------
    workers:
        Worker threads iteration jobs share — the number of sessions
        that may sweep concurrently. Must be >= 1; with 1, iteration
        jobs of *all* sessions serialize (an operator's throttling
        choice — cheap verbs still answer, they never enter this pool).
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        # Always a real thread pool (repro.runtime's ThreadBackend, the
        # submit primitive): even one worker must run jobs *off* the
        # dispatching thread, or "wait": false could not return early —
        # so the registry's jobs<=1 serial fallback does not apply here.
        self.backend: ExecutionBackend = ThreadBackend(self.workers)
        self._jobs: dict[str, Future] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def submit(self, name: str, fn: Callable[[], dict]) -> Future:
        """Schedule ``fn`` as session ``name``'s iteration job.

        Raises :class:`SessionBusyError` while a previous job for the
        same session is still running; an uncollected *finished* job is
        replaced (its result is dropped — the client moved on).
        """
        with self._lock:
            existing = self._jobs.get(name)
            if existing is not None and not existing.done():
                raise SessionBusyError(
                    f"session {name!r} already has an iteration verb in "
                    "flight; wait for it or collect it with the "
                    "'result' action",
                    name=name,
                )
            future = self.backend.submit(fn)
            self._jobs[name] = future
        return future

    def collect(self, name: str, future: Future) -> dict:
        """Wait for ``future`` and retire it from the job table."""
        try:
            return future.result()
        finally:
            self.discard(name, future)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Queue depth and worker counts for the ``status`` verb.

        ``jobs_in_flight`` are iteration verbs currently executing (or
        queued for a free worker thread); ``jobs_uncollected`` finished
        with ``"wait": false`` and await their ``result`` call.
        """
        with self._lock:
            in_flight = sum(1 for f in self._jobs.values() if not f.done())
            return {
                "workers": self.workers,
                "jobs_in_flight": in_flight,
                "jobs_uncollected": len(self._jobs) - in_flight,
            }

    def job(self, name: str) -> Future | None:
        """The in-flight or uncollected job for ``name`` (``None`` if none)."""
        with self._lock:
            return self._jobs.get(name)

    def running(self, name: str) -> bool:
        """Whether an iteration job for ``name`` is still executing."""
        future = self.job(name)
        return future is not None and not future.done()

    def discard(self, name: str, future: Future | None = None) -> None:
        """Drop ``name``'s job entry (only if it still is ``future``)."""
        with self._lock:
            if future is None or self._jobs.get(name) is future:
                self._jobs.pop(name, None)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Block until every in-flight job has finished (results kept)."""
        with self._lock:
            futures = list(self._jobs.values())
        for future in futures:
            try:
                future.result()
            except BaseException:  # noqa: BLE001 — drained jobs report via verbs
                pass

    def shutdown(self) -> None:
        """Drain in-flight jobs, then release the worker pool."""
        self.drain()
        with self._lock:
            self._jobs.clear()
        self.backend.shutdown()
