"""The multi-session cleaning service.

:class:`CometService` manages many *named* :class:`~repro.session.
CleaningSession` instances over **one shared** ``repro.runtime`` backend:
a single worker pool serves every session's E1 sweep, so concurrent
sessions share capacity instead of each spawning their own pool. Because
every session's randomness lives in its own :class:`~repro.session.
SessionState`, concurrently served sessions produce exactly the traces
isolated runs would (the determinism contract is per-state, and the
shared backend only changes *where* fit-score tasks execute).

Two API layers:

- a programmatic one (``create_session`` / ``load_session`` /
  ``session`` / ``close_session``) handing out live session objects;
- a JSON request/response one (:meth:`CometService.handle`) with the
  verbs ``create``, ``recommend``, ``step``, ``run``, ``status``,
  ``result``, ``checkpoint``, and ``close``.

Sweep verbs (``recommend``/``step``/``run`` — each pays an E1
estimation sweep) are dispatched through a bounded
:class:`~repro.service.scheduler.SessionScheduler`, so a slow sweep on
one session never blocks ``status``/``checkpoint`` on another — pass
``"wait": false`` to get the response immediately and collect the
outcome later with ``result``. Per-session budgets
(:class:`~repro.service.quotas.SessionQuotas`) are enforced at the verb
layer and surface as structured JSON errors. Failures are rendered as
``{"ok": false, "error": {"type", "message", "code"?, "details"?}}``.

Transports: :func:`serve_stream` wires the verbs to a JSON-lines stream
(the CLI's stdio mode); ``repro.service.transport`` adds the TCP and
HTTP servers plus the :class:`~repro.service.transport.CometClient`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

from repro.cache import cache_stats, set_cache_budget
from repro.detect import fd_cache_stats
from repro.experiments import Configuration, build_polluted
from repro.ml import fit_cache_stats
from repro.runtime import ExecutionBackend, make_backend
from repro.service.quotas import SessionBusyError, SessionQuotas, error_payload
from repro.service.scheduler import SessionScheduler
from repro.session import CleaningSession, SessionObserver, SessionState
from repro.store import SessionStore

__all__ = ["CometService", "serve_stream", "dispatch_line", "parse_request"]


@dataclass
class _Reservation:
    """Placeholder registered while a session is still being built.

    Carries the creating client's identity so racing ``create`` calls
    count in-flight builds against the per-client session quota — a
    bare ``None`` placeholder would let two concurrent creates both
    squeeze under the cap while neither is fully registered yet.
    """

    client: str = "local"


@dataclass
class _SessionRecord:
    """Service-side bookkeeping wrapped around one live session."""

    session: CleaningSession
    #: Serializes iteration work and state reads for this session.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Identity of the creating client (quota accounting key).
    client: str = "local"
    #: Accumulated engine wall-clock spent in iteration verbs (seconds).
    elapsed: float = 0.0


@dataclass
class _StoredMarker:
    """A cold persisted session, known to the store but not yet live.

    ``serve --state-dir`` registers one per indexed session at startup
    (:meth:`CometService.resume_persisted`); the first verb that touches
    the name rehydrates it into a full :class:`_SessionRecord`. Markers
    hold a quota slot for their client (a persisted session *is* an open
    session) and carry the persisted wall-clock usage so ``max_seconds``
    survives restarts.
    """

    client: str = "local"
    #: Engine wall-clock already consumed before the restart (seconds).
    elapsed: float = 0.0
    #: Serializes racing rehydrations of this one session.
    lock: threading.Lock = field(default_factory=threading.Lock)


class _StorePersistence(SessionObserver):
    """The write-behind hook: snapshot into the store on every boundary.

    Registered on each live session when the service has a store. The
    engine fires ``on_iteration`` while the verb handler holds the
    session's lock, so the snapshot (a synchronous pickle inside
    ``store.put``) always sees a clean iteration boundary; the file I/O
    happens on the store's writer thread, off the verb path.
    """

    def __init__(self, service: "CometService", name: str) -> None:
        self._service = service
        self._name = name

    def on_iteration(self, session, records) -> None:  # noqa: D102 — hook
        self._service._persist(self._name)


class CometService:
    """Serve many named cleaning sessions over one shared backend.

    Parameters
    ----------
    backend:
        Registry name or :class:`~repro.runtime.ExecutionBackend`
        instance shared by every session the service manages.
    jobs:
        Worker count for pooled backends; ``1`` falls back to serial.
    checkpoint_io:
        Whether the JSON layer may touch the filesystem: the
        ``checkpoint`` verb (writes a file at a caller-supplied path)
        and ``create``'s ``checkpoint`` field (unpickles a
        caller-supplied file — code execution if the file is hostile).
        Disable when the request stream is less trusted than the
        operator; the programmatic API is unaffected.
    quotas:
        Per-client/per-session resource limits enforced at the verb
        layer (default: unlimited).
    workers:
        Worker threads of the session scheduler — the number of sweep
        verbs (``recommend``/``step``/``run``) that may run
        concurrently. Must be >= 1.
    store:
        Optional :class:`~repro.store.SessionStore` making sessions
        durable: every live session is snapshotted into the store on
        clean iteration boundaries (write-behind), cold persisted
        sessions rehydrate lazily on the first verb that touches them
        (after :meth:`resume_persisted`), closing a session evicts it,
        and a graceful :meth:`shutdown` flushes and closes the store.

    The service is thread-safe: the session registry is lock-protected
    and each session additionally has its own lock, so handlers for
    *different* sessions run concurrently (sharing the worker pool)
    while requests against the *same* session serialize. ``run`` holds a
    session's lock per *iteration*, not for the whole run, so ``status``
    and ``checkpoint`` on a running session answer at the next iteration
    boundary.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
        checkpoint_io: bool = True,
        quotas: SessionQuotas | None = None,
        workers: int = 4,
        store: SessionStore | None = None,
    ) -> None:
        self.backend = make_backend(backend, jobs)
        self.checkpoint_io = checkpoint_io
        self.quotas = quotas or SessionQuotas()
        if self.quotas.max_cache_bytes is not None:
            # The byte budget governs the process-wide shared cache:
            # enforced by eviction (the cheapest entries to rebuild go
            # first), never by failing a verb.
            set_cache_budget(self.quotas.max_cache_bytes)
        self.scheduler = SessionScheduler(workers)
        self.store = store
        self._sessions: dict[str, _SessionRecord] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # programmatic API
    # ------------------------------------------------------------------ #
    def create_session(
        self, name: str, dataset, *, client: str = "local", **kwargs
    ) -> CleaningSession:
        """Register a fresh session under ``name`` (a polluted dataset in
        hand; keyword arguments as in :meth:`CleaningSession.create`)."""
        return self._build_session(
            name,
            lambda: CleaningSession.create(
                dataset, backend=self.backend, own_backend=False, **kwargs
            ),
            client=client,
        )

    def load_session(
        self, name: str, path, *, client: str = "local"
    ) -> CleaningSession:
        """Register a checkpointed session under ``name``.

        The checkpoint is a pickle (see :meth:`SessionState.load`); only
        load paths the service operator trusts.
        """
        return self._build_session(
            name,
            lambda: CleaningSession.load(
                path, backend=self.backend, own_backend=False
            ),
            client=client,
        )

    def adopt_session(
        self, name: str, state: SessionState, *, client: str = "local"
    ) -> CleaningSession:
        """Register an existing state under ``name`` (shared backend)."""
        return self._build_session(
            name,
            lambda: CleaningSession(state, backend=self.backend, own_backend=False),
            client=client,
        )

    def session(self, name: str) -> CleaningSession:
        """The live session registered under ``name``."""
        return self._record(name).session

    def names(self) -> list[str]:
        """Names of all registered sessions, sorted.

        Includes cold persisted sessions (:meth:`resume_persisted`
        markers) — they answer verbs after a lazy rehydration, so they
        are part of the service's surface.
        """
        with self._lock:
            return sorted(
                n
                for n, r in self._sessions.items()
                if isinstance(r, (_SessionRecord, _StoredMarker))
            )

    def resume_persisted(self) -> list[str]:
        """Register every session the store knows as lazily resumable.

        Called once after a restart (``serve --state-dir`` does it before
        accepting requests): each indexed session gets a cold marker
        under its old name — holding its client's quota slot and its
        persisted wall-clock usage — and rehydrates on first touch.
        Returns the newly registered names.
        """
        if self.store is None:
            return []
        resumed: list[str] = []
        for name in self.store.names():
            try:
                meta = self.store.meta(name)
            except KeyError:
                continue  # deleted between names() and meta()
            with self._lock:
                if self._closed or name in self._sessions:
                    continue
                self._sessions[name] = _StoredMarker(
                    client=meta.get("client") or "local",
                    elapsed=float(meta.get("elapsed") or 0.0),
                )
            resumed.append(name)
        return resumed

    def close_session(self, name: str) -> None:
        """Drop a session from the registry (the shared backend stays up).

        With a store attached, closing also *evicts* the persisted
        snapshot — a closed session is finished business; checkpoint a
        copy first (the ``checkpoint`` verb) if you want to keep it.
        Cold persisted sessions close without being rehydrated.
        """
        if self.scheduler.running(name):
            raise SessionBusyError(
                f"session {name!r} has an iteration verb in flight; "
                "collect it with 'result' before closing",
                name=name,
            )
        with self._lock:
            # Absent, or still being built (a _Reservation): not closable.
            record = self._sessions.get(name)
            if not isinstance(record, (_SessionRecord, _StoredMarker)):
                raise KeyError(f"no session named {name!r}")
            del self._sessions[name]
        self.scheduler.discard(name)
        if self.store is not None:
            self.store.delete(name)

    def shutdown(self) -> None:
        """Drop every session, drain in-flight requests, shut the backend.

        The scheduler drains first (iteration jobs own session locks
        while sweeping); acquiring every session lock before the backend
        goes down then lets remaining handlers finish their dispatch
        (the drain the backend layer requires). Requests arriving
        afterwards get a "service is shut down" error response.

        With a store attached, every live session gets a final snapshot
        after the drain (so the store holds the newest boundary even if
        its write-behind queue lagged), then the store is flushed and
        closed — the graceful half of the durability story; the crash
        half is the write-behind persistence itself.
        """
        with self._lock:
            self._closed = True
        self.scheduler.shutdown()
        with self._lock:
            records = {
                n: r
                for n, r in self._sessions.items()
                if isinstance(r, _SessionRecord)
            }
            self._sessions.clear()
        if self.store is not None:
            for name, record in records.items():
                with record.lock:
                    try:
                        self._persist(name, record)
                    except RuntimeError:
                        break  # store already closed externally
            self.store.flush()
            self.store.close()
        locks = [r.lock for r in records.values()]
        for lock in locks:
            lock.acquire()
        try:
            self.backend.shutdown()
        finally:
            for lock in locks:
                lock.release()

    def __enter__(self) -> "CometService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _build_session(
        self, name: str, builder, client: str = "local"
    ) -> CleaningSession:
        """Reserve ``name``, then build — so a duplicate name fails fast
        instead of after the (potentially expensive) session construction,
        and two concurrent creates for one name cannot both build. The
        per-client session quota is checked under the same lock, so two
        racing creates cannot both squeeze under the cap."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is shut down")
            if name in self._sessions:
                raise ValueError(f"session {name!r} already exists")
            # Reservations count too: a build in flight already holds a
            # slot, so racing creates cannot overshoot the quota.
            held = sum(
                1
                for record in self._sessions.values()
                if record.client == client
            )
            self.quotas.check_create(client, held)
            self._sessions[name] = _Reservation(client=client)
        try:
            session = builder()
        except BaseException:
            with self._lock:
                self._sessions.pop(name, None)
            raise
        record = _SessionRecord(session=session, client=client)
        if self.store is not None:
            session.add_observer(_StorePersistence(self, name))
            # Persist the newborn session too: a crash before its first
            # iteration must not lose the creation.
            self._persist(name, record)
        with self._lock:
            self._sessions[name] = record
        return session

    def _record(self, name: str) -> _SessionRecord:
        with self._lock:
            record = self._sessions.get(name)
        if isinstance(record, _SessionRecord):
            return record
        if isinstance(record, _StoredMarker):
            return self._rehydrate(name, record)
        raise KeyError(f"no session named {name!r}")

    def _rehydrate(self, name: str, marker: _StoredMarker) -> _SessionRecord:
        """Turn a cold persisted session into a live one (first touch).

        The marker's lock serializes racing first touches: the winner
        loads the state from the store and swaps in a full record; the
        losers find that record when they re-check the registry.
        """
        with marker.lock:
            with self._lock:
                current = self._sessions.get(name)
            if isinstance(current, _SessionRecord):
                return current
            if current is not marker or self.store is None:
                raise KeyError(f"no session named {name!r}")
            state = self.store.load(name)
            session = CleaningSession(
                state, backend=self.backend, own_backend=False
            )
            session.add_observer(_StorePersistence(self, name))
            record = _SessionRecord(
                session=session, client=marker.client, elapsed=marker.elapsed
            )
            with self._lock:
                self._sessions[name] = record
            return record

    def _persist(self, name: str, record: _SessionRecord | None = None) -> None:
        """Snapshot one session into the store (callers hold its lock).

        The envelope metadata carries the quota ledger (iterations,
        engine wall-clock, owning client) and the backend fingerprint,
        so a restarted service resumes enforcement where it left off and
        operators can see what produced a checkpoint.
        """
        if self.store is None:
            return
        if record is None:
            with self._lock:
                candidate = self._sessions.get(name)
            if not isinstance(candidate, _SessionRecord):
                return  # closed while the snapshot was in flight
            record = candidate
        state = record.session.state
        self.store.put(
            name,
            state,
            meta={
                "client": record.client,
                "iteration": state.iteration,
                "elapsed": round(record.elapsed, 6),
                "finished": state.is_finished,
                "backend": {
                    "name": self.backend.name,
                    "workers": self.backend.workers,
                },
            },
        )

    # ------------------------------------------------------------------ #
    # JSON request/response API
    # ------------------------------------------------------------------ #
    def handle(self, request: dict, *, client: str = "local") -> dict:
        """Dispatch one JSON-style request.

        Requests are ``{"action": <verb>, ...}``; responses are
        ``{"ok": true, "result": ...}`` or ``{"ok": false, "error":
        {"type", "message", "code"?, "details"?}}``. ``client`` is the
        caller's identity for per-client quotas (transports pass the
        peer address; stdio and programmatic callers share ``"local"``).
        """
        try:
            action = request.get("action")
            handler = {
                "create": self._handle_create,
                "recommend": self._handle_recommend,
                "step": self._handle_step,
                "run": self._handle_run,
                "status": self._handle_status,
                "result": self._handle_result,
                "checkpoint": self._handle_checkpoint,
                "close": self._handle_close,
            }.get(action)
            if handler is None:
                raise ValueError(
                    f"unknown action {action!r}; expected one of create, "
                    "recommend, step, run, status, result, checkpoint, close"
                )
            return {"ok": True, "result": handler(request, client)}
        except Exception as exc:  # noqa: BLE001 — every failure becomes a response
            return {"ok": False, "error": error_payload(exc)}

    def _handle_create(self, request: dict, client: str) -> dict:
        # Parameter defaults follow the library/paper (step 0.01, full
        # dataset rows) rather than the CLI's laptop-scale defaults —
        # service callers state their scenario explicitly. A `checkpoint`
        # path loads a pickle; expose this verb only to trusted callers.
        name = _required(request, "name")
        checkpoint = request.get("checkpoint")
        if checkpoint is not None:
            self._require_checkpoint_io()
            session = self.load_session(name, checkpoint, client=client)
        else:
            params = request.get("params", {})
            config = Configuration(
                dataset=_required(params, "dataset"),
                algorithm=params.get("algorithm", "svm"),
                error_types=tuple(params.get("errors", ("missing",))),
                n_rows=params.get("rows"),
                budget=float(params.get("budget", 50.0)),
                step=float(params.get("step", 0.01)),
                cost_model=params.get("cost_model", "uniform"),
                cleanml=bool(params.get("cleanml", False)),
            )
            polluted = build_polluted(config, seed=int(params.get("seed", 0)))
            session = self.create_session(
                name,
                polluted,
                client=client,
                algorithm=config.algorithm,
                error_types=list(config.error_types),
                budget=config.budget,
                cost_model=config.make_cost_model(),
                config=config.make_comet_config(),
                rng=int(params.get("seed", 0)),
            )
        return {"name": name, **session.status()}

    # ------------------------------------------------------------------ #
    # sweep verbs (scheduled)
    # ------------------------------------------------------------------ #
    def _handle_recommend(self, request: dict, client: str) -> dict:
        # A recommendation pays a full E1 estimation sweep — the same
        # compute as one run iteration — so it is scheduled and
        # quota-accounted like the other sweep verbs (it just never
        # advances the iteration counter or touches data/budget).
        name = _required(request, "name")
        self._record(name)
        k = int(request.get("k", 3))
        return self._dispatch(
            name, lambda: self._recommend_session(name, k), request
        )

    def _recommend_session(self, name: str, k: int) -> dict:
        record = self._record(name)
        with record.lock:
            self._check_iteration_quota(name, record)
            started = time.perf_counter()
            try:
                candidates = record.session.recommend(k=k)
            finally:
                record.elapsed += time.perf_counter() - started
        return {
            "candidates": [
                {
                    "feature": c.feature,
                    "error": c.error,
                    "predicted_f1": c.prediction.predicted_f1,
                    "uncertainty": c.prediction.uncertainty,
                    "gain": c.gain,
                    "cost": c.cost,
                    "score": c.score,
                }
                for c in candidates
            ]
        }

    def _handle_step(self, request: dict, client: str) -> dict:
        name = _required(request, "name")
        self._record(name)  # fail fast on unknown names, before scheduling
        return self._dispatch(name, lambda: self._step_session(name), request)

    def _handle_run(self, request: dict, client: str) -> dict:
        name = _required(request, "name")
        self._record(name)
        max_iterations = request.get("max_iterations")
        if max_iterations is not None:
            max_iterations = int(max_iterations)
        return self._dispatch(
            name, lambda: self._run_session(name, max_iterations), request
        )

    def _dispatch(self, name: str, job, request: dict) -> dict:
        """Route an iteration job through the bounded scheduler.

        ``"wait": false`` returns immediately (collect with ``result``);
        the default blocks for the job's payload, preserving synchronous
        verb semantics while still bounding concurrent iteration work.
        """
        future = self.scheduler.submit(name, job)
        if not request.get("wait", True):
            return {"name": name, "scheduled": True}
        return self.scheduler.collect(name, future)

    def _handle_result(self, request: dict, client: str) -> dict:
        name = _required(request, "name")
        future = self.scheduler.job(name)
        if future is None:
            raise KeyError(f"no scheduled iteration verb for session {name!r}")
        if not request.get("wait", True) and not future.done():
            return {"name": name, "ready": False}
        # collect() re-raises the job's failure (e.g. QuotaExceededError
        # from mid-run exhaustion), which handle() turns into the same
        # structured error a synchronous verb would have produced.
        payload = self.scheduler.collect(name, future)
        return {"name": name, "ready": True, **payload}

    def _step_session(self, name: str) -> dict:
        record = self._record(name)
        with record.lock:
            self._check_iteration_quota(name, record)
            started = time.perf_counter()
            try:
                result = record.session.step()
            finally:
                record.elapsed += time.perf_counter() - started
            return {
                "record": result.to_dict() if result is not None else None,
                "finished": record.session.is_finished,
            }

    def _run_session(self, name: str, max_iterations: int | None = None) -> dict:
        """Run a session out (or ``max_iterations`` sweeps), quota-gated.

        The session lock is held per iteration, so ``status`` and
        ``checkpoint`` interleave at iteration boundaries instead of
        waiting for the whole run. Quotas are checked *before* each
        sweep: exhaustion surfaces as a structured error while the state
        sits on a clean boundary — still checkpointable, still
        inspectable.
        """
        record = self._record(name)
        session = record.session
        sweeps = 0
        while True:
            with record.lock:
                if session.is_finished:
                    break
                self._check_iteration_quota(name, record)
                started = time.perf_counter()
                try:
                    records = session.iterate()
                finally:
                    record.elapsed += time.perf_counter() - started
            if not records:
                break
            sweeps += 1
            if max_iterations is not None and sweeps >= max_iterations:
                break
        with record.lock:
            trace = session.trace
            return {
                "trace": trace.to_dict() if trace is not None else None,
                "finished": session.is_finished,
            }

    def _check_iteration_quota(self, name: str, record: _SessionRecord) -> None:
        self.quotas.check_iteration(
            name, record.session.state.iteration, record.elapsed
        )

    # ------------------------------------------------------------------ #
    # cheap verbs
    # ------------------------------------------------------------------ #
    def _handle_status(self, request: dict, client: str) -> dict:
        name = request.get("name")
        if name is None:
            # Service-level status doubles as the remote operator's
            # observability surface: cache hit rates and scheduler/
            # backend load without process access.
            payload = {
                "sessions": self.names(),
                "backend": self.backend.name,
                "workers": self.backend.workers,
                "scheduler_workers": self.scheduler.workers,
                "scheduler": self.scheduler.stats(),
                "quotas": self.quotas.to_dict(),
                "fd_cache": fd_cache_stats(),
                "fit_cache": fit_cache_stats(),
                "cache": cache_stats(),
            }
            backend_stats = getattr(self.backend, "stats", None)
            if callable(backend_stats):
                payload["backend_stats"] = backend_stats()
            if self.store is not None:
                payload["store"] = self.store.stats()
            return payload
        record = self._record(name)
        running = self.scheduler.running(name)
        with record.lock:
            return {
                "name": name,
                **record.session.status(),
                "running": running,
                "elapsed_seconds": round(record.elapsed, 6),
            }

    def _handle_checkpoint(self, request: dict, client: str) -> dict:
        self._require_checkpoint_io()
        record = self._record(_required(request, "name"))
        path = _required(request, "path")
        with record.lock:
            record.session.save(path)
        return {"path": str(path)}

    def _require_checkpoint_io(self) -> None:
        if not self.checkpoint_io:
            raise PermissionError(
                "checkpoint I/O is disabled for this service "
                "(start it with checkpoint_io=True / without --no-checkpoint-io)"
            )

    def _handle_close(self, request: dict, client: str) -> dict:
        name = _required(request, "name")
        self.close_session(name)
        return {"closed": name}


def _required(mapping: dict, key: str):
    value = mapping.get(key)
    if value is None:
        raise ValueError(f"missing required field {key!r}")
    return value


def parse_request(text: str) -> tuple[dict | None, dict | None]:
    """Decode one line-delimited JSON request.

    Returns ``(request, None)`` for a valid JSON-object request, or
    ``(None, error_response)`` for invalid JSON / non-object frames —
    the shared first stage of every transport, split out so transports
    that gate requests (authentication, shutdown policy) can act
    between parsing and dispatch.
    """
    try:
        request = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, {
            "ok": False,
            "error": {
                "type": "JSONDecodeError",
                "message": f"invalid JSON: {exc}",
                "code": "bad_frame",
            },
        }
    if not isinstance(request, dict):
        return None, {
            "ok": False,
            "error": {
                "type": "TypeError",
                "message": "request must be a JSON object",
                "code": "bad_frame",
            },
        }
    return request, None


def dispatch_line(
    service: CometService, text: str, *, client: str = "local"
) -> tuple[dict, bool]:
    """Decode one line-delimited JSON request and dispatch it.

    The shared framing of the trusted transports (stdio, programmatic):
    invalid JSON and non-object requests become structured error
    responses instead of terminating the serving loop. Returns
    ``(response, stop)`` where ``stop`` is True for the stream-level
    ``shutdown`` verb. The TCP/HTTP transports use :func:`parse_request`
    directly so authentication and shutdown policy run between parsing
    and dispatch.
    """
    request, error = parse_request(text)
    if error is not None:
        return error, False
    if request.get("action") == "shutdown":
        return {"ok": True, "result": {"shutdown": True}}, True
    return service.handle(request, client=client), False


def serve_stream(service: CometService, in_stream, out_stream) -> int:
    """Serve JSON-lines requests from ``in_stream`` until EOF or shutdown.

    One JSON request per line in, one JSON response per line out. Blank
    lines are skipped; invalid JSON yields an error response rather than
    terminating the loop. The extra stream-level verb ``shutdown`` stops
    serving (the CLI's ``serve`` subcommand builds on this). Returns the
    number of requests handled.
    """
    handled = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        response, stop = dispatch_line(service, line)
        print(json.dumps(response), file=out_stream, flush=True)
        handled += 1
        if stop:
            break
    return handled
