"""The multi-session cleaning service.

:class:`CometService` manages many *named* :class:`~repro.session.
CleaningSession` instances over **one shared** ``repro.runtime`` backend:
a single worker pool serves every session's E1 sweep, so concurrent
sessions share capacity instead of each spawning their own pool. Because
every session's randomness lives in its own :class:`~repro.session.
SessionState`, concurrently served sessions produce exactly the traces
isolated runs would (the determinism contract is per-state, and the
shared backend only changes *where* fit-score tasks execute).

Two API layers:

- a programmatic one (``create_session`` / ``load_session`` /
  ``session`` / ``close_session``) handing out live session objects;
- a JSON request/response one (:meth:`CometService.handle`) with the
  verbs ``create``, ``recommend``, ``step``, ``run``, ``status``,
  ``checkpoint``, and ``close`` — the CLI's ``serve`` subcommand wires
  it to a JSON-lines stream via :func:`serve_stream`.
"""

from __future__ import annotations

import json
import threading

from repro.experiments import Configuration, build_polluted
from repro.runtime import ExecutionBackend, make_backend
from repro.session import CleaningSession, SessionState

__all__ = ["CometService", "serve_stream"]


class CometService:
    """Serve many named cleaning sessions over one shared backend.

    Parameters
    ----------
    backend:
        Registry name or :class:`~repro.runtime.ExecutionBackend`
        instance shared by every session the service manages.
    jobs:
        Worker count for pooled backends; ``1`` falls back to serial.
    checkpoint_io:
        Whether the JSON layer may touch the filesystem: the
        ``checkpoint`` verb (writes a file at a caller-supplied path)
        and ``create``'s ``checkpoint`` field (unpickles a
        caller-supplied file — code execution if the file is hostile).
        Disable when the request stream is less trusted than the
        operator; the programmatic API is unaffected.

    The service is thread-safe: the session registry is lock-protected
    and each session additionally has its own lock, so handlers for
    *different* sessions run concurrently (sharing the worker pool)
    while requests against the *same* session serialize.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
        checkpoint_io: bool = True,
    ) -> None:
        self.backend = make_backend(backend, jobs)
        self.checkpoint_io = checkpoint_io
        self._sessions: dict[str, CleaningSession] = {}
        self._session_locks: dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # programmatic API
    # ------------------------------------------------------------------ #
    def create_session(self, name: str, dataset, **kwargs) -> CleaningSession:
        """Register a fresh session under ``name`` (a polluted dataset in
        hand; keyword arguments as in :meth:`CleaningSession.create`)."""
        return self._build_session(
            name,
            lambda: CleaningSession.create(
                dataset, backend=self.backend, own_backend=False, **kwargs
            ),
        )

    def load_session(self, name: str, path) -> CleaningSession:
        """Register a checkpointed session under ``name``.

        The checkpoint is a pickle (see :meth:`SessionState.load`); only
        load paths the service operator trusts.
        """
        return self._build_session(
            name,
            lambda: CleaningSession.load(
                path, backend=self.backend, own_backend=False
            ),
        )

    def adopt_session(self, name: str, state: SessionState) -> CleaningSession:
        """Register an existing state under ``name`` (shared backend)."""
        return self._build_session(
            name,
            lambda: CleaningSession(state, backend=self.backend, own_backend=False),
        )

    def session(self, name: str) -> CleaningSession:
        """The live session registered under ``name``."""
        with self._lock:
            session = self._sessions.get(name)
        if session is None:
            raise KeyError(f"no session named {name!r}")
        return session

    def names(self) -> list[str]:
        """Names of all fully registered sessions, sorted."""
        with self._lock:
            return sorted(n for n, s in self._sessions.items() if s is not None)

    def close_session(self, name: str) -> None:
        """Drop a session from the registry (the shared backend stays up)."""
        with self._lock:
            if self._sessions.get(name) is None:  # absent or still being built
                raise KeyError(f"no session named {name!r}")
            del self._sessions[name]
            del self._session_locks[name]

    def shutdown(self) -> None:
        """Drop every session, drain in-flight requests, shut the backend.

        Acquiring every session lock before the backend goes down lets
        running handlers finish their dispatch first (the drain the
        backend layer requires); requests arriving afterwards get a
        "service is shut down" error response.
        """
        with self._lock:
            self._closed = True
            locks = list(self._session_locks.values())
            self._sessions.clear()
            self._session_locks.clear()
        for lock in locks:
            lock.acquire()
        try:
            self.backend.shutdown()
        finally:
            for lock in locks:
                lock.release()

    def __enter__(self) -> "CometService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _build_session(self, name: str, builder) -> CleaningSession:
        """Reserve ``name``, then build — so a duplicate name fails fast
        instead of after the (potentially expensive) session construction,
        and two concurrent creates for one name cannot both build."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is shut down")
            if name in self._sessions:
                raise ValueError(f"session {name!r} already exists")
            self._sessions[name] = None  # reservation placeholder
        try:
            session = builder()
        except BaseException:
            with self._lock:
                self._sessions.pop(name, None)
            raise
        with self._lock:
            self._sessions[name] = session
            self._session_locks[name] = threading.Lock()
        return session

    def _locked(self, name: str) -> tuple[CleaningSession, threading.Lock]:
        with self._lock:
            session = self._sessions.get(name)
            lock = self._session_locks.get(name)
        if session is None or lock is None:
            raise KeyError(f"no session named {name!r}")
        return session, lock

    # ------------------------------------------------------------------ #
    # JSON request/response API
    # ------------------------------------------------------------------ #
    def handle(self, request: dict) -> dict:
        """Dispatch one JSON-style request.

        Requests are ``{"action": <verb>, ...}``; responses are
        ``{"ok": true, "result": ...}`` or ``{"ok": false, "error": ...}``.
        """
        try:
            action = request.get("action")
            handler = {
                "create": self._handle_create,
                "recommend": self._handle_recommend,
                "step": self._handle_step,
                "run": self._handle_run,
                "status": self._handle_status,
                "checkpoint": self._handle_checkpoint,
                "close": self._handle_close,
            }.get(action)
            if handler is None:
                raise ValueError(
                    f"unknown action {action!r}; expected one of create, "
                    "recommend, step, run, status, checkpoint, close"
                )
            return {"ok": True, "result": handler(request)}
        except Exception as exc:  # noqa: BLE001 — every failure becomes a response
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _handle_create(self, request: dict) -> dict:
        # Parameter defaults follow the library/paper (step 0.01, full
        # dataset rows) rather than the CLI's laptop-scale defaults —
        # service callers state their scenario explicitly. A `checkpoint`
        # path loads a pickle; expose this verb only to trusted callers.
        name = _required(request, "name")
        checkpoint = request.get("checkpoint")
        if checkpoint is not None:
            self._require_checkpoint_io()
            session = self.load_session(name, checkpoint)
        else:
            params = request.get("params", {})
            config = Configuration(
                dataset=_required(params, "dataset"),
                algorithm=params.get("algorithm", "svm"),
                error_types=tuple(params.get("errors", ("missing",))),
                n_rows=params.get("rows"),
                budget=float(params.get("budget", 50.0)),
                step=float(params.get("step", 0.01)),
                cost_model=params.get("cost_model", "uniform"),
                cleanml=bool(params.get("cleanml", False)),
            )
            polluted = build_polluted(config, seed=int(params.get("seed", 0)))
            session = self.create_session(
                name,
                polluted,
                algorithm=config.algorithm,
                error_types=list(config.error_types),
                budget=config.budget,
                cost_model=config.make_cost_model(),
                config=config.make_comet_config(),
                rng=int(params.get("seed", 0)),
            )
        return {"name": name, **session.status()}

    def _handle_recommend(self, request: dict) -> dict:
        session, lock = self._locked(_required(request, "name"))
        k = int(request.get("k", 3))
        with lock:
            candidates = session.recommend(k=k)
        return {
            "candidates": [
                {
                    "feature": c.feature,
                    "error": c.error,
                    "predicted_f1": c.prediction.predicted_f1,
                    "uncertainty": c.prediction.uncertainty,
                    "gain": c.gain,
                    "cost": c.cost,
                    "score": c.score,
                }
                for c in candidates
            ]
        }

    def _handle_step(self, request: dict) -> dict:
        session, lock = self._locked(_required(request, "name"))
        with lock:
            record = session.step()
            return {
                "record": record.to_dict() if record is not None else None,
                "finished": session.is_finished,
            }

    def _handle_run(self, request: dict) -> dict:
        session, lock = self._locked(_required(request, "name"))
        max_iterations = request.get("max_iterations")
        with lock:
            if max_iterations is None:
                trace = session.run()
            else:
                for __ in range(int(max_iterations)):
                    if not session.iterate():
                        break
                trace = session.trace
            return {
                "trace": trace.to_dict() if trace is not None else None,
                "finished": session.is_finished,
            }

    def _handle_status(self, request: dict) -> dict:
        name = request.get("name")
        if name is None:
            return {
                "sessions": self.names(),
                "backend": self.backend.name,
                "workers": self.backend.workers,
            }
        session, lock = self._locked(name)
        with lock:
            return {"name": name, **session.status()}

    def _handle_checkpoint(self, request: dict) -> dict:
        self._require_checkpoint_io()
        session, lock = self._locked(_required(request, "name"))
        path = _required(request, "path")
        with lock:
            session.save(path)
        return {"path": str(path)}

    def _require_checkpoint_io(self) -> None:
        if not self.checkpoint_io:
            raise PermissionError(
                "checkpoint I/O is disabled for this service "
                "(start it with checkpoint_io=True / without --no-checkpoint-io)"
            )

    def _handle_close(self, request: dict) -> dict:
        name = _required(request, "name")
        self.close_session(name)
        return {"closed": name}


def _required(mapping: dict, key: str):
    value = mapping.get(key)
    if value is None:
        raise ValueError(f"missing required field {key!r}")
    return value


def serve_stream(service: CometService, in_stream, out_stream) -> int:
    """Serve JSON-lines requests from ``in_stream`` until EOF or shutdown.

    One JSON request per line in, one JSON response per line out. Blank
    lines are skipped; invalid JSON yields an error response rather than
    terminating the loop. The extra stream-level verb ``shutdown`` stops
    serving (the CLI's ``serve`` subcommand builds on this). Returns the
    number of requests handled.
    """
    handled = 0
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"invalid JSON: {exc}"}
        else:
            if isinstance(request, dict) and request.get("action") == "shutdown":
                print(json.dumps({"ok": True, "result": {"shutdown": True}}),
                      file=out_stream, flush=True)
                handled += 1
                break
            response = (
                service.handle(request)
                if isinstance(request, dict)
                else {"ok": False, "error": "request must be a JSON object"}
            )
        print(json.dumps(response), file=out_stream, flush=True)
        handled += 1
    return handled
