"""Network transports for :class:`~repro.service.CometService`.

Everything here is stdlib-only and speaks the same verbs as the
in-process ``handle`` — a networked trace is bit-identical to an
in-process one because the transport only moves JSON, never touches
session state.

- :class:`CometTCPServer` — line-delimited JSON over TCP: one request
  per line in, one response per line out, many concurrent connections
  (``socketserver.ThreadingTCPServer``). Malformed, oversized, and
  truncated frames come back as structured error responses; only a
  vanished peer ends a connection.
- :class:`CometHTTPServer` — a minimal HTTP/1.1 adapter for
  curl/browser clients: ``POST /rpc`` with a full request object,
  ``POST /<verb>`` with the verb's fields, ``GET /status[/<name>]``.
- :class:`CometClient` — a small programmatic client for the TCP
  transport; verb methods unwrap ``result`` or raise
  :class:`CometClientError` carrying the server's structured error.

Both servers take a :class:`~repro.security.TransportSecurity`: with a
shared token configured, TCP connections must pass an HMAC
challenge–response (the transport-level ``auth`` verb) and HTTP
requests an ``Authorization: Bearer`` check *before any verb is
dispatched* — unauthorized requests never consume quota or touch the
scheduler, they get the structured ``code: "unauthorized"`` error. A
TLS certificate wraps every accepted connection at the socket layer
(the JSON framing above it is unchanged).

Both servers honor the stream-level ``shutdown`` verb (``POST
/shutdown`` over HTTP): the response is sent, then ``serve_forever``
returns — which is how the CLI's ``serve --port`` terminates cleanly
from a remote request. On an unauthenticated server the verb is
accepted only from loopback peers (``allow_remote_shutdown`` opts out);
with auth enabled it requires a valid token like every other verb.
Quota accounting keys on the peer host, so every connection from one
machine shares that client's session allowance.
"""

from __future__ import annotations

import json
import socket
import socketserver
import ssl
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

# The line-delimited-JSON framing lives in the runtime layer
# (``repro.runtime.wire``) so the distributed execution backend speaks
# the same format; this module reuses the helpers and keeps only the
# server-side frame-recovery logic (drain, keep-alive) that is specific
# to serving untrusted request streams.
from repro.runtime.wire import DEFAULT_MAX_FRAME, encode_frame
from repro.runtime.wire import frame_error as _frame_error
from repro.security import (
    ROLE_CLIENT,
    TransportSecurity,
    compute_mac,
    is_loopback_host,
    new_nonce,
)
from repro.service.quotas import ServiceError, UnauthorizedError, error_payload
from repro.service.service import CometService, parse_request

__all__ = [
    "CometTCPServer",
    "CometHTTPServer",
    "CometClient",
    "CometClientError",
    "CometConnectionError",
    "DEFAULT_MAX_FRAME",
]


def _unauthorized_response(message: str, **details) -> dict:
    """The structured error an unauthorized request gets."""
    return {"ok": False, "error": error_payload(UnauthorizedError(message, **details))}

#: Verbs the HTTP adapter exposes as ``POST /<verb>``.
_HTTP_VERBS = (
    "create",
    "recommend",
    "step",
    "run",
    "status",
    "result",
    "checkpoint",
    "close",
)


class _CometServerMixin:
    """Shared lifecycle of both networked servers (TCP and HTTP).

    Expects to precede a ``socketserver.BaseServer`` subclass in the
    MRO; holds the service reference, frame limit, address accessors,
    and the two shutdown/backgrounding helpers.
    """

    def __init__(
        self,
        service: CometService,
        address: tuple[str, int],
        handler,
        *,
        max_frame: int,
        thread_name: str,
        security: TransportSecurity | None = None,
        conn_timeout: float | None = None,
        allow_remote_shutdown: bool = False,
    ) -> None:
        super().__init__(address, handler)
        self.service = service
        self.max_frame = max_frame
        self.security = security
        self.conn_timeout = conn_timeout
        self.allow_remote_shutdown = allow_remote_shutdown
        self._thread_name = thread_name

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def get_request(self):
        """Accept one connection, TLS-wrapping it when configured.

        The wrap defers the handshake (``do_handshake_on_connect=False``)
        so a slow or hostile peer cannot stall the accept loop — the
        per-connection handler thread performs it.
        """
        sock, addr = super().get_request()
        if self.security is not None and self.security.serves_tls:
            sock = self.security.wrap_server(sock)
        return sock, addr

    def shutdown_allowed(self, client_host: str) -> bool:
        """Whether a ``shutdown`` request from ``client_host`` may stop us.

        With auth enabled, reaching the verb already required a valid
        token, so any authenticated caller qualifies. Without auth, only
        loopback peers may stop the server unless
        ``allow_remote_shutdown`` opts remote peers in.
        """
        if self.security is not None and self.security.requires_auth:
            return True
        return self.allow_remote_shutdown or is_loopback_host(client_host)

    def request_shutdown(self) -> None:
        """Stop ``serve_forever`` without joining the caller's thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name=self._thread_name, daemon=True
        )
        thread.start()
        return thread


# ---------------------------------------------------------------------- #
# TCP: line-delimited JSON
# ---------------------------------------------------------------------- #
class _TCPHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of JSON lines, resilient to bad frames.

    The connection-level state the handler threads through the loop:

    - an **idle timeout** (``server.conn_timeout``): a peer silent past
      it gets its socket closed cleanly, so silent connections cannot
      pin ``ThreadingTCPServer`` handler threads forever;
    - the **TLS handshake**, performed here (not in the accept loop)
      when the server wraps connections;
    - the **auth state**: with a token configured, the connection starts
      unauthenticated and must complete the ``auth`` challenge–response
      before any service verb is dispatched.
    """

    def setup(self) -> None:  # noqa: D102 — socketserver hook
        # StreamRequestHandler applies ``self.timeout`` to the socket;
        # shadow the class attribute with the server's idle timeout so
        # every read (including the TLS handshake) is bounded by it.
        self.timeout = self.server.conn_timeout  # type: ignore[attr-defined]
        super().setup()

    def handle(self) -> None:  # noqa: D102 — socketserver hook
        server: CometTCPServer = self.server  # type: ignore[assignment]
        client = self.client_address[0]
        limit = server.max_frame
        security = server.security
        if isinstance(self.connection, ssl.SSLSocket):
            try:
                self.connection.do_handshake()
            except (ssl.SSLError, OSError):
                return  # peer does not speak TLS (or stalled past timeout)
        authed = security is None or not security.requires_auth
        nonce: str | None = None
        while True:
            try:
                line = self.rfile.readline(limit + 1)
            except (ConnectionError, OSError):
                return  # peer vanished mid-read, or idled past conn_timeout
            if not line:
                return  # clean EOF between frames
            if len(line) > limit:
                # Drop the rest of the oversized line — unless readline
                # already returned a complete line (frame of exactly
                # limit+1 bytes), where draining would eat the client's
                # *next* request. EOF mid-drain closes after the reply.
                drained = line.endswith(b"\n") or self._drain_line(limit)
                if not self._reply(_frame_error(f"frame exceeds {limit} bytes")):
                    return
                if not drained:
                    return
                continue
            if not line.endswith(b"\n"):
                # EOF in the middle of a frame: report, then close.
                self._reply(_frame_error("truncated frame (EOF before newline)"))
                return
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            request, error = parse_request(text)
            if error is not None:
                if not self._reply(error):
                    return
                continue
            action = request.get("action")
            if action == "auth":
                response, authed, nonce, close_after = self._auth_exchange(
                    security, request, authed, nonce
                )
                if not self._reply(response) or close_after:
                    return
                continue
            if not authed:
                # No verb is dispatched, no quota consumed, no pickle
                # decoded: the request dies at the transport layer.
                response = _unauthorized_response(
                    "this server requires authentication; complete the "
                    "'auth' challenge-response first "
                    "(CometClient(..., auth_token=...))",
                    mechanism="hmac-sha256",
                )
                if not self._reply(response):
                    return
                continue
            if action == "shutdown":
                if not server.shutdown_allowed(client):
                    response = _unauthorized_response(
                        "the shutdown verb is restricted to loopback peers "
                        "on an unauthenticated server; restart with "
                        "--auth-token or --allow-remote-shutdown to enable "
                        "remote shutdown"
                    )
                    if not self._reply(response):
                        return
                    continue
                if not self._reply({"ok": True, "result": {"shutdown": True}}):
                    return
                server.request_shutdown()
                return
            if not self._reply(server.service.handle(request, client=client)):
                return

    def _auth_exchange(
        self,
        security: TransportSecurity | None,
        request: dict,
        authed: bool,
        nonce: str | None,
    ) -> tuple[dict, bool, str | None, bool]:
        """One step of the transport-level ``auth`` verb.

        Two-frame HMAC challenge–response: ``{"action": "auth"}`` yields
        a single-use nonce; ``{"action": "auth", "mac": HMAC(token,
        nonce)}`` proves possession of the shared token without it ever
        crossing the wire. Returns ``(response, authed, nonce, close)``
        — a failed proof closes the connection, so each retry costs the
        peer a reconnect.
        """
        if security is None or not security.requires_auth:
            return (
                {"ok": True, "result": {"authenticated": True, "required": False}},
                True,
                None,
                False,
            )
        mac = request.get("mac")
        if mac is None:
            nonce = new_nonce()
            return (
                {"ok": True, "result": {"nonce": nonce, "mechanism": "hmac-sha256"}},
                authed,
                nonce,
                False,
            )
        if nonce is not None and security.check_mac(ROLE_CLIENT, nonce, mac):
            return ({"ok": True, "result": {"authenticated": True}}, True, None, False)
        message = (
            "invalid auth credential"
            if nonce is not None
            else "no challenge outstanding; request one with {'action': 'auth'}"
        )
        return (_unauthorized_response(message), authed, None, True)

    def _drain_line(self, limit: int) -> bool:
        """Consume the oversized frame up to its newline.

        Returns False when EOF arrives first (the frame was also
        truncated — the connection is done after the error reply).
        """
        while True:
            try:
                chunk = self.rfile.readline(limit + 1)
            except (ConnectionError, OSError):
                return False
            if not chunk:
                return False
            if chunk.endswith(b"\n"):
                return True

    def _reply(self, response: dict) -> bool:
        try:
            self.wfile.write(encode_frame(response))
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


class CometTCPServer(_CometServerMixin, socketserver.ThreadingTCPServer):
    """Line-delimited-JSON TCP transport over one :class:`CometService`.

    Each connection gets its own handler thread, so a connection blocked
    in a synchronous ``run`` never delays another connection's
    ``status`` — and ``"wait": false`` keeps even a single connection
    responsive. Bind to port 0 for an ephemeral port (read it back from
    :attr:`port`).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: CometService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        security: TransportSecurity | None = None,
        conn_timeout: float | None = None,
        allow_remote_shutdown: bool = False,
    ) -> None:
        super().__init__(
            service,
            address,
            _TCPHandler,
            max_frame=max_frame,
            thread_name="comet-tcp-server",
            security=security,
            conn_timeout=conn_timeout,
            allow_remote_shutdown=allow_remote_shutdown,
        )


# ---------------------------------------------------------------------- #
# HTTP/1.1 adapter
# ---------------------------------------------------------------------- #
class _HTTPHandler(BaseHTTPRequestHandler):
    """Maps a tiny URL surface onto the service verbs."""

    protocol_version = "HTTP/1.1"
    server: "CometHTTPServer"

    # -- plumbing ------------------------------------------------------- #
    def setup(self) -> None:  # noqa: D102 — socketserver hook
        # The server's idle timeout bounds every read on this connection
        # (keep-alive waits included); http.server turns a timed-out
        # read into a clean connection close.
        self.timeout = self.server.conn_timeout
        super().setup()

    def handle(self) -> None:  # noqa: D102 — http.server hook
        if isinstance(self.connection, ssl.SSLSocket):
            try:
                self.connection.do_handshake()
            except (ssl.SSLError, OSError):
                self.close_connection = True
                return  # peer does not speak TLS
        super().handle()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the operator's concern, not stderr's

    def _authorized(self) -> bool:
        """Bearer-token gate, applied before any verb or body handling.

        An unauthorized request gets the structured 401 without its body
        ever being read (so nothing is parsed, dispatched, or counted
        against quotas) — and the connection closes, because the unread
        body would desynchronize keep-alive.
        """
        security = self.server.security
        if security is None or not security.requires_auth:
            return True
        if security.check_bearer(self.headers.get("Authorization")):
            return True
        self.close_connection = True
        self._send_json(
            401,
            _unauthorized_response(
                "missing or invalid Authorization header; send "
                "'Authorization: Bearer <token>'",
                mechanism="bearer",
            ),
        )
        return False

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set by the body-error paths: the request body was never
            # consumed, so a kept-alive connection would parse it as
            # the next request. Announce the close we are about to do.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_response(self, response: dict) -> None:
        self._send_json(200 if response.get("ok") else 400, response)

    def _read_body(self) -> dict | None:
        """The JSON object body, or None after an error was sent."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            # The body (of unknowable size) stays unread: close the
            # connection rather than parse it as the next request.
            self.close_connection = True
            self._send_json(
                400,
                _frame_error("Content-Length must be a non-negative integer"),
            )
            return None
        if length > self.server.max_frame:
            self.close_connection = True  # oversized body stays unread
            self._send_json(
                413, _frame_error(f"frame exceeds {self.server.max_frame} bytes")
            )
            return None
        raw = self.rfile.read(length) if length else b"{}"
        if len(raw) < length:
            self.close_connection = True  # stream already desynchronized
            self._send_json(400, _frame_error("truncated body"))
            return None
        try:
            body = json.loads(raw.decode("utf-8", errors="replace") or "{}")
        except json.JSONDecodeError as exc:
            self._send_json(400, _frame_error(f"invalid JSON: {exc}"))
            return None
        if not isinstance(body, dict):
            self._send_json(400, _frame_error("request body must be a JSON object"))
            return None
        return body

    def _handle(self, request: dict) -> None:
        response = self.server.service.handle(
            request, client=self.client_address[0]
        )
        self._send_response(response)

    # -- methods -------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        if not self._authorized():
            return
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts and parts[0] == "status" and len(parts) <= 2:
            request: dict = {"action": "status"}
            if len(parts) == 2:
                request["name"] = parts[1]
            self._handle(request)
            return
        self._send_json(
            404,
            _frame_error(
                f"unknown path {self.path!r}; GET serves /status[/<name>]"
            ),
        )

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        if not self._authorized():
            return
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        body = self._read_body()
        if body is None:
            return
        if parts == ["shutdown"]:
            if not self.server.shutdown_allowed(self.client_address[0]):
                self._send_json(
                    403,
                    _unauthorized_response(
                        "POST /shutdown is restricted to loopback peers on "
                        "an unauthenticated server; restart with "
                        "--auth-token or --allow-remote-shutdown to enable "
                        "remote shutdown"
                    ),
                )
                return
            self._send_json(200, {"ok": True, "result": {"shutdown": True}})
            self.server.request_shutdown()
            return
        if parts == ["rpc"]:
            self._handle(body)
            return
        if len(parts) == 1 and parts[0] in _HTTP_VERBS:
            self._handle({"action": parts[0], **body})
            return
        self._send_json(
            404,
            _frame_error(
                f"unknown path {self.path!r}; POST serves /rpc, /shutdown, "
                f"and /{'|/'.join(_HTTP_VERBS)}"
            ),
        )


class CometHTTPServer(_CometServerMixin, ThreadingHTTPServer):
    """Minimal HTTP/1.1 adapter exposing the service verbs.

    ``POST /rpc`` takes a full ``{"action": ..., ...}`` request object;
    ``POST /<verb>`` takes the verb's fields; ``GET /status`` and
    ``GET /status/<name>`` mirror the status verb. Responses are the
    JSON envelopes of :meth:`CometService.handle` with HTTP status 200
    (ok), 400 (handled error), 404 (unknown path), or 413 (oversized).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: CometService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        security: TransportSecurity | None = None,
        conn_timeout: float | None = None,
        allow_remote_shutdown: bool = False,
    ) -> None:
        super().__init__(
            service,
            address,
            _HTTPHandler,
            max_frame=max_frame,
            thread_name="comet-http-server",
            security=security,
            conn_timeout=conn_timeout,
            allow_remote_shutdown=allow_remote_shutdown,
        )


# ---------------------------------------------------------------------- #
# programmatic client
# ---------------------------------------------------------------------- #
class CometClientError(ServiceError):
    """A server-side failure, rehydrated client-side.

    Carries the structured error object: :attr:`error_type` and
    :attr:`code` mirror the server's exception type and machine code,
    ``details`` the quota/busy specifics.
    """

    def __init__(self, error: dict) -> None:
        super().__init__(
            error.get("message", "service error"), **error.get("details", {})
        )
        self.error_type = error.get("type", "Exception")
        self.code = error.get("code", "service_error")


class CometConnectionError(CometClientError, ConnectionError):
    """The transport failed: connect retries exhausted, or the server
    vanished mid-call.

    Doubly inherits :class:`ConnectionError` so callers written against
    the raw socket exceptions (``except OSError`` / ``except
    ConnectionError``) keep working, while new callers branch on the
    structured ``code`` like any other :class:`CometClientError`.
    """

    def __init__(self, message: str, **details) -> None:
        super().__init__(
            {
                "type": "ConnectionError",
                "message": message,
                "code": "connection_lost",
                "details": details,
            }
        )


#: Connect errors worth retrying: the server is starting up or briefly
#: restarting.  DNS failures and unreachable routes are not transient.
_TRANSIENT_CONNECT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class CometClient:
    """Speak the line-delimited-JSON TCP protocol programmatically.

    One client wraps one connection; requests on it are serialized
    (open several clients for concurrency). ``call`` returns the raw
    response envelope; the verb methods unwrap ``result`` and raise
    :class:`CometClientError` on ``ok: false``.

    Parameters
    ----------
    port, host:
        Where the :class:`CometTCPServer` listens.
    timeout:
        Socket timeout in seconds; ``None`` (default) blocks for as
        long as a synchronous ``run`` takes. Set a timeout when using
        ``wait=False`` verbs to keep the client itself responsive.
    retries:
        Bounded attempts for the *initial* connect: refused and reset
        connections (a server still binding its port, briefly
        restarting) are retried with linear backoff; other failures
        raise immediately.  After the last attempt the refusal
        surfaces as :class:`CometConnectionError`.
    backoff:
        Base seconds between connect attempts (attempt ``n`` waits
        ``n × backoff``).
    tls:
        Wrap the connection in TLS: ``True`` verifies the server
        against the system CA store, a path string points at a CA
        bundle — hand it the server's own certificate to *pin* a
        self-signed deployment — and an ``ssl.SSLContext`` is used
        as-is. A failed TLS handshake is never retried (it is a
        configuration mismatch, not a transient refusal).
    auth_token:
        Shared token for servers started with ``--auth-token``: the
        client runs the HMAC challenge–response right after
        connecting, so the token never crosses the wire. A rejected
        token raises :class:`CometClientError` with ``code ==
        "unauthorized"`` immediately — auth failures are terminal and
        are **not** retried by the connect-retry loop.
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        *,
        timeout: float | None = None,
        retries: int = 3,
        backoff: float = 0.1,
        tls: bool | str | ssl.SSLContext | None = None,
        auth_token: str | None = None,
    ) -> None:
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        last: OSError | None = None
        for attempt in range(retries):
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except _TRANSIENT_CONNECT_ERRORS as exc:
                last = exc
                time.sleep(backoff * (attempt + 1))
        else:
            raise CometConnectionError(
                f"cannot connect to {host}:{port} after {retries} "
                f"attempts: {last}",
                host=host,
                port=port,
                retries=retries,
            ) from last
        if tls:
            try:
                self._sock = self._tls_context(tls).wrap_socket(
                    self._sock, server_hostname=host
                )
            except (ssl.SSLError, OSError) as exc:
                self._sock.close()
                raise CometConnectionError(
                    f"TLS handshake with {host}:{port} failed: {exc}",
                    host=host,
                    port=port,
                ) from exc
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._broken = False
        if auth_token:
            try:
                self._authenticate(auth_token)
            except BaseException:
                self.close()
                raise

    @staticmethod
    def _tls_context(tls: bool | str | ssl.SSLContext) -> ssl.SSLContext:
        if isinstance(tls, ssl.SSLContext):
            return tls
        cafile = None if tls is True else str(tls)
        return ssl.create_default_context(cafile=cafile)

    def _authenticate(self, token: str) -> None:
        """Run the transport-level HMAC challenge–response.

        Servers without auth answer the challenge with ``authenticated``
        directly (no nonce), so passing a token to an open server is
        harmless.
        """
        challenge = self._result({"action": "auth"})
        nonce = challenge.get("nonce")
        if nonce is None:
            return  # server does not require authentication
        self._result(
            {"action": "auth", "mac": compute_mac(token, ROLE_CLIENT, nonce)}
        )

    # -- transport ------------------------------------------------------ #
    def call(self, request: dict) -> dict:
        """Send one request object, return the raw response envelope.

        Mid-call transport failures poison the connection (a late
        response would desynchronize subsequent calls) and surface as
        :class:`CometConnectionError`; a *timeout* re-raises the raw
        ``TimeoutError`` so callers can distinguish their own deadline
        from a vanished server.
        """
        payload = encode_frame(request)
        with self._lock:
            if self._broken:
                raise CometConnectionError(
                    "connection is desynchronized after a timeout or "
                    "socket error; open a new CometClient"
                )
            try:
                self._sock.sendall(payload)
                line = self._rfile.readline()
            except TimeoutError:
                # The response to this request may still arrive later;
                # a subsequent call would read it as its own. Poison the
                # connection instead of silently mismatching frames.
                self._broken = True
                raise
            except OSError as exc:
                self._broken = True
                raise CometConnectionError(
                    f"connection lost mid-call: {exc}"
                ) from exc
        if not line:
            self._broken = True
            raise CometConnectionError(
                "server closed the connection before responding"
            )
        return json.loads(line.decode("utf-8"))

    def _result(self, request: dict) -> dict:
        response = self.call(request)
        if not response.get("ok"):
            raise CometClientError(response.get("error") or {})
        return response["result"]

    # -- verbs ---------------------------------------------------------- #
    def create(
        self,
        name: str,
        params: dict | None = None,
        *,
        checkpoint: str | None = None,
    ) -> dict:
        request: dict = {"action": "create", "name": name}
        if checkpoint is not None:
            request["checkpoint"] = checkpoint
        else:
            request["params"] = params or {}
        return self._result(request)

    def recommend(self, name: str, k: int = 3) -> list[dict]:
        return self._result({"action": "recommend", "name": name, "k": k})[
            "candidates"
        ]

    def step(self, name: str, *, wait: bool = True) -> dict:
        return self._result({"action": "step", "name": name, "wait": wait})

    def run(
        self,
        name: str,
        max_iterations: int | None = None,
        *,
        wait: bool = True,
    ) -> dict:
        request: dict = {"action": "run", "name": name, "wait": wait}
        if max_iterations is not None:
            request["max_iterations"] = max_iterations
        return self._result(request)

    def result(self, name: str, *, wait: bool = True) -> dict:
        return self._result({"action": "result", "name": name, "wait": wait})

    def status(self, name: str | None = None) -> dict:
        request: dict = {"action": "status"}
        if name is not None:
            request["name"] = name
        return self._result(request)

    def checkpoint(self, name: str, path: str) -> dict:
        return self._result(
            {"action": "checkpoint", "name": name, "path": str(path)}
        )

    def close_session(self, name: str) -> dict:
        return self._result({"action": "close", "name": name})

    def shutdown_server(self) -> dict:
        """Ask the server process to stop serving (stream-level verb)."""
        return self._result({"action": "shutdown"})

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (the server keeps running)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "CometClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
