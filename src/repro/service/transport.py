"""Network transports for :class:`~repro.service.CometService`.

Everything here is stdlib-only and speaks the same verbs as the
in-process ``handle`` — a networked trace is bit-identical to an
in-process one because the transport only moves JSON, never touches
session state.

- :class:`CometTCPServer` — line-delimited JSON over TCP: one request
  per line in, one response per line out, many concurrent connections
  (``socketserver.ThreadingTCPServer``). Malformed, oversized, and
  truncated frames come back as structured error responses; only a
  vanished peer ends a connection.
- :class:`CometHTTPServer` — a minimal HTTP/1.1 adapter for
  curl/browser clients: ``POST /rpc`` with a full request object,
  ``POST /<verb>`` with the verb's fields, ``GET /status[/<name>]``.
- :class:`CometClient` — a small programmatic client for the TCP
  transport; verb methods unwrap ``result`` or raise
  :class:`CometClientError` carrying the server's structured error.

Both servers honor the stream-level ``shutdown`` verb (``POST
/shutdown`` over HTTP): the response is sent, then ``serve_forever``
returns — which is how the CLI's ``serve --port`` terminates cleanly
from a remote request. Quota accounting keys on the peer host, so every
connection from one machine shares that client's session allowance.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

# The line-delimited-JSON framing lives in the runtime layer
# (``repro.runtime.wire``) so the distributed execution backend speaks
# the same format; this module reuses the helpers and keeps only the
# server-side frame-recovery logic (drain, keep-alive) that is specific
# to serving untrusted request streams.
from repro.runtime.wire import DEFAULT_MAX_FRAME, encode_frame
from repro.runtime.wire import frame_error as _frame_error
from repro.service.quotas import ServiceError
from repro.service.service import CometService, dispatch_line

__all__ = [
    "CometTCPServer",
    "CometHTTPServer",
    "CometClient",
    "CometClientError",
    "CometConnectionError",
    "DEFAULT_MAX_FRAME",
]

#: Verbs the HTTP adapter exposes as ``POST /<verb>``.
_HTTP_VERBS = (
    "create",
    "recommend",
    "step",
    "run",
    "status",
    "result",
    "checkpoint",
    "close",
)


class _CometServerMixin:
    """Shared lifecycle of both networked servers (TCP and HTTP).

    Expects to precede a ``socketserver.BaseServer`` subclass in the
    MRO; holds the service reference, frame limit, address accessors,
    and the two shutdown/backgrounding helpers.
    """

    def __init__(
        self,
        service: CometService,
        address: tuple[str, int],
        handler,
        *,
        max_frame: int,
        thread_name: str,
    ) -> None:
        super().__init__(address, handler)
        self.service = service
        self.max_frame = max_frame
        self._thread_name = thread_name

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def request_shutdown(self) -> None:
        """Stop ``serve_forever`` without joining the caller's thread."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(
            target=self.serve_forever, name=self._thread_name, daemon=True
        )
        thread.start()
        return thread


# ---------------------------------------------------------------------- #
# TCP: line-delimited JSON
# ---------------------------------------------------------------------- #
class _TCPHandler(socketserver.StreamRequestHandler):
    """One connection: a loop of JSON lines, resilient to bad frames."""

    def handle(self) -> None:  # noqa: D102 — socketserver hook
        server: CometTCPServer = self.server  # type: ignore[assignment]
        client = self.client_address[0]
        limit = server.max_frame
        while True:
            try:
                line = self.rfile.readline(limit + 1)
            except (ConnectionError, OSError):
                return  # peer vanished mid-read
            if not line:
                return  # clean EOF between frames
            if len(line) > limit:
                # Drop the rest of the oversized line — unless readline
                # already returned a complete line (frame of exactly
                # limit+1 bytes), where draining would eat the client's
                # *next* request. EOF mid-drain closes after the reply.
                drained = line.endswith(b"\n") or self._drain_line(limit)
                if not self._reply(_frame_error(f"frame exceeds {limit} bytes")):
                    return
                if not drained:
                    return
                continue
            if not line.endswith(b"\n"):
                # EOF in the middle of a frame: report, then close.
                self._reply(_frame_error("truncated frame (EOF before newline)"))
                return
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            response, stop = dispatch_line(server.service, text, client=client)
            if not self._reply(response):
                return
            if stop:
                server.request_shutdown()
                return

    def _drain_line(self, limit: int) -> bool:
        """Consume the oversized frame up to its newline.

        Returns False when EOF arrives first (the frame was also
        truncated — the connection is done after the error reply).
        """
        while True:
            try:
                chunk = self.rfile.readline(limit + 1)
            except (ConnectionError, OSError):
                return False
            if not chunk:
                return False
            if chunk.endswith(b"\n"):
                return True

    def _reply(self, response: dict) -> bool:
        try:
            self.wfile.write(encode_frame(response))
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


class CometTCPServer(_CometServerMixin, socketserver.ThreadingTCPServer):
    """Line-delimited-JSON TCP transport over one :class:`CometService`.

    Each connection gets its own handler thread, so a connection blocked
    in a synchronous ``run`` never delays another connection's
    ``status`` — and ``"wait": false`` keeps even a single connection
    responsive. Bind to port 0 for an ephemeral port (read it back from
    :attr:`port`).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: CometService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        super().__init__(
            service,
            address,
            _TCPHandler,
            max_frame=max_frame,
            thread_name="comet-tcp-server",
        )


# ---------------------------------------------------------------------- #
# HTTP/1.1 adapter
# ---------------------------------------------------------------------- #
class _HTTPHandler(BaseHTTPRequestHandler):
    """Maps a tiny URL surface onto the service verbs."""

    protocol_version = "HTTP/1.1"
    server: "CometHTTPServer"

    # -- plumbing ------------------------------------------------------- #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the operator's concern, not stderr's

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set by the body-error paths: the request body was never
            # consumed, so a kept-alive connection would parse it as
            # the next request. Announce the close we are about to do.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_response(self, response: dict) -> None:
        self._send_json(200 if response.get("ok") else 400, response)

    def _read_body(self) -> dict | None:
        """The JSON object body, or None after an error was sent."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length < 0:
            # The body (of unknowable size) stays unread: close the
            # connection rather than parse it as the next request.
            self.close_connection = True
            self._send_json(
                400,
                _frame_error("Content-Length must be a non-negative integer"),
            )
            return None
        if length > self.server.max_frame:
            self.close_connection = True  # oversized body stays unread
            self._send_json(
                413, _frame_error(f"frame exceeds {self.server.max_frame} bytes")
            )
            return None
        raw = self.rfile.read(length) if length else b"{}"
        if len(raw) < length:
            self.close_connection = True  # stream already desynchronized
            self._send_json(400, _frame_error("truncated body"))
            return None
        try:
            body = json.loads(raw.decode("utf-8", errors="replace") or "{}")
        except json.JSONDecodeError as exc:
            self._send_json(400, _frame_error(f"invalid JSON: {exc}"))
            return None
        if not isinstance(body, dict):
            self._send_json(400, _frame_error("request body must be a JSON object"))
            return None
        return body

    def _handle(self, request: dict) -> None:
        response = self.server.service.handle(
            request, client=self.client_address[0]
        )
        self._send_response(response)

    # -- methods -------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts and parts[0] == "status" and len(parts) <= 2:
            request: dict = {"action": "status"}
            if len(parts) == 2:
                request["name"] = parts[1]
            self._handle(request)
            return
        self._send_json(
            404,
            _frame_error(
                f"unknown path {self.path!r}; GET serves /status[/<name>]"
            ),
        )

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        body = self._read_body()
        if body is None:
            return
        if parts == ["shutdown"]:
            self._send_json(200, {"ok": True, "result": {"shutdown": True}})
            self.server.request_shutdown()
            return
        if parts == ["rpc"]:
            self._handle(body)
            return
        if len(parts) == 1 and parts[0] in _HTTP_VERBS:
            self._handle({"action": parts[0], **body})
            return
        self._send_json(
            404,
            _frame_error(
                f"unknown path {self.path!r}; POST serves /rpc, /shutdown, "
                f"and /{'|/'.join(_HTTP_VERBS)}"
            ),
        )


class CometHTTPServer(_CometServerMixin, ThreadingHTTPServer):
    """Minimal HTTP/1.1 adapter exposing the service verbs.

    ``POST /rpc`` takes a full ``{"action": ..., ...}`` request object;
    ``POST /<verb>`` takes the verb's fields; ``GET /status`` and
    ``GET /status/<name>`` mirror the status verb. Responses are the
    JSON envelopes of :meth:`CometService.handle` with HTTP status 200
    (ok), 400 (handled error), 404 (unknown path), or 413 (oversized).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        service: CometService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        super().__init__(
            service,
            address,
            _HTTPHandler,
            max_frame=max_frame,
            thread_name="comet-http-server",
        )


# ---------------------------------------------------------------------- #
# programmatic client
# ---------------------------------------------------------------------- #
class CometClientError(ServiceError):
    """A server-side failure, rehydrated client-side.

    Carries the structured error object: :attr:`error_type` and
    :attr:`code` mirror the server's exception type and machine code,
    ``details`` the quota/busy specifics.
    """

    def __init__(self, error: dict) -> None:
        super().__init__(
            error.get("message", "service error"), **error.get("details", {})
        )
        self.error_type = error.get("type", "Exception")
        self.code = error.get("code", "service_error")


class CometConnectionError(CometClientError, ConnectionError):
    """The transport failed: connect retries exhausted, or the server
    vanished mid-call.

    Doubly inherits :class:`ConnectionError` so callers written against
    the raw socket exceptions (``except OSError`` / ``except
    ConnectionError``) keep working, while new callers branch on the
    structured ``code`` like any other :class:`CometClientError`.
    """

    def __init__(self, message: str, **details) -> None:
        super().__init__(
            {
                "type": "ConnectionError",
                "message": message,
                "code": "connection_lost",
                "details": details,
            }
        )


#: Connect errors worth retrying: the server is starting up or briefly
#: restarting.  DNS failures and unreachable routes are not transient.
_TRANSIENT_CONNECT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class CometClient:
    """Speak the line-delimited-JSON TCP protocol programmatically.

    One client wraps one connection; requests on it are serialized
    (open several clients for concurrency). ``call`` returns the raw
    response envelope; the verb methods unwrap ``result`` and raise
    :class:`CometClientError` on ``ok: false``.

    Parameters
    ----------
    port, host:
        Where the :class:`CometTCPServer` listens.
    timeout:
        Socket timeout in seconds; ``None`` (default) blocks for as
        long as a synchronous ``run`` takes. Set a timeout when using
        ``wait=False`` verbs to keep the client itself responsive.
    retries:
        Bounded attempts for the *initial* connect: refused and reset
        connections (a server still binding its port, briefly
        restarting) are retried with linear backoff; other failures
        raise immediately.  After the last attempt the refusal
        surfaces as :class:`CometConnectionError`.
    backoff:
        Base seconds between connect attempts (attempt ``n`` waits
        ``n × backoff``).
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        *,
        timeout: float | None = None,
        retries: int = 3,
        backoff: float = 0.1,
    ) -> None:
        if retries < 1:
            raise ValueError(f"retries must be >= 1, got {retries}")
        last: OSError | None = None
        for attempt in range(retries):
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except _TRANSIENT_CONNECT_ERRORS as exc:
                last = exc
                time.sleep(backoff * (attempt + 1))
        else:
            raise CometConnectionError(
                f"cannot connect to {host}:{port} after {retries} "
                f"attempts: {last}",
                host=host,
                port=port,
                retries=retries,
            ) from last
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._broken = False

    # -- transport ------------------------------------------------------ #
    def call(self, request: dict) -> dict:
        """Send one request object, return the raw response envelope.

        Mid-call transport failures poison the connection (a late
        response would desynchronize subsequent calls) and surface as
        :class:`CometConnectionError`; a *timeout* re-raises the raw
        ``TimeoutError`` so callers can distinguish their own deadline
        from a vanished server.
        """
        payload = encode_frame(request)
        with self._lock:
            if self._broken:
                raise CometConnectionError(
                    "connection is desynchronized after a timeout or "
                    "socket error; open a new CometClient"
                )
            try:
                self._sock.sendall(payload)
                line = self._rfile.readline()
            except TimeoutError:
                # The response to this request may still arrive later;
                # a subsequent call would read it as its own. Poison the
                # connection instead of silently mismatching frames.
                self._broken = True
                raise
            except OSError as exc:
                self._broken = True
                raise CometConnectionError(
                    f"connection lost mid-call: {exc}"
                ) from exc
        if not line:
            self._broken = True
            raise CometConnectionError(
                "server closed the connection before responding"
            )
        return json.loads(line.decode("utf-8"))

    def _result(self, request: dict) -> dict:
        response = self.call(request)
        if not response.get("ok"):
            raise CometClientError(response.get("error") or {})
        return response["result"]

    # -- verbs ---------------------------------------------------------- #
    def create(
        self,
        name: str,
        params: dict | None = None,
        *,
        checkpoint: str | None = None,
    ) -> dict:
        request: dict = {"action": "create", "name": name}
        if checkpoint is not None:
            request["checkpoint"] = checkpoint
        else:
            request["params"] = params or {}
        return self._result(request)

    def recommend(self, name: str, k: int = 3) -> list[dict]:
        return self._result({"action": "recommend", "name": name, "k": k})[
            "candidates"
        ]

    def step(self, name: str, *, wait: bool = True) -> dict:
        return self._result({"action": "step", "name": name, "wait": wait})

    def run(
        self,
        name: str,
        max_iterations: int | None = None,
        *,
        wait: bool = True,
    ) -> dict:
        request: dict = {"action": "run", "name": name, "wait": wait}
        if max_iterations is not None:
            request["max_iterations"] = max_iterations
        return self._result(request)

    def result(self, name: str, *, wait: bool = True) -> dict:
        return self._result({"action": "result", "name": name, "wait": wait})

    def status(self, name: str | None = None) -> dict:
        request: dict = {"action": "status"}
        if name is not None:
            request["name"] = name
        return self._result(request)

    def checkpoint(self, name: str, path: str) -> dict:
        return self._result(
            {"action": "checkpoint", "name": name, "path": str(path)}
        )

    def close_session(self, name: str) -> dict:
        return self._result({"action": "close", "name": name})

    def shutdown_server(self) -> dict:
        """Ask the server process to stop serving (stream-level verb)."""
        return self._result({"action": "shutdown"})

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (the server keeps running)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "CometClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
