"""Session protocol: serializable cleaning state plus the engine advancing it.

The Figure-2 loop is split into two halves:

- :class:`SessionState` — a plain dataclass holding everything a run
  needs to continue (dataset, budget, buffer, candidates, outcome
  history, trace, RNG bit-generator state). Pickle-serializable and
  checkpointable via ``state.save(path)``.
- :class:`CleaningSession` — the engine that advances a state: the
  orchestration loop, the execution backend, and the
  :class:`SessionObserver` streaming hooks.

``CleaningSession.load(path)`` resumes a checkpoint *bit-identically*:
the resumed run's :class:`~repro.core.trace.CleaningTrace` equals the
uninterrupted run's, across serial and pooled backends — the
``repro.runtime`` determinism contract extended across restarts.

:class:`~repro.core.Comet` remains the stable single-session façade over
this package; :class:`~repro.service.CometService` serves many named
sessions over one shared backend.
"""

from repro.session.engine import CleaningSession, SessionObserver
from repro.session.state import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointVersionError,
    SessionState,
)

__all__ = [
    "CleaningSession",
    "SessionObserver",
    "SessionState",
    "CheckpointVersionError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
]
