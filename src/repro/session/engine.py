"""The session engine: advances a :class:`SessionState` through Figure 2.

One iteration: measure the current F1, run the Polluter + Estimator over
every open (feature, error) candidate, let the Recommender select by
score, have the Cleaner perform one cleaning step, keep it if the F1 did
not decrease, otherwise revert into the cleaning buffer and try the next
candidate; fall back to the historically best candidate when nothing is
predicted to help. Repeats until the budget is spent or the Cleaner has
marked every candidate clean.

The engine owns everything that must *not* be serialized — the execution
backend and the observers — while all evolving run state lives in the
:class:`~repro.session.SessionState` it advances. ``session.save(path)``
checkpoints mid-run; ``CleaningSession.load(path)`` resumes, and the
resumed trace is bit-identical to an uninterrupted run's (the
``repro.runtime`` determinism contract extended across process
boundaries and restarts).
"""

from __future__ import annotations

import numpy as np

from repro.cleaning import Budget, CleaningBuffer, CostModel, GroundTruthCleaner, uniform_cost_model
from repro.core.config import CometConfig
from repro.core.estimator import CometEstimator, Prediction
from repro.core.recommender import CometRecommender, ScoredCandidate
from repro.core.trace import CleaningTrace, IterationRecord
from repro.errors.base import ErrorType, make_error
from repro.errors.prepollution import PollutedDataset
from repro.ml.base import BaseEstimator
from repro.ml.model_selection import RandomSearch
from repro.ml.pipeline import TabularModel
from repro.ml.preprocessing import TabularPreprocessor
from repro.ml.registry import hyperparameter_space, make_classifier
from repro.runtime import ExecutionBackend, make_backend
from repro.session.state import SessionState

__all__ = ["CleaningSession", "SessionObserver"]


class SessionObserver:
    """Streaming progress hooks for a :class:`CleaningSession`.

    Subclass and override any subset; the engine calls every registered
    observer synchronously, in registration order, from the session's
    thread. Observers are engine-side objects — they are *not* part of
    the serialized state and must be re-registered after ``load``.
    """

    def on_iteration(self, session: "CleaningSession", records: list[IterationRecord]) -> None:
        """Called after each estimation sweep with the records it produced."""

    def on_accept(self, session: "CleaningSession", record: IterationRecord) -> None:
        """Called when a cleaning step is kept."""

    def on_revert(self, session: "CleaningSession", feature: str, error: str) -> None:
        """Called when a cleaning step is reverted into the buffer."""


def _tune_model(
    model: BaseEstimator,
    algorithm_name: str,
    dataset: PollutedDataset,
    config: CometConfig,
    seed: int,
) -> None:
    """The paper's 10-sample random hyperparameter search (§4.4)."""
    space = hyperparameter_space(algorithm_name)
    features = dataset.feature_names
    preprocessor = TabularPreprocessor(features).fit(dataset.train)
    X = preprocessor.transform(dataset.train)
    y = dataset.train.label_array(dataset.label)
    search = RandomSearch(model, space, n_iter=config.search_iterations, rng=seed)
    search.fit(X, y)
    model.set_params(**search.best_params_)


class CleaningSession:
    """Advance a serializable cleaning-session state (the Figure-2 loop).

    Construct one of three ways:

    - :meth:`create` — start a fresh session from a polluted dataset
      (the same parameters :class:`~repro.core.Comet` accepts);
    - :meth:`load` — resume a checkpoint written by :meth:`save`;
    - directly, wrapping an existing :class:`SessionState` — e.g. the
      :class:`~repro.service.CometService` wiring many sessions onto one
      shared backend.

    Parameters
    ----------
    state:
        The session state to advance (mutated in place).
    backend:
        Execution backend for the Estimator's E1 sweep: a registry name
        or an :class:`~repro.runtime.ExecutionBackend` instance. Traces
        are bit-identical across backends for a fixed state.
    jobs:
        Worker count for pooled backends; ``1`` falls back to serial.
    observers:
        Initial :class:`SessionObserver` instances.
    own_backend:
        Whether :meth:`close` shuts the backend down. Defaults to
        ``True`` for backends built here from a name and ``False`` for
        injected instances (which the injector — e.g. a service sharing
        one pool across sessions — is responsible for).
    """

    def __init__(
        self,
        state: SessionState,
        *,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
        observers=(),
        own_backend: bool | None = None,
    ) -> None:
        self.state = state
        if own_backend is None:
            own_backend = not isinstance(backend, ExecutionBackend)
        self._own_backend = own_backend
        self.backend = make_backend(backend, jobs)
        self._observers: list[SessionObserver] = list(observers)
        # Engine components share the state's RNGs and history dicts by
        # reference, so advancing them advances the checkpointable state.
        self.estimator = CometEstimator(
            state.model,
            label=state.dataset.label,
            config=state.config,
            rng=state.estimator_rng,
            task=state.task,
            history=state.estimator_history,
        )
        self.recommender = CometRecommender(
            state.config, history=state.recommender_history
        )
        self._error_by_name = {e.name: e for e in state.errors}

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        dataset: PollutedDataset,
        algorithm: str | BaseEstimator = "svm",
        error_types=("missing",),
        budget: float = 50.0,
        cost_model: CostModel | None = None,
        config: CometConfig | None = None,
        rng: np.random.Generator | int | None = None,
        task: str = "classification",
        cleaner=None,
        *,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
        observers=(),
        own_backend: bool | None = None,
    ) -> "CleaningSession":
        """Start a fresh session (parameters as in :class:`~repro.core.Comet`).

        The order of RNG draws here is load-bearing: it matches the
        historical ``Comet.__init__`` exactly, so seeded runs through
        either entry point produce identical traces.
        """
        config = config or CometConfig()
        dataset = dataset.copy()
        session_rng = np.random.default_rng(rng)
        if isinstance(algorithm, str):
            algorithm_name = algorithm
            model = make_classifier(algorithm)
        else:
            algorithm_name = type(algorithm).__name__
            model = algorithm
        if not isinstance(error_types, (list, tuple)):
            error_types = [error_types]
        errors: list[ErrorType] = [
            make_error(e) if isinstance(e, str) else e for e in error_types
        ]
        if not errors:
            raise ValueError("need at least one error type")
        cleaner = cleaner or GroundTruthCleaner(
            step=config.step, rng=session_rng.integers(2**63)
        )
        if config.search_iterations > 0 and isinstance(algorithm, str):
            _tune_model(
                model, algorithm_name, dataset, config,
                seed=session_rng.integers(2**63),
            )
        estimator_rng = np.random.default_rng(session_rng.integers(2**63))
        # COMET assumes every feature is dirty until the Cleaner marks it
        # clean (§3.1); candidates are all applicable (feature, error) pairs.
        active = [
            (feature, error.name)
            for feature in dataset.feature_names
            for error in errors
            if error.applies_to(dataset.train[feature])
        ]
        state = SessionState(
            config=config,
            task=task,
            algorithm_name=algorithm_name,
            model=model,
            errors=errors,
            dataset=dataset,
            budget=Budget(budget),
            cost_model=(cost_model or uniform_cost_model()).copy(),
            cleaner=cleaner,
            buffer=CleaningBuffer(),
            rng=session_rng,
            estimator_rng=estimator_rng,
            active=active,
        )
        return cls(
            state,
            backend=backend,
            jobs=jobs,
            observers=observers,
            own_backend=own_backend,
        )

    @classmethod
    def load(
        cls,
        path,
        *,
        backend: str | ExecutionBackend = "serial",
        jobs: int = 1,
        observers=(),
        own_backend: bool | None = None,
        migrate: bool = False,
    ) -> "CleaningSession":
        """Resume a checkpoint written by :meth:`save`.

        ``migrate=True`` upgrades old-but-migratable envelope versions
        in memory (see :mod:`repro.store.migrate`) instead of raising
        :class:`~repro.session.CheckpointVersionError`.
        """
        return cls(
            SessionState.load(path, migrate=migrate),
            backend=backend,
            jobs=jobs,
            observers=observers,
            own_backend=own_backend,
        )

    def save(self, path, *, meta: dict | None = None) -> None:
        """Checkpoint the session state (resumable at iteration boundaries).

        ``meta`` extends the checkpoint's envelope header (see
        :meth:`SessionState.save`).
        """
        self.state.save(path, meta=meta)

    # ------------------------------------------------------------------ #
    # observers
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: SessionObserver) -> None:
        """Register a streaming-progress observer."""
        self._observers.append(observer)

    def remove_observer(self, observer: SessionObserver) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def _notify(self, hook: str, *args) -> None:
        for observer in self._observers:
            getattr(observer, hook)(self, *args)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> CleaningTrace:
        """Iterate until the budget is spent or everything is marked clean.

        Continues an in-progress trace, so ``load → run`` finishes a
        checkpointed run exactly where ``save`` left off.
        """
        self._ensure_trace()
        while True:
            records = self.iterate()
            if not records:
                break
        return self.state.trace

    def step(self) -> IterationRecord | None:
        """Run one COMET iteration (single cleaning); ``None`` when over."""
        records = self.iterate(max_accepts=1)
        return records[0] if records else None

    def iterate(self, max_accepts: int | None = None) -> list[IterationRecord]:
        """One estimation sweep, cleaning up to ``max_accepts`` candidates.

        ``max_accepts`` defaults to ``config.batch_size``; values above 1
        implement the multi-feature-per-iteration extension (§6): the
        Polluter/Estimator sweep is paid once and several ranked
        candidates are cleaned from it. Produced records are appended to
        the session trace.
        """
        state = self.state
        if not state.active or state.budget.exhausted():
            return []
        if max_accepts is None:
            max_accepts = state.config.batch_size
        self._ensure_trace()
        baseline = self._baseline()
        predictions = self._estimate_candidates(baseline)
        ranked = self.recommender.rank(predictions, baseline, state.cost_model)
        state.iteration += 1
        records = self._try_candidates(ranked, baseline, max_accepts)
        if not records:
            fallback = self._fallback(predictions, baseline)
            if fallback is not None:
                records = [fallback]
        self._notify("on_iteration", records)
        return records

    def recommend(self, k: int = 1) -> list[ScoredCandidate]:
        """Pure recommendation: the top-``k`` scored candidates, no cleaning.

        For human-in-the-loop use: inspect what COMET would clean next
        (with predicted F1, uncertainty, and cost) without touching data
        or budget.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if not self.state.active:
            return []
        baseline = self._baseline()
        predictions = self._estimate_candidates(baseline)
        ranked = self.recommender.rank(predictions, baseline, self.state.cost_model)
        return ranked[:k]

    @property
    def trace(self) -> CleaningTrace | None:
        """The trace accumulated so far (``None`` before the first sweep)."""
        return self.state.trace

    @property
    def is_finished(self) -> bool:
        """True once the budget is spent or nothing is left to clean."""
        return self.state.is_finished

    def open_candidates(self) -> list[tuple[str, str]]:
        """(feature, error) pairs the Cleaner has not yet marked clean."""
        return self.state.open_candidates()

    def status(self) -> dict:
        """JSON-friendly progress snapshot of the session."""
        return self.state.status()

    def close(self) -> None:
        """Release the execution backend's worker pool (if owned).

        Safe to call repeatedly; the session stays usable afterwards
        (pooled backends restart lazily on the next sweep). Sessions
        sharing an injected backend leave it running for their siblings.
        """
        if self._own_backend:
            self.backend.shutdown()

    def __enter__(self) -> "CleaningSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_trace(self) -> None:
        if self.state.trace is None:
            self.state.trace = CleaningTrace(initial_f1=self._baseline())

    def _record(self, record: IterationRecord) -> None:
        """Append a kept record to the trace, *then* announce it.

        The trace entry lands before any observer runs, so an observer
        exception (or an observer reading ``session.trace``) can never
        see budget/data mutations that the trace does not yet reflect —
        a checkpoint taken afterwards stays resumable bit-identically.
        Driving the loop through the private ``_try_candidates`` /
        ``_fallback`` surface without a trace skips the bookkeeping,
        matching the historical behavior.
        """
        if self.state.trace is not None:
            self.state.trace.append(record)
        self._notify("on_accept", record)

    def _baseline(self) -> float:
        if self.state.current_f1 is None:
            self.state.current_f1 = self.measure_baseline()
        return self.state.current_f1

    def measure_baseline(self) -> float:
        """Fit on the current train split and score the test split."""
        state = self.state
        model = TabularModel(state.model, label=state.dataset.label, task=state.task)
        return model.fit_score(state.dataset.train, state.dataset.test)

    def _estimate_candidates(self, baseline: float) -> list[Prediction]:
        state = self.state
        candidates = [
            (feature, self._error_by_name[error_name])
            for feature, error_name in state.active
        ]
        return self.estimator.estimate_many(
            state.dataset.train,
            state.dataset.test,
            candidates,
            baseline,
            backend=self.backend,
        )

    def _try_candidates(
        self, ranked: list[ScoredCandidate], baseline: float, max_accepts: int = 1
    ) -> list[IterationRecord]:
        """Steps (C) and (D): clean by score, revert on decrease.

        Accepts up to ``max_accepts`` candidates from the same ranking;
        each accepted cleaning becomes the baseline for the next.
        """
        state = self.state
        records: list[IterationRecord] = []
        rejected: list[tuple[str, str]] = []
        for candidate in ranked:
            pair = (candidate.feature, candidate.error)
            if pair not in state.active:
                continue  # a previous accept in this sweep finished it
            from_buffer = pair in state.buffer
            if not from_buffer and not state.budget.can_afford(candidate.cost):
                continue
            cost = self._perform_cleaning(
                candidate.feature, candidate.error, candidate.prediction
            )
            f1_after = self.measure_baseline()
            self.estimator.record_outcome(candidate.prediction, f1_after)
            self.recommender.record_outcome(candidate.feature, candidate.error, f1_after)
            if f1_after >= baseline - 1e-12 or not state.config.revert_on_decrease:
                self._accept(pair, f1_after)
                record = IterationRecord(
                    iteration=state.iteration,
                    feature=candidate.feature,
                    error=candidate.error,
                    cost=cost,
                    budget_spent=state.budget.spent,
                    f1_before=baseline,
                    f1_after=f1_after,
                    predicted_f1=candidate.prediction.predicted_f1,
                    from_buffer=from_buffer,
                    rejected=list(rejected),
                )
                records.append(record)
                self._record(record)
                if len(records) >= max_accepts:
                    return records
                baseline = f1_after
                rejected = []
                continue
            self._revert_last(pair)
            rejected.append(pair)
        return records

    def _fallback(
        self, predictions: list[Prediction], baseline: float
    ) -> IterationRecord | None:
        """Step (E): clean the historically best candidate, keep the result."""
        state = self.state
        affordable = [
            pair
            for pair in state.active
            if (pair in state.buffer)
            or state.budget.can_afford(state.cost_model.next_cost(*pair))
        ]
        pair = self.recommender.fallback_candidate(affordable)
        if pair is None:
            return None
        feature, error_name = pair
        prediction = next(
            (p for p in predictions if (p.feature, p.error) == pair), None
        )
        cost = self._perform_cleaning(feature, error_name, prediction)
        f1_after = self.measure_baseline()
        if prediction is not None:
            self.estimator.record_outcome(prediction, f1_after)
        self.recommender.record_outcome(feature, error_name, f1_after)
        self._accept(pair, f1_after)
        record = IterationRecord(
            iteration=state.iteration,
            feature=feature,
            error=error_name,
            cost=cost,
            budget_spent=state.budget.spent,
            f1_before=baseline,
            f1_after=f1_after,
            predicted_f1=prediction.predicted_f1 if prediction else None,
            used_fallback=True,
        )
        self._record(record)
        return record

    def _perform_cleaning(
        self, feature: str, error: str, prediction: Prediction | None
    ) -> float:
        """Replay from the buffer when possible, otherwise pay the Cleaner."""
        state = self.state
        buffered = state.buffer.pop(feature, error)
        if buffered is not None:
            state.cleaner.apply(state.dataset, buffered)
            state.last_action = buffered
            return 0.0
        cost = state.cost_model.record_step(feature, error)
        state.budget.charge(cost)
        priority = prediction.polluted_rows if prediction is not None else None
        state.last_action = state.cleaner.clean_step(
            state.dataset, feature, error, priority_train_rows=priority
        )
        return cost

    def _revert_last(self, pair: tuple[str, str]) -> None:
        state = self.state
        state.cleaner.revert(state.dataset, state.last_action)
        state.buffer.put(state.last_action)
        # The revert restores exactly the data state `current_f1` was
        # measured on (rejected trials never overwrite the memo — only
        # `_accept` does), so the cached baseline stays valid.
        self._notify("on_revert", pair[0], pair[1])

    def _accept(self, pair: tuple[str, str], f1_after: float) -> None:
        state = self.state
        state.current_f1 = f1_after
        feature, error = pair
        train_clean = state.dataset.dirty_train.dirty_count(feature, error) == 0
        test_clean = state.dataset.dirty_test.dirty_count(feature, error) == 0
        if train_clean and test_clean and pair in state.active:
            # The Cleaner observed no (remaining) dirt — marks the pair clean.
            state.active.remove(pair)
