"""The serializable core of a cleaning session.

:class:`SessionState` is a plain dataclass holding *everything* a COMET
run needs to continue — the (mutated) dataset, budget and cost ledgers,
the cleaning buffer, the open candidates, the Recommender's and
Estimator's outcome history, the trace so far, and the RNG generators
whose bit-generator state drives every remaining random draw. It contains
no engine objects (no backend, no worker pools, no observers), which is
what makes it checkpointable: pickling the state and loading it later
resumes the run *bit-identically* — numpy ``Generator`` pickles preserve
both the stream position and the ``spawn`` counter, so a resumed session
consumes exactly the random numbers an uninterrupted one would.

The dataset's frames are copy-on-write (:mod:`repro.frame`): the dirty
working frames share untouched column storage with the clean ground
truth. Pickle's memo follows object identity, so a checkpoint serializes
each shared array once and the loaded state *rebuilds the same sharing*
— resuming neither duplicates memory nor couples frames that were
independent. Column identity tokens ride along (they are process-unique
by construction, so collisions cannot occur after load) and mutations on
either side of the share still copy-on-write, which keeps resumed traces
bit-identical.

Checkpoints are a versioned envelope around the pickled state, so future
format changes can be detected (and migrated) instead of failing
obscurely.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.cleaning import Budget, CleaningBuffer, CostModel
from repro.cleaning.cleaner import CleaningAction
from repro.core.config import CometConfig
from repro.core.trace import CleaningTrace
from repro.errors.base import ErrorType
from repro.errors.prepollution import PollutedDataset
from repro.ml.base import BaseEstimator

__all__ = [
    "SessionState",
    "CheckpointVersionError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
]

#: Identifies a file as a repro session checkpoint.
CHECKPOINT_FORMAT = "repro.session.checkpoint"
#: Bump when the state layout changes incompatibly.
CHECKPOINT_VERSION = 1


class CheckpointVersionError(ValueError):
    """A checkpoint's format version does not match this build's.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working, but exposes both versions as attributes so tooling
    (and future migration code) can branch on them instead of parsing
    the message.
    """

    def __init__(self, path, found, supported: int = CHECKPOINT_VERSION) -> None:
        self.path = str(path)
        self.found = found
        self.supported = supported
        super().__init__(
            f"{path}: checkpoint version {found!r} is not supported "
            f"(this build reads version {supported})"
        )


@dataclass
class SessionState:
    """Complete, serializable state of one cleaning session.

    The engine (:class:`~repro.session.CleaningSession`) reads and writes
    these fields in place; stateful members (dataset, budget, buffer,
    cleaner, RNGs, history dicts) are shared by reference with the engine
    components, so the state is always current and :meth:`save` can be
    called at any iteration boundary.
    """

    #: Loop hyperparameters (immutable over the session).
    config: CometConfig
    #: ``"classification"`` or ``"regression"``.
    task: str
    #: Registry name (or class name) of the ML algorithm.
    algorithm_name: str
    #: The (hyperparameter-tuned) model instance the session trains.
    model: BaseEstimator
    #: Error types under consideration.
    errors: list[ErrorType]
    #: The working dataset: current dirty state, ground truth, dirt ledger.
    dataset: PollutedDataset
    #: Cleaning budget ledger.
    budget: Budget
    #: Per-(feature, error) cost functions with step history.
    cost_model: CostModel
    #: The Cleaner, including its RNG (stateful for the simulated cleaner).
    cleaner: Any
    #: Reverted cleaning steps kept for free replay (§3.3 step D).
    buffer: CleaningBuffer
    #: Session-level generator (seeds components at creation time).
    rng: np.random.Generator
    #: The Estimator's generator — the E1 sweep's only randomness source.
    estimator_rng: np.random.Generator
    #: (feature, error) pairs not yet marked clean.
    active: list[tuple[str, str]]
    #: Estimator history: (feature, error) → observed (actual − predicted).
    estimator_history: dict = field(default_factory=dict)
    #: Recommender history: (feature, error) → best realized post-clean F1.
    recommender_history: dict = field(default_factory=dict)
    #: Memoized F1 of the current data state (``None`` = not yet measured).
    current_f1: float | None = None
    #: Estimation sweeps performed so far.
    iteration: int = 0
    #: Records of the run so far (``None`` until the first sweep).
    trace: CleaningTrace | None = None
    #: The most recent cleaning action (revert target).
    last_action: CleaningAction | None = None

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def rng_state(self) -> dict:
        """The session RNG's bit-generator state (inspectable, plain dict)."""
        return self.rng.bit_generator.state

    @property
    def is_finished(self) -> bool:
        """True once the budget is spent or nothing is left to clean."""
        return not self.active or self.budget.exhausted()

    def open_candidates(self) -> list[tuple[str, str]]:
        """(feature, error) pairs the Cleaner has not yet marked clean."""
        return list(self.active)

    def status(self) -> dict:
        """JSON-friendly progress snapshot (the ``status`` service verb)."""
        return {
            "iteration": self.iteration,
            "budget_total": self.budget.total,
            "budget_spent": self.budget.spent,
            "budget_remaining": self.budget.remaining,
            "open_candidates": len(self.active),
            "buffered_actions": len(self.buffer),
            "current_f1": self.current_f1,
            "records": len(self.trace.records) if self.trace else 0,
            "finished": self.is_finished,
        }

    # ------------------------------------------------------------------ #
    # versioned checkpoints
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> None:
        """Write a versioned checkpoint; ``load`` resumes bit-identically.

        Checkpoints are pickles: like any pickle, they can execute code
        on load, so :meth:`load` must only be pointed at files from a
        trusted source (your own ``save`` output). The envelope check
        catches mistakes, not malice.
        """
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "state": self,
        }
        with open(path, "wb") as fh:
            pickle.dump(envelope, fh)

    @classmethod
    def load(cls, path: str | Path) -> "SessionState":
        """Read a checkpoint written by :meth:`save`.

        Raises ``ValueError`` for files that are not session checkpoints
        and :class:`CheckpointVersionError` (a ``ValueError`` subclass
        naming both versions) for checkpoints written by a different,
        unknown format version. **Trusted
        input only**: this unpickles the file, so the path must come from
        the operator, never from an untrusted request.
        """
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != CHECKPOINT_FORMAT
        ):
            raise ValueError(f"{path}: not a repro session checkpoint")
        version = envelope.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointVersionError(path, version)
        state = envelope["state"]
        if not isinstance(state, cls):
            raise ValueError(f"{path}: checkpoint does not contain a SessionState")
        return state
