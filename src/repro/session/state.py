"""The serializable core of a cleaning session.

:class:`SessionState` is a plain dataclass holding *everything* a COMET
run needs to continue — the (mutated) dataset, budget and cost ledgers,
the cleaning buffer, the open candidates, the Recommender's and
Estimator's outcome history, the trace so far, and the RNG generators
whose bit-generator state drives every remaining random draw. It contains
no engine objects (no backend, no worker pools, no observers), which is
what makes it checkpointable: pickling the state and loading it later
resumes the run *bit-identically* — numpy ``Generator`` pickles preserve
both the stream position and the ``spawn`` counter, so a resumed session
consumes exactly the random numbers an uninterrupted one would.

The dataset's frames are copy-on-write (:mod:`repro.frame`): the dirty
working frames share untouched column storage with the clean ground
truth. Pickle's memo follows object identity, so a checkpoint serializes
each shared array once and the loaded state *rebuilds the same sharing*
— resuming neither duplicates memory nor couples frames that were
independent. Column identity tokens ride along (they are process-unique
by construction, so collisions cannot occur after load) and mutations on
either side of the share still copy-on-write, which keeps resumed traces
bit-identical.

Checkpoints are a versioned envelope around the pickled state, so future
format changes can be detected (and migrated) instead of failing
obscurely. Version 2 (the current layout) writes two consecutive pickles
— a small JSON-friendly *header* (``{"format", "version", "meta"}``)
followed by the state — so tooling can read a checkpoint's metadata
without unpickling the (potentially large) state. Version 1 was a single
pickled dict with the state inline; the migration registry in
:mod:`repro.store.migrate` upgrades it on load. All checkpoint writes are
atomic: the bytes land in a temporary sibling file that is fsynced and
``os.replace``d over the target, so a crash mid-write can never leave a
truncated checkpoint behind.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.cleaning import Budget, CleaningBuffer, CostModel
from repro.cleaning.cleaner import CleaningAction
from repro.core.config import CometConfig
from repro.core.trace import CleaningTrace
from repro.errors.base import ErrorType
from repro.errors.prepollution import PollutedDataset
from repro.ml.base import BaseEstimator

__all__ = [
    "SessionState",
    "CheckpointVersionError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "checkpoint_meta",
    "encode_checkpoint",
    "decode_checkpoint",
    "write_checkpoint",
    "read_checkpoint",
    "read_checkpoint_meta",
    "atomic_write_bytes",
]

#: Identifies a file as a repro session checkpoint.
CHECKPOINT_FORMAT = "repro.session.checkpoint"
#: Bump when the state layout changes incompatibly.
CHECKPOINT_VERSION = 2

_TMP_COUNTER = itertools.count()


class CheckpointVersionError(ValueError):
    """A checkpoint's format version does not match this build's.

    Subclasses ``ValueError`` so existing ``except ValueError`` callers
    keep working, but exposes both versions as attributes so tooling can
    branch on them instead of parsing the message. ``migratable`` is
    True when the :mod:`repro.store.migrate` registry holds an upgrade
    chain from ``found`` to ``supported`` — load with ``migrate=True``
    (or run ``repro sessions migrate <path>``) instead of giving up.
    """

    def __init__(
        self,
        path,
        found,
        supported: int = CHECKPOINT_VERSION,
        migratable: bool = False,
    ) -> None:
        self.path = str(path)
        self.found = found
        self.supported = supported
        self.migratable = migratable
        message = (
            f"{path}: checkpoint version {found!r} is not supported "
            f"(this build reads version {supported})"
        )
        if migratable:
            message += (
                "; a migration path exists — run "
                f"'repro sessions migrate {path}' or load with migrate=True"
            )
        super().__init__(message)


@dataclass
class SessionState:
    """Complete, serializable state of one cleaning session.

    The engine (:class:`~repro.session.CleaningSession`) reads and writes
    these fields in place; stateful members (dataset, budget, buffer,
    cleaner, RNGs, history dicts) are shared by reference with the engine
    components, so the state is always current and :meth:`save` can be
    called at any iteration boundary.
    """

    #: Loop hyperparameters (immutable over the session).
    config: CometConfig
    #: ``"classification"`` or ``"regression"``.
    task: str
    #: Registry name (or class name) of the ML algorithm.
    algorithm_name: str
    #: The (hyperparameter-tuned) model instance the session trains.
    model: BaseEstimator
    #: Error types under consideration.
    errors: list[ErrorType]
    #: The working dataset: current dirty state, ground truth, dirt ledger.
    dataset: PollutedDataset
    #: Cleaning budget ledger.
    budget: Budget
    #: Per-(feature, error) cost functions with step history.
    cost_model: CostModel
    #: The Cleaner, including its RNG (stateful for the simulated cleaner).
    cleaner: Any
    #: Reverted cleaning steps kept for free replay (§3.3 step D).
    buffer: CleaningBuffer
    #: Session-level generator (seeds components at creation time).
    rng: np.random.Generator
    #: The Estimator's generator — the E1 sweep's only randomness source.
    estimator_rng: np.random.Generator
    #: (feature, error) pairs not yet marked clean.
    active: list[tuple[str, str]]
    #: Estimator history: (feature, error) → observed (actual − predicted).
    estimator_history: dict = field(default_factory=dict)
    #: Recommender history: (feature, error) → best realized post-clean F1.
    recommender_history: dict = field(default_factory=dict)
    #: Memoized F1 of the current data state (``None`` = not yet measured).
    current_f1: float | None = None
    #: Estimation sweeps performed so far.
    iteration: int = 0
    #: Records of the run so far (``None`` until the first sweep).
    trace: CleaningTrace | None = None
    #: The most recent cleaning action (revert target).
    last_action: CleaningAction | None = None

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    @property
    def rng_state(self) -> dict:
        """The session RNG's bit-generator state (inspectable, plain dict)."""
        return self.rng.bit_generator.state

    @property
    def is_finished(self) -> bool:
        """True once the budget is spent or nothing is left to clean."""
        return not self.active or self.budget.exhausted()

    def open_candidates(self) -> list[tuple[str, str]]:
        """(feature, error) pairs the Cleaner has not yet marked clean."""
        return list(self.active)

    def status(self) -> dict:
        """JSON-friendly progress snapshot (the ``status`` service verb)."""
        return {
            "iteration": self.iteration,
            "budget_total": self.budget.total,
            "budget_spent": self.budget.spent,
            "budget_remaining": self.budget.remaining,
            "open_candidates": len(self.active),
            "buffered_actions": len(self.buffer),
            "current_f1": self.current_f1,
            "records": len(self.trace.records) if self.trace else 0,
            "finished": self.is_finished,
        }

    # ------------------------------------------------------------------ #
    # versioned checkpoints
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path, *, meta: dict | None = None) -> None:
        """Write a versioned checkpoint; ``load`` resumes bit-identically.

        The write is atomic (temporary sibling file + fsync +
        ``os.replace``), so a crash mid-checkpoint leaves either the
        previous complete checkpoint or the new one — never a truncated
        pickle. ``meta`` extends the envelope header (the
        :class:`~repro.store.DirectorySessionStore` records quota usage
        and the backend fingerprint there).

        Checkpoints are pickles: like any pickle, they can execute code
        on load, so :meth:`load` must only be pointed at files from a
        trusted source (your own ``save`` output). The envelope check
        catches mistakes, not malice.
        """
        write_checkpoint(path, self, meta=meta)

    @classmethod
    def load(cls, path: str | Path, *, migrate: bool = False) -> "SessionState":
        """Read a checkpoint written by :meth:`save`.

        Raises ``ValueError`` for files that are not session checkpoints
        and :class:`CheckpointVersionError` (a ``ValueError`` subclass
        naming both versions plus ``migratable``) for checkpoints written
        by a different format version. With ``migrate=True``, checkpoints
        whose version has a registered upgrade chain
        (:mod:`repro.store.migrate`) are migrated in memory instead —
        e.g. version-1 checkpoints written by earlier builds. **Trusted
        input only**: this unpickles the file, so the path must come from
        the operator, never from an untrusted request.
        """
        envelope = read_checkpoint(path)
        version = envelope.get("version")
        if version != CHECKPOINT_VERSION:
            from repro.store.migrate import can_migrate, migrate_envelope

            if not (migrate and can_migrate(version)):
                raise CheckpointVersionError(
                    path, version, migratable=can_migrate(version)
                )
            envelope = migrate_envelope(envelope, path=path)
        state = envelope.get("state")
        if not isinstance(state, cls):
            raise ValueError(f"{path}: checkpoint does not contain a SessionState")
        return state


# ---------------------------------------------------------------------- #
# checkpoint envelope I/O (shared with repro.store)
# ---------------------------------------------------------------------- #
def checkpoint_meta(meta: dict | None = None) -> dict:
    """The envelope header metadata for a checkpoint written *now*.

    Stamps creation/update times and merges ``meta`` over the defaults;
    callers that rewrite an existing checkpoint pass the previous
    ``created`` through ``meta`` to preserve it.
    """
    now = time.time()
    merged = {"created": now, "updated": now}
    if meta:
        merged.update(meta)
        merged["updated"] = now
    return merged


def encode_checkpoint(state: SessionState, meta: dict | None = None) -> bytes:
    """Serialize a checkpoint to bytes (header pickle + state pickle).

    The returned bytes are exactly a checkpoint file's content, which is
    what lets the session store snapshot a live state synchronously (on
    the iteration boundary, under the session lock) and defer only the
    file I/O to its write-behind thread.
    """
    header = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "meta": checkpoint_meta(meta),
    }
    return pickle.dumps(header) + pickle.dumps(state)


def decode_checkpoint(data: bytes, source: str = "<bytes>") -> dict:
    """Decode checkpoint bytes into a normalized envelope dict.

    Returns ``{"format", "version", "meta", "state"}`` regardless of the
    on-disk layout version (v1 stored everything in one pickled dict;
    v2+ stores a header pickle followed by the state pickle). Unpickles
    the data — trusted input only.
    """
    buffer = io.BytesIO(data)
    first = pickle.load(buffer)
    if not isinstance(first, dict) or first.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{source}: not a repro session checkpoint")
    if "state" in first:  # version-1 layout: one pickle, state inline
        return {
            "format": CHECKPOINT_FORMAT,
            "version": first.get("version"),
            "meta": dict(first.get("meta") or {}),
            "state": first["state"],
        }
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": first.get("version"),
        "meta": dict(first.get("meta") or {}),
        "state": None,
    }
    try:
        envelope["state"] = pickle.load(buffer)
    except EOFError:
        raise ValueError(f"{source}: checkpoint is truncated (no state pickle)")
    return envelope


def read_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint file into a normalized envelope dict."""
    with open(path, "rb") as fh:
        data = fh.read()
    return decode_checkpoint(data, source=str(path))


def read_checkpoint_meta(path: str | Path) -> dict:
    """Read only a checkpoint's header (no state unpickle for v2+ files).

    Returns ``{"format", "version", "meta"}``. Version-1 files have no
    separate header, so reading their metadata still unpickles the whole
    envelope.
    """
    with open(path, "rb") as fh:
        first = pickle.load(fh)
    if not isinstance(first, dict) or first.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path}: not a repro session checkpoint")
    return {
        "format": CHECKPOINT_FORMAT,
        "version": first.get("version"),
        "meta": dict(first.get("meta") or {}),
    }


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (tmp sibling + ``os.replace``).

    With ``fsync`` (the default) the bytes are forced to disk before the
    rename, and the directory entry is fsynced after it where the
    platform allows — the durability discipline of the session store's
    index. A crash at any point leaves either the old complete file or
    the new one.
    """
    path = Path(path)
    tmp = path.with_name(
        f"{path.name}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}"
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        try:  # directory fsync is POSIX-only best effort
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)


def write_checkpoint(
    path: str | Path, state: SessionState, meta: dict | None = None
) -> int:
    """Atomically write a version-:data:`CHECKPOINT_VERSION` checkpoint.

    Returns the byte size of the written envelope.
    """
    data = encode_checkpoint(state, meta)
    atomic_write_bytes(path, data)
    return len(data)
