"""Durable session store: checkpoint persistence behind the service.

Three pieces:

- :class:`SessionStore` — the pluggable persistence interface the
  service talks to (snapshot on iteration boundaries, lazy rehydration,
  eviction on close);
- :class:`DirectorySessionStore` — the filesystem implementation:
  write-behind versioned checkpoint envelopes with atomic tmp+rename
  writes and a crash-safe JSON index (``serve --state-dir`` builds one);
- :mod:`repro.store.migrate` — the versioned envelope-migration
  registry, so a ``CHECKPOINT_VERSION`` bump upgrades old checkpoints
  instead of stranding them.

The determinism contract survives the store: a session rehydrated after
a hard kill replays to a trace bit-identical to one that never
restarted.
"""

from repro.store.base import SessionStore
from repro.store.directory import DirectorySessionStore
from repro.store.migrate import (
    can_migrate,
    migrate_checkpoint,
    migrate_envelope,
    migration_chain,
    register_migration,
    registered_migrations,
)

__all__ = [
    "SessionStore",
    "DirectorySessionStore",
    "register_migration",
    "registered_migrations",
    "migration_chain",
    "can_migrate",
    "migrate_envelope",
    "migrate_checkpoint",
]
