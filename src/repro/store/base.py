"""The pluggable session-store interface.

A :class:`SessionStore` is the durability layer under
:class:`~repro.service.CometService`: the service snapshots each session
into the store on clean iteration boundaries (write-behind — the
snapshot is taken synchronously under the session lock, the I/O happens
off the verb path), rehydrates cold sessions lazily on the first verb
that touches them, and evicts sessions when they are closed. Any
implementation that honors this contract can back the service;
:class:`~repro.store.DirectorySessionStore` is the filesystem one.

The determinism contract extends through the store: ``put`` must
preserve the state byte-for-byte (it snapshots the same pickled envelope
a checkpoint file carries), so a session rehydrated after a crash
replays exactly the trace an uninterrupted run would have produced.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.session.state import SessionState

__all__ = ["SessionStore"]


class SessionStore(ABC):
    """Persist named session states across service restarts.

    Implementations must be thread-safe: the service calls ``put`` from
    scheduler workers (under per-session locks), ``load``/``delete``
    from transport threads, and ``stats`` from any of them.
    """

    @abstractmethod
    def put(self, name: str, state: SessionState, meta: dict | None = None) -> None:
        """Persist a snapshot of ``state`` under ``name``.

        Must capture the snapshot *before returning* (the caller holds
        the session lock only for the duration of the call); the actual
        I/O may be deferred. ``meta`` is envelope metadata — quota
        usage, client identity, backend fingerprint.
        """

    @abstractmethod
    def load(self, name: str) -> SessionState:
        """Rehydrate the newest persisted snapshot of ``name``.

        Raises ``KeyError`` for unknown names. Implementations must
        return the latest ``put`` snapshot even if its I/O is still
        pending (flush first or serve from the pending buffer).
        """

    @abstractmethod
    def meta(self, name: str) -> dict:
        """The metadata recorded with ``name``'s newest snapshot."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Evict ``name`` (no-op if absent) — the ``close`` verb's hook."""

    @abstractmethod
    def names(self) -> list[str]:
        """Sorted names of every persisted session."""

    @abstractmethod
    def flush(self) -> None:
        """Block until every pending write has reached durable storage."""

    @abstractmethod
    def stats(self) -> dict:
        """JSON-friendly store counters for the ``status`` verb."""

    @abstractmethod
    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __contains__(self, name: str) -> bool:
        return name in self.names()

    def __enter__(self) -> "SessionStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
