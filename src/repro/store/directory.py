"""Filesystem session store: write-behind checkpoints + crash-safe index.

Layout of a state directory::

    <root>/
        index.json             # crash-safe JSON index of every session
        sessions/<name>-<h>.ckpt   # one versioned checkpoint envelope each

Durability discipline: every file lands via atomic tmp+``os.replace``
writes with fsync (:func:`repro.session.state.atomic_write_bytes`), and
the index is rewritten *after* the checkpoint it references — so at any
crash point the directory holds only complete checkpoint envelopes, and
the index is either current or conservatively stale (a newer checkpoint
than it records, never a dangling reference to a half-written one). A
missing or unreadable index is rebuilt by scanning ``sessions/``.

Write-behind: ``put`` snapshots the state *synchronously* (pickling
under the caller's session lock — the part that must see a consistent
iteration boundary) and hands the bytes to a single writer thread that
performs the file and index I/O. Snapshots for the same session coalesce:
if iteration N+1 is snapshotted before iteration N reached disk, N is
dropped (counted in ``stats()["coalesced_writes"]``) — the store always
converges on the newest boundary. ``flush()`` blocks until the queue is
empty; ``abort()`` drops it, simulating a crash for tests.

Checkpoints of any migratable envelope version rehydrate: ``load`` runs
old envelopes through :mod:`repro.store.migrate`, so a directory written
by a version-1 build keeps working after an upgrade.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.session.state import (
    CHECKPOINT_VERSION,
    SessionState,
    atomic_write_bytes,
    checkpoint_meta,
    decode_checkpoint,
    encode_checkpoint,
    read_checkpoint_meta,
)
from repro.store.base import SessionStore
from repro.store.migrate import migrate_envelope

__all__ = ["DirectorySessionStore"]

#: Identifies a file as a repro session-store index.
INDEX_FORMAT = "repro.store.index"
INDEX_VERSION = 1


@dataclass
class _Pending:
    """One not-yet-written snapshot (the write-behind queue entry)."""

    data: bytes
    meta: dict
    enqueued: float


class DirectorySessionStore(SessionStore):
    """Persist sessions as checkpoint files under one state directory.

    Parameters
    ----------
    root:
        The state directory (created if missing, including parents).
    write_behind:
        With the default ``True``, ``put`` returns after snapshotting
        and a writer thread performs the I/O; ``False`` writes inline
        (simpler latency profile for benchmark baselines and tests).
    fsync:
        Whether checkpoint and index writes fsync before renaming.
        Disable only where durability does not matter (benchmarks on
        tmpfs); the crash-safety story assumes it is on.
    """

    def __init__(
        self, root, *, write_behind: bool = True, fsync: bool = True
    ) -> None:
        self.root = Path(root)
        self.sessions_dir = self.root / "sessions"
        self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._write_behind = write_behind
        self._cv = threading.Condition()
        self._pending: dict[str, _Pending] = {}
        self._writing: str | None = None
        self._stopping = False
        self._aborted = False
        self._counters = {
            "writes": 0,
            "bytes_written": 0,
            "coalesced_writes": 0,
            "rehydrations": 0,
            "migrations": 0,
            "write_errors": 0,
        }
        self._last_error: str | None = None
        self._last_write_s = 0.0
        self._index: dict[str, dict] = self._load_index()
        self._writer: threading.Thread | None = None
        if write_behind:
            self._writer = threading.Thread(
                target=self._writer_loop,
                name=f"repro-store-writer:{self.root.name}",
                daemon=True,
            )
            self._writer.start()

    # ------------------------------------------------------------------ #
    # SessionStore contract
    # ------------------------------------------------------------------ #
    def put(self, name: str, state: SessionState, meta: dict | None = None) -> None:
        """Snapshot ``state`` now; write it behind (or inline).

        The pickle happens in the caller's thread — that is the
        consistency point, so callers invoke ``put`` on clean iteration
        boundaries while holding the session's lock.
        """
        meta = dict(meta or {})
        meta["name"] = name
        with self._cv:
            self._require_open()
            existing = self._index.get(name) or {}
            pending = self._pending.get(name)
            previous = pending.meta if pending is not None else existing
            if "created" in previous:
                meta.setdefault("created", previous["created"])
        # Stamp timestamps here so the index records exactly what the
        # envelope header carries (encode_checkpoint preserves them).
        meta = checkpoint_meta(meta)
        data = encode_checkpoint(state, meta)
        if not self._write_behind:
            self._write(name, _Pending(data, meta, time.monotonic()))
            return
        with self._cv:
            self._require_open()
            if name in self._pending:
                self._counters["coalesced_writes"] += 1
            self._pending[name] = _Pending(data, meta, time.monotonic())
            self._cv.notify_all()

    def load(self, name: str) -> SessionState:
        """Rehydrate the newest snapshot (pending bytes beat the disk)."""
        with self._cv:
            pending = self._pending.get(name)
            if pending is not None:
                data = pending.data
                source = f"<pending:{name}>"
            else:
                entry = self._index.get(name)
                if entry is None:
                    raise KeyError(f"no persisted session named {name!r}")
                path = self.sessions_dir / entry["file"]
                data = None
                source = str(path)
        if data is None:
            with open(path, "rb") as fh:
                data = fh.read()
        envelope = decode_checkpoint(data, source=source)
        if envelope.get("version") != CHECKPOINT_VERSION:
            envelope = migrate_envelope(envelope, path=source)
            with self._cv:
                self._counters["migrations"] += 1
        state = envelope.get("state")
        if not isinstance(state, SessionState):
            raise ValueError(f"{source}: checkpoint does not contain a SessionState")
        with self._cv:
            self._counters["rehydrations"] += 1
        return state

    def meta(self, name: str) -> dict:
        """Newest metadata for ``name`` (pending snapshot or index)."""
        with self._cv:
            pending = self._pending.get(name)
            if pending is not None:
                return dict(pending.meta)
            entry = self._index.get(name)
            if entry is None:
                raise KeyError(f"no persisted session named {name!r}")
            return {k: v for k, v in entry.items() if k != "file"}

    def delete(self, name: str) -> None:
        """Evict ``name``: drop pending writes, the file, the index entry."""
        with self._cv:
            self._pending.pop(name, None)
            while self._writing == name:
                self._cv.wait()
            entry = self._index.pop(name, None)
            if entry is not None:
                path = self.sessions_dir / entry["file"]
                self._write_index_locked()
        if entry is not None:
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def names(self) -> list[str]:
        with self._cv:
            return sorted(set(self._index) | set(self._pending))

    def __contains__(self, name: str) -> bool:
        with self._cv:
            return name in self._index or name in self._pending

    def flush(self) -> None:
        """Block until the write-behind queue has fully drained."""
        with self._cv:
            while (self._pending or self._writing is not None) and not self._aborted:
                if self._writer is not None and not self._writer.is_alive():
                    break
                self._cv.wait(timeout=0.05)

    def stats(self) -> dict:
        """Store counters for the service-level ``status`` verb."""
        with self._cv:
            lag = 0.0
            if self._pending:
                now = time.monotonic()
                lag = max(now - p.enqueued for p in self._pending.values())
            return {
                "root": str(self.root),
                "persisted_sessions": len(self._index),
                "bytes": sum(e.get("bytes", 0) for e in self._index.values()),
                "pending_writes": len(self._pending),
                "write_behind_lag_s": round(lag, 6),
                "last_write_s": round(self._last_write_s, 6),
                "last_error": self._last_error,
                **self._counters,
            }

    def close(self) -> None:
        """Flush pending writes, stop the writer thread (idempotent)."""
        with self._cv:
            if self._stopping:
                return
            self._stopping = True
            self._cv.notify_all()
        if self._writer is not None:
            self._writer.join()
            self._writer = None

    def abort(self) -> None:
        """Simulate a crash: drop pending writes, stop without flushing.

        What a SIGKILL would do to the write-behind queue — tests use it
        to exercise the "resume from the last *persisted* boundary"
        contract without spawning processes. The store is unusable
        afterwards.
        """
        with self._cv:
            self._aborted = True
            self._stopping = True
            self._pending.clear()
            self._cv.notify_all()
        if self._writer is not None:
            self._writer.join()
            self._writer = None

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def compact(self, drop_finished: bool = False) -> dict:
        """Reconcile the directory: adopt strays, drop garbage, slim down.

        - deletes leftover ``*.tmp-*`` files from interrupted writes;
        - drops index entries whose checkpoint file vanished;
        - adopts checkpoint files the index does not know (e.g. copied
          in by an operator) under the name recorded in their envelope;
        - with ``drop_finished``, evicts sessions whose last snapshot
          reported ``finished`` (their trace is complete — keep a copy
          elsewhere if you need the history).

        Returns a summary of what changed.
        """
        self.flush()
        summary = {
            "tmp_removed": 0,
            "entries_dropped": 0,
            "adopted": 0,
            "finished_dropped": 0,
        }
        for directory in (self.root, self.sessions_dir):
            for stray in directory.iterdir():
                if stray.is_file() and ".tmp-" in stray.name:
                    stray.unlink(missing_ok=True)
                    summary["tmp_removed"] += 1
        with self._cv:
            known_files = {e["file"] for e in self._index.values()}
            for name in list(self._index):
                if not (self.sessions_dir / self._index[name]["file"]).exists():
                    del self._index[name]
                    summary["entries_dropped"] += 1
            for path in sorted(self.sessions_dir.glob("*.ckpt")):
                if path.name in known_files:
                    continue
                entry = self._entry_from_file(path)
                if entry is not None:
                    name = entry.pop("name_key")
                    self._index.setdefault(name, entry)
                    summary["adopted"] += 1
            self._write_index_locked()
        if drop_finished:
            for name in self.names():
                try:
                    finished = self.meta(name).get("finished")
                except KeyError:
                    continue
                if finished:
                    self.delete(name)
                    summary["finished_dropped"] += 1
        return summary

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _require_open(self) -> None:
        if self._stopping:
            raise RuntimeError(f"session store at {self.root} is closed")

    def _filename(self, name: str) -> str:
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", name)[:40] or "session"
        digest = hashlib.sha1(name.encode()).hexdigest()[:8]
        return f"{slug}-{digest}.ckpt"

    def _writer_loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._stopping:
                    self._cv.wait()
                if self._aborted or (self._stopping and not self._pending):
                    return
                name = next(iter(self._pending))
                item = self._pending.pop(name)
                self._writing = name
            try:
                self._write(name, item)
            finally:
                with self._cv:
                    self._writing = None
                    self._cv.notify_all()

    def _write(self, name: str, item: _Pending) -> None:
        """One checkpoint write + index update (writer thread, or inline)."""
        started = time.monotonic()
        filename = self._filename(name)
        try:
            atomic_write_bytes(
                self.sessions_dir / filename, item.data, fsync=self._fsync
            )
        except OSError as exc:
            with self._cv:
                self._counters["write_errors"] += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
            return
        entry = {
            "file": filename,
            "bytes": len(item.data),
            "checkpoint_version": CHECKPOINT_VERSION,
            **_json_safe(item.meta),
        }
        with self._cv:
            self._index[name] = entry
            self._counters["writes"] += 1
            self._counters["bytes_written"] += len(item.data)
            self._last_write_s = time.monotonic() - started
            self._write_index_locked()

    def _write_index_locked(self) -> None:
        """Rewrite ``index.json`` (callers hold the lock)."""
        document = {
            "format": INDEX_FORMAT,
            "version": INDEX_VERSION,
            "sessions": self._index,
        }
        data = json.dumps(document, indent=2, sort_keys=True).encode()
        try:
            atomic_write_bytes(self.root / "index.json", data, fsync=self._fsync)
        except OSError as exc:
            self._counters["write_errors"] += 1
            self._last_error = f"{type(exc).__name__}: {exc}"

    def _load_index(self) -> dict[str, dict]:
        """Read ``index.json``; rebuild from a directory scan if unusable.

        The rebuild path is the crash-recovery story for a lost index: a
        checkpoint file's envelope header records its session name, so
        the directory alone is enough to reconstruct the listing.
        """
        path = self.root / "index.json"
        try:
            document = json.loads(path.read_text())
            if (
                isinstance(document, dict)
                and document.get("format") == INDEX_FORMAT
                and isinstance(document.get("sessions"), dict)
            ):
                return dict(document["sessions"])
        except FileNotFoundError:
            if not any(self.sessions_dir.glob("*.ckpt")):
                return {}
        except (json.JSONDecodeError, OSError):
            pass
        index: dict[str, dict] = {}
        for ckpt in sorted(self.sessions_dir.glob("*.ckpt")):
            entry = self._entry_from_file(ckpt)
            if entry is not None:
                index[entry.pop("name_key")] = entry
        self._index = index
        with self._cv:
            self._write_index_locked()
        return index

    def _entry_from_file(self, path: Path) -> dict | None:
        """An index entry rebuilt from one checkpoint file (None if bad)."""
        try:
            header = read_checkpoint_meta(path)
        except Exception:  # noqa: BLE001 — a foreign file is not an entry
            return None
        meta = header.get("meta") or {}
        return {
            "name_key": meta.get("name") or path.stem,
            "file": path.name,
            "bytes": path.stat().st_size,
            "checkpoint_version": header.get("version"),
            **_json_safe(meta),
        }


def _json_safe(meta: dict) -> dict:
    """Drop metadata values json cannot carry (the index is JSON)."""
    safe = {}
    for key, value in meta.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, dict):
            safe[key] = _json_safe(value)
    return safe
