"""Versioned checkpoint migrations: load old envelopes instead of failing.

A ``CHECKPOINT_VERSION`` bump used to strand every existing checkpoint —
:class:`~repro.session.CheckpointVersionError` told you *what* was wrong
with no way forward. This module is the way forward: a registry of
single-step upgrade functions (``from_version → to_version``) that are
chained until an old envelope reaches the current version. Loading with
``SessionState.load(path, migrate=True)`` (what the session store does
for every rehydration) applies the chain in memory; ``repro sessions
migrate <path>`` rewrites the file in the current format.

Each migration receives and returns a *normalized envelope dict*
(``{"format", "version", "meta", "state"}`` — see
:func:`repro.session.state.decode_checkpoint`) and must advance
``version``. The v1→v2 step below is the template: v1 envelopes were a
single pickle with no metadata, so it synthesizes the v2 header
(timestamps, empty quota usage, a ``migrated_from`` marker) around the
untouched state — the resumed trace is bit-identical because the state
bytes never change, only the envelope around them.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from repro.session.state import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointVersionError,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "register_migration",
    "registered_migrations",
    "can_migrate",
    "migration_chain",
    "migrate_envelope",
    "migrate_checkpoint",
]

#: from_version → (to_version, upgrade function).
_MIGRATIONS: dict[int, tuple[int, Callable[[dict], dict]]] = {}


def register_migration(from_version: int, to_version: int):
    """Register an envelope upgrade step (decorator).

    ``to_version`` must be greater than ``from_version`` (chains only
    move forward); registering a second migration for the same
    ``from_version`` is an error — there is one canonical upgrade path.
    """
    if to_version <= from_version:
        raise ValueError(
            f"migration must move forward, got {from_version} -> {to_version}"
        )

    def decorator(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        if from_version in _MIGRATIONS:
            raise ValueError(
                f"a migration from version {from_version} is already registered"
            )
        _MIGRATIONS[from_version] = (to_version, fn)
        return fn

    return decorator


def registered_migrations() -> dict[int, int]:
    """``from_version → to_version`` for every registered step."""
    return {src: dst for src, (dst, _) in _MIGRATIONS.items()}


def migration_chain(
    found, target: int = CHECKPOINT_VERSION
) -> list[tuple[int, int]] | None:
    """The (from, to) steps upgrading ``found`` to ``target``, or ``None``.

    ``None`` means no registered chain reaches ``target`` — the caller
    should raise :class:`CheckpointVersionError` with
    ``migratable=False``.
    """
    if found == target:
        return []
    chain: list[tuple[int, int]] = []
    version = found
    while version != target:
        step = _MIGRATIONS.get(version)
        if step is None:
            return None
        chain.append((version, step[0]))
        version = step[0]
    return chain


def can_migrate(found, target: int = CHECKPOINT_VERSION) -> bool:
    """Whether a registered chain upgrades ``found`` to ``target``."""
    return migration_chain(found, target) is not None


def migrate_envelope(
    envelope: dict, path=None, target: int = CHECKPOINT_VERSION
) -> dict:
    """Upgrade a normalized envelope dict to ``target`` in memory.

    Raises :class:`CheckpointVersionError` (``migratable=False``) when no
    chain exists, and ``RuntimeError`` if a registered step fails to
    advance the version it promised (a buggy migration must not loop).
    """
    version = envelope.get("version")
    chain = migration_chain(version, target)
    if chain is None:
        raise CheckpointVersionError(
            path or "<envelope>", version, target, migratable=False
        )
    for from_version, to_version in chain:
        _, fn = _MIGRATIONS[from_version]
        envelope = fn(dict(envelope))
        if envelope.get("version") != to_version:
            raise RuntimeError(
                f"migration {from_version}->{to_version} left the envelope "
                f"at version {envelope.get('version')!r}"
            )
    return envelope


def migrate_checkpoint(path, out=None, target: int = CHECKPOINT_VERSION) -> dict:
    """Rewrite an on-disk checkpoint at the current envelope version.

    Reads ``path`` (any migratable version), applies the upgrade chain,
    and atomically writes the result to ``out`` (default: in place).
    Already-current checkpoints are left untouched. Returns a summary
    ``{"path", "out", "from_version", "to_version", "migrated"}``.
    Unpickles the file — trusted input only.
    """
    path = Path(path)
    envelope = read_checkpoint(path)
    found = envelope.get("version")
    out = Path(out) if out is not None else path
    if found == target and out == path:
        return {
            "path": str(path),
            "out": str(out),
            "from_version": found,
            "to_version": found,
            "migrated": False,
        }
    envelope = migrate_envelope(envelope, path=path, target=target)
    write_checkpoint(out, envelope["state"], meta=envelope.get("meta"))
    return {
        "path": str(path),
        "out": str(out),
        "from_version": found,
        "to_version": target,
        "migrated": True,
    }


# ---------------------------------------------------------------------- #
# registered migrations
# ---------------------------------------------------------------------- #
@register_migration(1, 2)
def _v1_to_v2(envelope: dict) -> dict:
    """v1 → v2: wrap the bare state in the metadata-carrying v2 header.

    v1 envelopes recorded nothing but the state, so the synthesized
    metadata is honest about that: timestamps are stamped at migration
    time, quota usage starts empty, and ``migrated_from`` marks the
    provenance. The state itself is untouched — a session resumed from
    the migrated envelope replays bit-identically.
    """
    now = time.time()
    meta = dict(envelope.get("meta") or {})
    meta.setdefault("created", now)
    meta["updated"] = now
    meta["migrated_from"] = 1
    return {
        "format": CHECKPOINT_FORMAT,
        "version": 2,
        "meta": meta,
        "state": envelope["state"],
    }
