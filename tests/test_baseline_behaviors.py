"""Behavioral corner tests for the baselines: CL's buffer/fallback, FIR
with multiple error types, RandomSearch deduplication."""

import numpy as np
import pytest

from repro import load_dataset, pollute
from repro.baselines import CometLight, FeatureImportanceCleaner
from repro.core import CometConfig
from repro.ml import RandomSearch, make_classifier


@pytest.fixture(scope="module")
def polluted():
    dataset = load_dataset("cmc", n_rows=200, rng=0)
    return pollute(dataset, error_types=["missing", "categorical"], rng=4)


class TestCometLightCorners:
    def test_multi_error_candidates(self, polluted):
        strategy = CometLight(
            polluted,
            algorithm="lor",
            error_types=["missing", "categorical"],
            budget=4.0,
            step=0.03,
            rng=0,
            config=CometConfig(step=0.03),
        )
        errors = {e for __, e in strategy.open_candidates()}
        assert errors == {"missing", "categorical"}
        trace = strategy.run()
        assert trace.total_spent <= 4.0 + 1e-9

    def test_ranking_covers_all_candidates(self, polluted):
        strategy = CometLight(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=2.0,
            step=0.03,
            rng=0,
            config=CometConfig(step=0.03),
        )
        strategy.step()
        assert set(strategy._ranking) == set(
            strategy.open_candidates()
        ) | {p for p in strategy._ranking}

    def test_budget_exhaustion_stops(self, polluted):
        strategy = CometLight(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=1.0,
            step=0.03,
            rng=0,
            config=CometConfig(step=0.03),
        )
        strategy.run()
        assert strategy.step() is None


class TestFirMultiError:
    def test_feature_grouping_spans_error_types(self, polluted):
        strategy = FeatureImportanceCleaner(
            polluted,
            algorithm="lor",
            error_types=["missing", "categorical"],
            budget=8.0,
            step=0.03,
            rng=0,
        )
        trace = strategy.run()
        assert trace.records
        # FIR must finish one feature (all its error types) before the next.
        current = trace.records[0].feature
        seen = {current}
        for record in trace.records[1:]:
            if record.feature != current:
                assert record.feature not in seen, "FIR bounced back to an old feature"
                current = record.feature
                seen.add(current)


class TestRandomSearchDedup:
    def test_duplicate_candidates_skipped(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 2))
        y = (X[:, 0] > 0).astype(int)
        calls = []

        class CountingKnn(type(make_classifier("knn"))):
            def fit(self, X, y):
                calls.append(self.n_neighbors)
                return super().fit(X, y)

        search = RandomSearch(
            CountingKnn(n_neighbors=5),
            {"n_neighbors": [3]},  # only one possible candidate
            n_iter=10,
            rng=0,
        )
        search.fit(X, y)
        # 1 candidate fit + 1 final refit on all data.
        assert len(calls) == 2
