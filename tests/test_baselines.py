"""Tests for the evaluation baselines: RR, FIR, CL, AC, Oracle."""

import numpy as np
import pytest

from repro import load_dataset, pollute
from repro.baselines import (
    ActiveClean,
    CometLight,
    FeatureImportanceCleaner,
    OracleCleaner,
    RandomCleaner,
)
from repro.core import CometConfig


@pytest.fixture(scope="module")
def polluted():
    dataset = load_dataset("cmc", n_rows=220, rng=0)
    return pollute(dataset, error_types=["missing"], rng=1)


def _make(cls, polluted, budget=6.0, **kwargs):
    return cls(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=budget,
        step=0.02,
        rng=0,
        **kwargs,
    )


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "cls", [RandomCleaner, FeatureImportanceCleaner, OracleCleaner, ActiveClean]
    )
    def test_run_respects_budget(self, cls, polluted):
        trace = _make(cls, polluted).run()
        assert trace.total_spent <= 6.0 + 1e-9
        assert trace.records

    @pytest.mark.parametrize(
        "cls", [RandomCleaner, FeatureImportanceCleaner, OracleCleaner, ActiveClean]
    )
    def test_input_not_mutated(self, cls, polluted):
        before = polluted.train.copy()
        _make(cls, polluted).run()
        assert polluted.train == before

    @pytest.mark.parametrize("cls", [RandomCleaner, FeatureImportanceCleaner])
    def test_cleaning_reduces_dirt(self, cls, polluted):
        strategy = _make(cls, polluted, budget=10.0)
        before = strategy.dataset.dirty_train.total()
        strategy.run()
        assert strategy.dataset.dirty_train.total() < before


class TestRandomCleaner:
    def test_different_seeds_different_orders(self, polluted):
        a = RandomCleaner(polluted, algorithm="lor", error_types=["missing"],
                          budget=6.0, step=0.02, rng=1).run()
        b = RandomCleaner(polluted, algorithm="lor", error_types=["missing"],
                          budget=6.0, step=0.02, rng=2).run()
        assert [r.feature for r in a.records] != [r.feature for r in b.records]

    def test_only_open_candidates_selected(self, polluted):
        strategy = _make(RandomCleaner, polluted, budget=10.0)
        trace = strategy.run()
        valid = {f for f in strategy.dataset.feature_names}
        assert all(r.feature in valid for r in trace.records)


class TestFeatureImportance:
    def test_ranking_static_until_feature_clean(self, polluted):
        strategy = _make(FeatureImportanceCleaner, polluted, budget=8.0)
        trace = strategy.run()
        # FIR sticks with one feature until it is fully clean: the sequence
        # of features must be "grouped" (no A B A patterns) unless a feature
        # finished.
        seen = []
        for record in trace.records:
            if record.feature in seen and seen[-1] != record.feature:
                pytest.fail(f"FIR revisited {record.feature}: {[r.feature for r in trace.records]}")
            if record.feature not in seen:
                seen.append(record.feature)


class TestCometLight:
    def test_runs_and_respects_budget(self, polluted):
        trace = _make(CometLight, polluted, config=CometConfig(step=0.02)).run()
        assert trace.total_spent <= 6.0 + 1e-9
        assert trace.records

    def test_estimation_happens_once(self, polluted):
        strategy = _make(CometLight, polluted, budget=4.0, config=CometConfig(step=0.02))
        strategy.run()
        ranking_after_run = strategy._ranking
        assert ranking_after_run is not None  # computed once, retained


class TestOracle:
    def test_first_step_is_locally_optimal(self, polluted):
        """The Oracle's first accepted step must realize the best gain/cost
        among all candidates (by construction)."""
        strategy = _make(OracleCleaner, polluted, budget=1.0)
        record = strategy.step()
        assert record is not None

    def test_oracle_beats_random_on_average(self):
        dataset = load_dataset("eeg", n_rows=200, rng=0)
        gains_oracle, gains_random = [], []
        for seed in range(2):
            p = pollute(dataset, error_types=["missing"], rng=seed + 10)
            o = OracleCleaner(p, algorithm="lor", error_types=["missing"],
                              budget=5.0, step=0.03, rng=0).run()
            r = RandomCleaner(p, algorithm="lor", error_types=["missing"],
                              budget=5.0, step=0.03, rng=0).run()
            gains_oracle.append(o.final_f1 - o.initial_f1)
            gains_random.append(r.final_f1 - r.initial_f1)
        assert np.mean(gains_oracle) >= np.mean(gains_random) - 0.02


class TestActiveClean:
    def test_requires_convex_model(self, polluted):
        with pytest.raises(ValueError, match="convex"):
            ActiveClean(polluted, algorithm="knn", error_types=["missing"],
                        budget=5.0, step=0.02, rng=0)

    @pytest.mark.parametrize("algorithm", ["ac_svm", "lir", "lor"])
    def test_all_three_paper_models_run(self, polluted, algorithm):
        trace = ActiveClean(polluted, algorithm=algorithm, error_types=["missing"],
                            budget=5.0, step=0.02, rng=0).run()
        assert trace.records

    def test_record_cleaning_clears_whole_records(self, polluted):
        strategy = _make(ActiveClean, polluted, budget=30.0)
        strategy.run()
        # After substantial budget, the train dirt shrinks record-wise.
        assert strategy.dataset.dirty_train.total() < polluted.dirty_train.total()

    def test_multi_pair_steps_cost_more_than_one_unit(self):
        dataset = load_dataset("cmc", n_rows=220, rng=0)
        p = pollute(dataset, error_types=["missing"], rng=3, scale=0.3, max_level=0.4)
        strategy = ActiveClean(p, algorithm="lor", error_types=["missing"],
                               budget=20.0, step=0.02, rng=0)
        record = strategy.step()
        assert record is not None
        # Heavily polluted data: a record batch almost surely touches
        # several features at once.
        assert record.cost > 1.0
