"""Unit tests for the Bayesian regression used by COMET's Estimator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayes import BayesianLinearRegression, polynomial_design


class TestPolynomialDesign:
    def test_degree_one(self):
        X = polynomial_design(np.array([0.0, 2.0]), degree=1)
        assert X.tolist() == [[1.0, 0.0], [1.0, 2.0]]

    def test_degree_two(self):
        X = polynomial_design(np.array([3.0]), degree=2)
        assert X.tolist() == [[1.0, 3.0, 9.0]]


class TestFit:
    def test_recovers_linear_trend(self):
        x = np.linspace(0, 10, 30)
        y = 2.0 - 0.3 * x
        model = BayesianLinearRegression().fit(polynomial_design(x), y)
        pred = model.predict(polynomial_design(np.array([20.0])))
        assert pred[0] == pytest.approx(2.0 - 0.3 * 20.0, abs=0.05)

    def test_three_point_series(self):
        """The COMET Estimator fits on as few as three measurements."""
        x = np.array([0.0, 0.01, 0.02])
        y = np.array([0.80, 0.78, 0.76])
        model = BayesianLinearRegression().fit(polynomial_design(x), y)
        pred = model.predict(polynomial_design(np.array([-0.01])))
        assert pred[0] == pytest.approx(0.82, abs=0.02)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_1d_X_raises(self):
        with pytest.raises(ValueError):
            BayesianLinearRegression().fit(np.zeros(3), np.zeros(3))


class TestUncertainty:
    def test_std_grows_with_extrapolation_distance(self):
        x = np.linspace(0, 1, 10)
        rng = np.random.default_rng(0)
        y = 1.0 + 0.5 * x + rng.normal(0, 0.05, size=10)
        model = BayesianLinearRegression().fit(polynomial_design(x), y)
        __, near_std = model.predict(polynomial_design(np.array([0.5])), return_std=True)
        __, far_std = model.predict(polynomial_design(np.array([5.0])), return_std=True)
        assert far_std[0] > near_std[0]

    def test_noisier_data_wider_interval(self):
        x = np.linspace(0, 1, 20)
        rng = np.random.default_rng(1)
        design = polynomial_design(x)
        quiet = BayesianLinearRegression().fit(design, x + rng.normal(0, 0.01, 20))
        loud = BayesianLinearRegression().fit(design, x + rng.normal(0, 0.5, 20))
        q = quiet.predict(polynomial_design(np.array([0.5])), return_std=True)[1][0]
        l = loud.predict(polynomial_design(np.array([0.5])), return_std=True)[1][0]
        assert l > q

    def test_credible_interval_brackets_mean(self):
        x = np.linspace(0, 1, 10)
        model = BayesianLinearRegression().fit(polynomial_design(x), x)
        mean, lo, hi = model.credible_interval(polynomial_design(np.array([0.3, 0.9])))
        assert (lo <= mean).all() and (mean <= hi).all()

    def test_interval_level_validated(self):
        x = np.linspace(0, 1, 5)
        model = BayesianLinearRegression().fit(polynomial_design(x), x)
        with pytest.raises(ValueError):
            model.credible_interval(polynomial_design(np.array([0.5])), level=1.5)

    def test_wider_level_wider_interval(self):
        x = np.linspace(0, 1, 10)
        rng = np.random.default_rng(2)
        model = BayesianLinearRegression().fit(
            polynomial_design(x), x + rng.normal(0, 0.1, 10)
        )
        probe = polynomial_design(np.array([0.5]))
        __, lo95, hi95 = model.credible_interval(probe, level=0.95)
        __, lo50, hi50 = model.credible_interval(probe, level=0.50)
        assert hi95[0] - lo95[0] > hi50[0] - lo50[0]


@given(
    st.floats(-5, 5),
    st.floats(-2, 2),
    st.integers(5, 30),
)
@settings(max_examples=25, deadline=None)
def test_property_fits_noiseless_lines_exactly(intercept, slope, n):
    x = np.linspace(0, 1, n)
    y = intercept + slope * x
    model = BayesianLinearRegression().fit(polynomial_design(x), y)
    pred = model.predict(polynomial_design(x))
    assert np.allclose(pred, y, atol=0.05 + 0.02 * (abs(intercept) + abs(slope)))
