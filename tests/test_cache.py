"""The shared eviction-aware cache layer (``repro.cache``).

Three contracts:

* **Accounting** — entries are charged payload bytes + key overhead,
  per-namespace and total byte counters track puts/evictions exactly,
  and the budget is a *hard* bound (floors are best-effort).
* **Equivalence** — caching and eviction never change results: session
  traces are bit-identical under a generous budget, a starvation-level
  budget (every put evicts something), and a cold cache, in both kernel
  modes; and the sub-frame block/delta memo returns matrices
  bit-identical to the uncached transform path.
* **Reuse** — the block cache pays on *fresh* polluted states (the E1
  sweep pattern the whole-matrix memo never hits): unchanged columns
  hit shared blocks, polluted categorical columns patch the base
  state's block via row lineage.
"""

import numpy as np
import pytest

from repro.cache import (
    DEFAULT_MAX_BYTES,
    KEY_OVERHEAD_BYTES,
    SharedCache,
    cache_stats,
    clear_shared_cache,
    set_cache_budget,
    shared_cache,
)
from repro.core import CometConfig
from repro.datasets import load_dataset, pollute
from repro.detect import AlgorithmicCleaner, clear_fd_cache
from repro.frame import Column, DataFrame
from repro.kernels import use_kernels
from repro.ml import clear_fit_cache, fit_cache_stats
from repro.ml.preprocessing import TabularPreprocessor
from repro.session import CleaningSession


@pytest.fixture(autouse=True)
def _pristine_shared_cache():
    """Every test starts cold and leaves the default budget behind."""
    clear_fit_cache()
    clear_fd_cache()
    yield
    set_cache_budget(DEFAULT_MAX_BYTES)
    clear_fit_cache()
    clear_fd_cache()


def _array(n_bytes: int) -> np.ndarray:
    return np.zeros(n_bytes // 8, dtype=np.float64)


# --------------------------------------------------------------------- #
# SharedCache unit behavior (private instances, not the global one)
# --------------------------------------------------------------------- #
class TestSharedCacheAccounting:
    def test_bytes_charged_with_key_overhead(self):
        cache = SharedCache(max_bytes=1 << 20)
        cache.put("ns", "k", _array(1024), nbytes=1024)
        assert cache.total_bytes() == 1024 + KEY_OVERHEAD_BYTES
        stats = cache.stats("ns")
        assert stats["bytes"] == 1024 + KEY_OVERHEAD_BYTES
        assert stats["entries"] == 1 and stats["puts"] == 1

    def test_replacing_a_key_releases_the_old_charge(self):
        cache = SharedCache(max_bytes=1 << 20)
        cache.put("ns", "k", _array(4096), nbytes=4096)
        cache.put("ns", "k", _array(512), nbytes=512)
        assert cache.total_bytes() == 512 + KEY_OVERHEAD_BYTES
        assert cache.stats("ns")["entries"] == 1

    def test_hit_miss_counters(self):
        cache = SharedCache(max_bytes=1 << 20)
        assert cache.get("ns", "absent") is None
        cache.put("ns", "k", _array(64), nbytes=64)
        assert cache.get("ns", "k") is not None
        stats = cache.stats("ns")
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_budget_is_a_hard_bound_under_lru_eviction(self):
        cache = SharedCache(max_bytes=16 * 1024)
        for i in range(32):
            cache.put("ns", i, _array(1024), nbytes=1024)
            assert cache.total_bytes() <= 16 * 1024
        stats = cache.stats("ns")
        assert stats["evictions"] > 0
        # The survivors are the most recently used keys.
        assert cache.get("ns", 31) is not None
        assert cache.get("ns", 0) is None

    def test_get_refreshes_lru_position(self):
        cost = 1024 + KEY_OVERHEAD_BYTES
        cache = SharedCache(max_bytes=8 * cost)  # exactly 8 entries fit
        for i in range(8):
            cache.put("ns", i, _array(1024), nbytes=1024)
        assert cache.get("ns", 0) is not None  # refresh the oldest
        cache.put("ns", 8, _array(1024), nbytes=1024)
        assert cache.get("ns", 0) is not None  # survived: 1 was evicted
        assert cache.get("ns", 1) is None

    def test_floors_shield_a_namespace_from_foreign_pressure(self):
        cache = SharedCache(max_bytes=8 * 1024)
        floor = 2 * (512 + KEY_OVERHEAD_BYTES)
        cache.register("small", floor_bytes=floor)
        cache.put("small", "a", _array(512), nbytes=512)
        cache.put("small", "b", _array(512), nbytes=512)
        for i in range(64):
            cache.put("big", i, _array(1024), nbytes=1024)
        # "small" sits at its floor and survived the LRU sweep entirely.
        assert cache.get("small", "a") is not None
        assert cache.get("small", "b") is not None
        assert cache.total_bytes() <= 8 * 1024

    def test_floors_yield_when_the_budget_demands_it(self):
        cache = SharedCache(max_bytes=2 * 1024)
        cache.register("ns", floor_bytes=1 << 20)  # floor above the budget
        for i in range(8):
            cache.put("ns", i, _array(512), nbytes=512)
        # Second-pass eviction ignored the floor: hard bound holds.
        assert cache.total_bytes() <= 2 * 1024

    def test_oversized_entries_are_rejected_not_cached(self):
        cache = SharedCache(max_bytes=8 * 1024)
        admitted = cache.put("ns", "huge", _array(4 * 1024), nbytes=4 * 1024)
        assert not admitted
        assert cache.get("ns", "huge") is None
        assert cache.stats("ns")["rejected"] == 1
        assert cache.total_bytes() == 0

    def test_shrinking_the_budget_evicts_immediately(self):
        cache = SharedCache(max_bytes=1 << 20)
        for i in range(16):
            cache.put("ns", i, _array(1024), nbytes=1024)
        cache.configure(max_bytes=4 * 1024)
        assert cache.total_bytes() <= 4 * 1024
        assert cache.max_bytes == 4 * 1024

    def test_clear_one_namespace_leaves_the_rest(self):
        cache = SharedCache(max_bytes=1 << 20)
        cache.put("a", 1, _array(64), nbytes=64)
        cache.put("b", 1, _array(64), nbytes=64)
        cache.clear("a")
        assert cache.get("a", 1) is None
        assert cache.get("b", 1) is not None
        assert cache.stats("a")["bytes"] == 0

    def test_global_stats_shape(self):
        cache = SharedCache(max_bytes=1 << 20)
        cache.put("ns", 1, _array(64), nbytes=64)
        stats = cache.stats()
        assert stats["max_bytes"] == 1 << 20
        assert stats["entries"] == 1
        assert set(stats["namespaces"]["ns"]) >= {
            "hits", "misses", "puts", "evictions", "rejected",
            "bytes", "entries", "floor_bytes",
        }

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            SharedCache(max_bytes=0)
        with pytest.raises(ValueError):
            SharedCache(max_bytes=1024).configure(max_bytes=-1)
        with pytest.raises(ValueError):
            SharedCache(max_bytes=1024).register("ns", floor_bytes=-1)


class TestModuleSingleton:
    def test_set_cache_budget_governs_the_shared_instance(self):
        set_cache_budget(32 * 1024)
        assert shared_cache().max_bytes == 32 * 1024
        assert cache_stats()["max_bytes"] == 32 * 1024

    def test_featurization_namespaces_are_registered(self):
        assert {"fit", "transform", "blocks", "fd"} <= set(
            cache_stats()["namespaces"]
        )

    def test_clear_shared_cache_drops_everything(self):
        shared_cache().put("fit", b"probe", (1.0, 2.0, 3.0), nbytes=24)
        clear_shared_cache()
        assert cache_stats()["total_bytes"] == 0


# --------------------------------------------------------------------- #
# Sub-frame memoization: bit-identical to the uncached transform path
# --------------------------------------------------------------------- #
def _feature_frame(n=160, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    return DataFrame([
        Column("x", rng.normal(size=n)),
        Column("y", rng.normal(size=n)),
        Column("c", rng.choice(["a", "b", "c"], size=n).astype(object)),
        Column("d", rng.choice(["p", "q"], size=n).astype(object)),
    ])


class TestBlockEquivalence:
    NAMES = ["x", "y", "c", "d"]

    def _assert_equivalent(self, frame):
        cached = TabularPreprocessor(self.NAMES).fit(frame).transform(frame)
        uncached = (
            TabularPreprocessor(self.NAMES, cache=False)
            .fit(frame)
            .transform(frame)
        )
        assert np.array_equal(cached, uncached)

    def test_fresh_polluted_states_transform_bit_identically(self):
        base = _feature_frame()
        # Warm the cache with the base state, then pollute each column
        # kind in turn — categorical rewrites, numeric rewrites, missing.
        TabularPreprocessor(self.NAMES).fit(base).transform(base)
        polluted = [
            DataFrame([base["x"], base["y"],
                       base["c"].with_values([3, 11], ["b", "a"]), base["d"]]),
            DataFrame([base["x"].with_values([5], [42.0]), base["y"],
                       base["c"], base["d"]]),
            DataFrame([base["x"].with_missing([0, 7]), base["y"],
                       base["c"].with_missing([2]), base["d"]]),
        ]
        for frame in polluted:
            self._assert_equivalent(frame)
        stats = fit_cache_stats()
        assert stats["block_hits"] > 0  # unchanged columns reused blocks
        assert stats["delta_hits"] > 0  # polluted columns patched bases

    def test_delta_patch_equals_full_recompute_exactly(self):
        base = _feature_frame()
        pre = TabularPreprocessor(self.NAMES).fit(base)
        pre.transform(base)
        state = DataFrame([base["x"], base["y"],
                           base["c"].with_values([1, 4, 9], ["c", "c", "a"]),
                           base["d"]])
        # Same fitted stats → the categorical block comes from a patch.
        patched = TabularPreprocessor(self.NAMES).fit(base).transform(state)
        assert fit_cache_stats()["delta_hits"] > 0
        full = (
            TabularPreprocessor(self.NAMES, cache=False)
            .fit(base)
            .transform(state)
        )
        assert np.array_equal(patched, full)

    def test_replayed_pollution_hits_without_token_equality(self):
        base = _feature_frame()
        first = DataFrame([base["x"], base["y"],
                           base["c"].with_values([3], ["b"]), base["d"]])
        TabularPreprocessor(self.NAMES).fit(first).transform(first)
        before = fit_cache_stats()
        # Re-derive the identical pollution: fresh tokens, same delta
        # signature → whole-matrix and fit lookups hit.
        replay = DataFrame([base["x"], base["y"],
                            base["c"].with_values([3], ["b"]), base["d"]])
        TabularPreprocessor(self.NAMES).fit(replay).transform(replay)
        after = fit_cache_stats()
        assert after["hits"] >= before["hits"] + 4
        assert after["transform_hits"] >= before["transform_hits"] + 1

    def test_eviction_thrash_stays_bit_identical(self):
        # A budget so small every put evicts something: correctness must
        # not depend on anything surviving.
        set_cache_budget(4 * 1024)
        base = _feature_frame()
        states = [base] + [
            DataFrame([base["x"], base["y"],
                       base["c"].with_values([i], ["a"]), base["d"]])
            for i in range(4)
        ]
        for frame in states:
            self._assert_equivalent(frame)
        assert cache_stats()["total_bytes"] <= 4 * 1024


# --------------------------------------------------------------------- #
# Whole-session equivalence: budgets and kernel modes never change traces
# --------------------------------------------------------------------- #
def _session_trace(seed=3):
    dataset = load_dataset("cmc", n_rows=120, rng=0)
    polluted = pollute(dataset, error_types=["missing"], rng=seed)
    session = CleaningSession.create(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=3.0,
        config=CometConfig(step=0.05),
        rng=0,
        cleaner=AlgorithmicCleaner(step=0.05, rng=0),
    )
    try:
        return session.run()
    finally:
        session.close()


class TestSessionEquivalence:
    @pytest.mark.parametrize("mode", ["vectorized", "reference"])
    def test_traces_identical_across_budgets(self, mode):
        with use_kernels(mode):
            clear_fit_cache()
            clear_fd_cache()
            baseline = _session_trace()
            # Warm shared cache (second run leans on the first run's
            # entries as another tenant would).
            warm = _session_trace()
            # Starvation budget: eviction on nearly every put.
            set_cache_budget(16 * 1024)
            clear_fit_cache()
            clear_fd_cache()
            starved = _session_trace()
            assert warm == baseline
            assert starved == baseline

    def test_bounded_memory_under_budget(self):
        set_cache_budget(64 * 1024)
        for seed in (1, 2, 3):
            _session_trace(seed=seed)
            assert cache_stats()["total_bytes"] <= 64 * 1024
        assert cache_stats()["evictions"] > 0

    def test_sweep_reuses_featurization_on_fresh_states(self):
        clear_fit_cache()
        _session_trace()
        stats = fit_cache_stats()
        # Every polluted candidate state is fresh (new tokens), yet the
        # block layer reuses unchanged columns' featurization.
        assert stats["block_hits"] > 0
        blocks = cache_stats()["namespaces"]["blocks"]
        assert blocks["hits"] > 0
