"""Unit tests for cost models, budget, cleaner, and buffer."""

import numpy as np
import pytest

from repro.cleaning import (
    Budget,
    CleaningBuffer,
    ConstantCost,
    CostModel,
    GroundTruthCleaner,
    LinearCost,
    OneShotCost,
    paper_cost_model,
    uniform_cost_model,
)
from repro.errors import MissingValues, PrePollution
from repro.frame import DataFrame


class TestCostFunctions:
    def test_constant(self):
        fn = ConstantCost(1.0)
        assert [fn.cost(k) for k in range(3)] == [1.0, 1.0, 1.0]

    def test_one_shot(self):
        fn = OneShotCost(2.0, 0.0)
        assert [fn.cost(k) for k in range(3)] == [2.0, 0.0, 0.0]

    def test_linear(self):
        fn = LinearCost(1.0, 1.0)
        assert [fn.cost(k) for k in range(4)] == [1.0, 2.0, 3.0, 4.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantCost(0.0)
        with pytest.raises(ValueError):
            OneShotCost(0.0)
        with pytest.raises(ValueError):
            LinearCost(0.0)


class TestCostModel:
    def test_paper_assignment(self):
        model = paper_cost_model()
        assert model.next_cost("f", "categorical") == 1.0
        assert model.next_cost("f", "scaling") == 1.0
        assert model.next_cost("f", "missing") == 2.0
        assert model.next_cost("f", "noise") == 1.0

    def test_history_per_feature_error_pair(self):
        model = paper_cost_model()
        assert model.record_step("f", "noise") == 1.0
        assert model.record_step("f", "noise") == 2.0
        # Different feature: independent history.
        assert model.next_cost("g", "noise") == 1.0

    def test_one_shot_drops_to_zero(self):
        model = paper_cost_model()
        assert model.record_step("f", "missing") == 2.0
        assert model.next_cost("f", "missing") == 0.0

    def test_uniform_model_everything_costs_one(self):
        model = uniform_cost_model()
        for error in ("missing", "noise", "categorical", "scaling"):
            assert model.record_step("f", error) == 1.0

    def test_copy_independent_history(self):
        model = paper_cost_model()
        model.record_step("f", "noise")
        dup = model.copy()
        dup.record_step("f", "noise")
        assert model.steps_done("f", "noise") == 1
        assert dup.steps_done("f", "noise") == 2


class TestBudget:
    def test_charge_and_remaining(self):
        budget = Budget(10.0)
        budget.charge(3.0)
        assert budget.remaining == 7.0

    def test_overcharge_raises(self):
        budget = Budget(2.0)
        with pytest.raises(ValueError, match="insufficient"):
            budget.charge(3.0)

    def test_negative_charge_raises(self):
        with pytest.raises(ValueError):
            Budget(5.0).charge(-1.0)

    def test_exhausted(self):
        budget = Budget(1.0)
        assert not budget.exhausted(1.0)
        budget.charge(1.0)
        assert budget.exhausted(1.0)
        assert budget.exhausted()

    def test_zero_cost_affordable_when_budget_left(self):
        budget = Budget(1.0)
        assert budget.can_afford(0.0)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            Budget(0.0)


def _polluted_dataset(n_train=100, n_test=60, level=0.10, seed=0):
    rng = np.random.default_rng(seed)
    def make(n, s):
        r = np.random.default_rng(s)
        return DataFrame(
            {
                "num": r.normal(size=n),
                "other": r.normal(size=n),
                "label": r.integers(0, 2, size=n),
            }
        )
    pre = PrePollution(MissingValues(), rng=seed)
    return pre.apply(
        make(n_train, seed + 1),
        make(n_test, seed + 2),
        label="label",
        levels={"num": level, "other": 0.0},
    )


class TestGroundTruthCleaner:
    def test_one_step_restores_step_fraction(self):
        dataset = _polluted_dataset()
        cleaner = GroundTruthCleaner(step=0.05, rng=0)
        before_train = dataset.train["num"].n_missing
        before_test = dataset.test["num"].n_missing
        cleaner.clean_step(dataset, "num", "missing")
        assert dataset.train["num"].n_missing == before_train - 5
        assert dataset.test["num"].n_missing == before_test - 3
        assert dataset.dirty_train.dirty_count("num") == before_train - 5

    def test_restored_values_match_ground_truth(self):
        dataset = _polluted_dataset()
        cleaner = GroundTruthCleaner(step=1.0, rng=0)  # clean everything
        cleaner.clean_step(dataset, "num", "missing")
        assert dataset.train["num"] == dataset.clean_train["num"]
        assert dataset.test["num"] == dataset.clean_test["num"]
        assert dataset.dirty_train.is_clean("num")

    def test_priority_rows_cleaned_first(self):
        dataset = _polluted_dataset(level=0.20)
        dirty = dataset.dirty_train.rows("num", "missing")
        target = dirty[:2]
        cleaner = GroundTruthCleaner(step=0.02, rng=0)  # 2 cells per step
        cleaner.clean_step(dataset, "num", "missing", priority_train_rows=target)
        assert not dataset.train["num"].missing_mask[target].any()

    def test_cleaning_beyond_dirt_touches_clean_cells_harmlessly(self):
        dataset = _polluted_dataset(level=0.01)
        cleaner = GroundTruthCleaner(step=0.10, rng=0)
        action = cleaner.clean_step(dataset, "num", "missing")
        assert len(action.train_rows) == 10  # full step charged
        assert dataset.dirty_train.is_clean("num")
        assert dataset.train["num"] == dataset.clean_train["num"]

    def test_revert_restores_exact_state(self):
        dataset = _polluted_dataset()
        snapshot_train = dataset.train["num"].copy()
        dirty_before = dataset.dirty_train.dirty_count("num")
        cleaner = GroundTruthCleaner(step=0.05, rng=0)
        action = cleaner.clean_step(dataset, "num", "missing")
        cleaner.revert(dataset, action)
        assert dataset.train["num"] == snapshot_train
        assert dataset.dirty_train.dirty_count("num") == dirty_before

    def test_apply_replays_buffered_step(self):
        dataset = _polluted_dataset()
        cleaner = GroundTruthCleaner(step=0.05, rng=0)
        action = cleaner.clean_step(dataset, "num", "missing")
        after_train = dataset.train["num"].copy()
        cleaner.revert(dataset, action)
        cleaner.apply(dataset, action)
        assert dataset.train["num"] == after_train

    def test_invalid_step_raises(self):
        with pytest.raises(ValueError):
            GroundTruthCleaner(step=0.0)


class TestCleaningBuffer:
    def test_put_pop_fifo(self):
        dataset = _polluted_dataset()
        cleaner = GroundTruthCleaner(step=0.02, rng=0)
        a1 = cleaner.clean_step(dataset, "num", "missing")
        a2 = cleaner.clean_step(dataset, "num", "missing")
        buffer = CleaningBuffer()
        buffer.put(a1)
        buffer.put(a2)
        assert len(buffer) == 2
        assert ("num", "missing") in buffer
        assert buffer.pop("num", "missing") is a1
        assert buffer.pop("num", "missing") is a2
        assert buffer.pop("num", "missing") is None
        assert ("num", "missing") not in buffer

    def test_pop_missing_key_returns_none(self):
        assert CleaningBuffer().pop("x", "missing") is None


class TestCleaningBufferReplay:
    """Replay semantics through the Comet session (§3.3, step D): a
    buffered re-cleaning is free, never double-charges the budget, and a
    revert → replay → accept cycle lands on the originally cleaned state."""

    def _session(self):
        from repro.core import Comet, CometConfig

        return Comet(
            _polluted_dataset(),
            algorithm="lor",
            error_types=["missing"],
            budget=10.0,
            config=CometConfig(step=0.05),
            rng=0,
        )

    def test_replay_costs_zero_and_never_double_charges(self):
        comet = self._session()
        pair = ("num", "missing")
        first_cost = comet._perform_cleaning("num", "missing", None)
        assert first_cost > 0.0
        spent_after_first = comet.budget.spent
        cleaned_train = comet.dataset.train["num"].copy()
        comet._revert_last(pair)
        assert pair in comet.buffer
        assert comet.budget.spent == spent_after_first  # revert refunds nothing
        replay_cost = comet._perform_cleaning("num", "missing", None)
        assert replay_cost == 0.0
        assert comet.budget.spent == spent_after_first  # no double charge
        assert comet.dataset.train["num"] == cleaned_train
        assert pair not in comet.buffer  # the buffered step was consumed

    def test_cost_model_step_history_not_advanced_by_replay(self):
        comet = self._session()
        comet._perform_cleaning("num", "missing", None)
        assert comet.cost_model.steps_done("num", "missing") == 1
        comet._revert_last(("num", "missing"))
        comet._perform_cleaning("num", "missing", None)
        # The replay re-applied recorded work; it must not register a new
        # cleaning step against the cost model.
        assert comet.cost_model.steps_done("num", "missing") == 1

    def test_revert_replay_accept_cycle(self):
        comet = self._session()
        pair = ("num", "missing")
        baseline = comet._baseline()
        comet._perform_cleaning("num", "missing", None)
        cleaned_train = comet.dataset.train["num"].copy()
        dirty_after_clean = comet.dataset.dirty_train.dirty_count("num", "missing")
        spent = comet.budget.spent
        comet._revert_last(pair)
        # The revert restores the pre-cleaning state without spoiling the
        # memoized baseline.
        assert comet._baseline() == baseline
        comet._perform_cleaning("num", "missing", None)
        f1_after = comet.measure_baseline()
        comet._accept(pair, f1_after)
        assert comet.dataset.train["num"] == cleaned_train
        assert comet.dataset.dirty_train.dirty_count("num", "missing") == dirty_after_clean
        assert comet.budget.spent == spent
        assert comet._baseline() == f1_after
        assert len(comet.buffer) == 0
