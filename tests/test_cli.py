"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "cmc"])
        assert args.methods == ["comet", "rr"]
        assert args.errors == ["missing"]
        assert args.budget == 10.0

    def test_run_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "imagenet"])

    def test_run_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "cmc", "--methods", "alchemy"]
            )

    def test_recommend_k(self):
        args = build_parser().parse_args(
            ["recommend", "--dataset", "churn", "-k", "5"]
        )
        assert args.k == 5

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cmc" in out and "datasets" in out
        assert "comet" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--dataset", "cmc", "--algorithm", "lor",
            "--methods", "rr", "--budget", "2", "--rows", "150",
            "--step", "0.05",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RR" in out

    def test_recommend_small(self, capsys):
        code = main([
            "recommend", "--dataset", "cmc", "--algorithm", "lor",
            "--budget", "2", "--rows", "150", "--step", "0.05", "-k", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "current F1" in out or "no candidate" in out


class TestSessionCommands:
    def test_serve_parses_backend_flags(self):
        args = build_parser().parse_args(["serve", "--backend", "thread", "--jobs", "3"])
        assert args.command == "serve"
        assert args.backend == "thread" and args.jobs == 3

    def test_serve_defaults_to_stdio_without_quotas(self):
        args = build_parser().parse_args(["serve"])
        assert args.port is None and not args.http
        assert args.workers == 4
        assert args.max_sessions is None
        assert args.max_iterations is None
        assert args.max_seconds is None

    def test_serve_parses_network_and_quota_flags(self):
        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "8765", "--http",
            "--workers", "8", "--max-sessions", "4",
            "--max-iterations", "100", "--max-seconds", "30.5",
        ])
        assert args.host == "0.0.0.0" and args.port == 8765 and args.http
        assert args.workers == 8 and args.max_sessions == 4
        assert args.max_iterations == 100 and args.max_seconds == 30.5

    def test_serve_rejects_non_positive_workers_and_quotas(self):
        for flags in (
            ["--workers", "0"],
            ["--workers", "-2"],
            ["--max-sessions", "0"],
            ["--max-iterations", "-1"],
            ["--max-seconds", "0"],
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve", *flags])

    def test_serve_http_requires_port(self, capsys):
        from repro.cli import _cmd_serve

        args = build_parser().parse_args(["serve", "--http"])
        assert _cmd_serve(args) == 2
        assert "--http requires --port" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])

    def test_resume_parses(self):
        args = build_parser().parse_args(
            ["resume", "--checkpoint", "x.ckpt", "--backend", "process", "--jobs", "2"]
        )
        assert args.checkpoint == "x.ckpt"
        assert args.backend == "process" and args.jobs == 2

    def test_serve_stream_roundtrip(self, capsys):
        import io
        import json

        from repro.cli import _cmd_serve

        args = build_parser().parse_args(["serve"])
        ins = io.StringIO(json.dumps({"action": "status"}) + "\n")
        outs = io.StringIO()
        assert _cmd_serve(args, ins, outs) == 0
        response = json.loads(outs.getvalue().splitlines()[0])
        assert response["ok"] and response["result"]["sessions"] == []

    def test_serve_port_end_to_end(self):
        """`serve --port 0` binds, prints its port, serves TCP, shuts down."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.service import CometClient

        src = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = proc.stdout.readline().strip()
            assert ready.startswith("serving tcp on 127.0.0.1:"), ready
            port = int(ready.rsplit(":", 1)[1])
            with CometClient(port, timeout=30) as client:
                status = client.status()
                assert status["sessions"] == []
                assert status["backend"] == "serial"
                assert status["workers"] == 1
                assert status["scheduler_workers"] == 4
                assert status["quotas"] == {
                    "max_iterations": None,
                    "max_seconds": None,
                    "max_sessions": None,
                    "max_cache_bytes": None,
                }
                # Observability extras (PR 7): scheduler + cache counters.
                assert status["scheduler"]["jobs_in_flight"] == 0
                assert {"hits", "misses"} <= set(status["fd_cache"])
                assert {"hits", "misses"} <= set(status["fit_cache"])
                assert {"max_bytes", "total_bytes"} <= set(status["cache"])
                assert client.shutdown_server() == {"shutdown": True}
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_resume_runs_checkpoint(self, tmp_path, capsys):
        from repro.core import CometConfig
        from repro.datasets import load_dataset, pollute
        from repro.session import CleaningSession

        polluted = pollute(
            load_dataset("cmc", n_rows=130), error_types=["missing"], rng=7
        )
        session = CleaningSession.create(
            polluted, algorithm="lor", error_types=["missing"], budget=2.0,
            config=CometConfig(step=0.05), rng=0,
        )
        session.step()
        path = tmp_path / "cli.ckpt"
        session.save(path)
        trace_path = tmp_path / "trace.json"
        code = main(
            ["resume", "--checkpoint", str(path), "--trace", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert trace_path.exists()


class TestBackendFlags:
    def test_backend_defaults_to_serial(self):
        args = build_parser().parse_args(["run", "--dataset", "cmc"])
        assert args.backend == "serial"
        assert args.jobs == 1

    def test_recommend_accepts_backend_flags(self):
        # Pure-recommendation sweeps parallelize with the same knobs as run.
        args = build_parser().parse_args(
            ["recommend", "--dataset", "cmc", "--backend", "process", "--jobs", "3"]
        )
        assert args.backend == "process"
        assert args.jobs == 3

    def test_recommend_with_thread_backend(self, capsys):
        code = main([
            "recommend", "--dataset", "cmc", "--algorithm", "lor",
            "--budget", "2", "--rows", "150", "--step", "0.05", "-k", "2",
            "--backend", "thread", "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "current F1" in out or "no candidate" in out

    def test_backend_and_jobs_parse(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "cmc", "--backend", "thread", "--jobs", "4"]
        )
        assert args.backend == "thread"
        assert args.jobs == 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "cmc", "--backend", "gpu"]
            )

    def test_run_with_thread_backend(self, capsys):
        code = main(
            [
                "run", "--dataset", "cmc", "--algorithm", "lor",
                "--rows", "160", "--budget", "2", "--step", "0.05",
                "--methods", "comet", "--backend", "thread", "--jobs", "2",
            ]
        )
        assert code == 0
        assert "COMET" in capsys.readouterr().out
