"""Integration tests for the full COMET session loop."""

import numpy as np
import pytest

from repro import Comet, CometConfig, load_dataset, paper_cost_model, pollute


def _session(budget=8.0, algorithm="lor", error_types=("missing",), seed=1, **kwargs):
    dataset = load_dataset("cmc", n_rows=250, rng=0)
    polluted = pollute(dataset, error_types=list(error_types), rng=seed)
    config = kwargs.pop("config", CometConfig(step=0.02))
    return Comet(
        polluted,
        algorithm=algorithm,
        error_types=list(error_types),
        budget=budget,
        config=config,
        rng=0,
        **kwargs,
    )


class TestSessionBasics:
    def test_run_produces_trace(self):
        comet = _session()
        trace = comet.run()
        assert trace.records
        assert 0.0 <= trace.initial_f1 <= 1.0
        assert trace.total_spent <= 8.0 + 1e-9

    def test_budget_spent_monotone(self):
        trace = _session().run()
        spent = [r.budget_spent for r in trace.records]
        assert spent == sorted(spent)

    def test_input_dataset_not_mutated(self):
        dataset = load_dataset("cmc", n_rows=250, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=1)
        before = polluted.train.copy()
        dirty_before = polluted.dirty_train.total()
        Comet(polluted, algorithm="lor", error_types=["missing"], budget=4,
              config=CometConfig(step=0.02), rng=0).run()
        assert polluted.train == before
        assert polluted.dirty_train.total() == dirty_before

    def test_cleaning_actually_removes_dirt(self):
        comet = _session(budget=12.0)
        before = comet.dataset.dirty_train.total()
        comet.run()
        assert comet.dataset.dirty_train.total() < before

    def test_step_returns_none_when_budget_exhausted(self):
        comet = _session(budget=2.0)
        comet.run()
        assert comet.step() is None
        assert comet.is_finished

    def test_records_have_consistent_f1_chain(self):
        trace = _session().run()
        for prev, nxt in zip(trace.records, trace.records[1:]):
            assert nxt.f1_before == pytest.approx(prev.f1_after)

    def test_deterministic_given_seed(self):
        a = _session(seed=3).run()
        b = _session(seed=3).run()
        assert [r.feature for r in a.records] == [r.feature for r in b.records]
        assert [r.f1_after for r in a.records] == [r.f1_after for r in b.records]


class TestCleanTermination:
    def test_session_stops_when_everything_clean(self):
        dataset = load_dataset("titanic", n_rows=150, rng=0)
        polluted = pollute(
            dataset, error_types=["missing"], rng=2, scale=0.02, max_level=0.04
        )
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=500.0,
            config=CometConfig(step=0.05),
            rng=0,
        )
        trace = comet.run()
        assert comet.open_candidates() == []
        assert comet.dataset.dirty_train.is_clean()
        assert trace.total_spent < 500.0

    def test_marked_clean_pairs_leave_candidates(self):
        dataset = load_dataset("cmc", n_rows=200, rng=0)
        polluted = pollute(
            dataset, error_types=["missing"], rng=1, scale=0.03, max_level=0.06
        )
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=30.0,
            config=CometConfig(step=0.05),
            rng=0,
        )
        n_before = len(comet.open_candidates())
        comet.run()
        assert len(comet.open_candidates()) < n_before


class TestMultiError:
    def test_multi_error_with_paper_costs(self):
        dataset = load_dataset("cmc", n_rows=250, rng=0)
        polluted = pollute(
            dataset,
            error_types=["missing", "noise", "categorical", "scaling"],
            rng=4,
        )
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing", "noise", "categorical", "scaling"],
            budget=10.0,
            cost_model=paper_cost_model(),
            config=CometConfig(step=0.02),
            rng=0,
        )
        trace = comet.run()
        assert trace.records
        errors_used = {r.error for r in trace.records}
        assert errors_used <= {"missing", "noise", "categorical", "scaling"}

    def test_inapplicable_pairs_excluded(self):
        dataset = load_dataset("eeg", n_rows=150, rng=0)  # numeric only
        polluted = pollute(dataset, error_types=["missing"], rng=5)
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["categorical", "missing"],
            budget=4.0,
            config=CometConfig(step=0.05),
            rng=0,
        )
        assert all(e == "missing" for __, e in comet.open_candidates())


class TestRevertAndBuffer:
    def test_reverting_restores_budget_is_not_refunded(self):
        """Reverted cleanings still consume budget (the Cleaner worked)."""
        comet = _session(budget=8.0)
        trace = comet.run()
        total_cost_of_kept = sum(r.cost for r in trace.records)
        assert comet.budget.spent >= total_cost_of_kept - 1e-9

    def test_revert_ablation_never_rejects(self):
        comet = _session(config=CometConfig(step=0.02, revert_on_decrease=False))
        trace = comet.run()
        assert all(not r.rejected for r in trace.records)


class TestHyperparameterSearch:
    def test_search_changes_model_params_validly(self):
        comet = _session(
            algorithm="knn",
            config=CometConfig(step=0.02, search_iterations=4),
            budget=2.0,
        )
        assert comet.model.n_neighbors in (3, 5, 7, 9, 11, 15)
        trace = comet.run()
        assert trace.records


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", ["svm", "knn", "gb", "lir", "lor"])
    def test_every_algorithm_completes_one_step(self, algorithm):
        comet = _session(budget=1.0, algorithm=algorithm)
        record = comet.step()
        assert record is not None
        assert 0.0 <= record.f1_after <= 1.0
