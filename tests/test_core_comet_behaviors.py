"""Focused white-box tests of COMET session internals: buffer replay,
fallback paths, budget boundaries, and candidate bookkeeping."""

import numpy as np
import pytest

from repro import Comet, CometConfig, load_dataset, pollute


@pytest.fixture()
def comet():
    dataset = load_dataset("cmc", n_rows=200, rng=0)
    polluted = pollute(dataset, error_types=["missing"], rng=2)
    return Comet(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=6.0,
        config=CometConfig(step=0.03),
        rng=0,
    )


class TestBufferReplay:
    def test_perform_cleaning_from_buffer_is_free(self, comet):
        feature = comet.dataset.feature_names[0]
        action = comet.cleaner.clean_step(comet.dataset, feature, "missing")
        comet.cleaner.revert(comet.dataset, action)
        comet.buffer.put(action)
        spent_before = comet.budget.spent
        cost = comet._perform_cleaning(feature, "missing", None)
        assert cost == 0.0
        assert comet.budget.spent == spent_before
        assert (feature, "missing") not in comet.buffer

    def test_perform_cleaning_without_buffer_charges(self, comet):
        feature = comet.dataset.feature_names[0]
        cost = comet._perform_cleaning(feature, "missing", None)
        assert cost == 1.0
        assert comet.budget.spent == 1.0


class TestFallbackPath:
    def test_fallback_without_predictions_cleans_something(self, comet):
        baseline = comet.measure_baseline()
        record = comet._fallback([], baseline)
        assert record is not None
        assert record.used_fallback
        assert record.predicted_f1 is None

    def test_fallback_with_empty_actives_returns_none(self, comet):
        comet._active = []
        assert comet._fallback([], 0.5) is None

    def test_fallback_respects_budget(self, comet):
        comet.budget.charge(6.0)  # exhaust
        baseline = 0.5
        assert comet._fallback([], baseline) is None


class TestBudgetBoundaries:
    def test_iterate_empty_when_exhausted(self, comet):
        comet.budget.charge(6.0)
        assert comet.iterate() == []

    def test_iterate_empty_when_no_candidates(self, comet):
        comet._active = []
        assert comet.iterate() == []

    def test_is_finished_transitions(self, comet):
        assert not comet.is_finished
        comet.budget.charge(6.0)
        assert comet.is_finished


class TestCandidateBookkeeping:
    def test_accept_removes_fully_clean_pair(self, comet):
        feature = comet.dataset.feature_names[0]
        pair = (feature, "missing")
        # Force-clean every dirty cell of the pair directly.
        rows_train = comet.dataset.dirty_train.rows(feature, "missing")
        rows_test = comet.dataset.dirty_test.rows(feature, "missing")
        comet.dataset.dirty_train.remove(feature, "missing", rows_train)
        comet.dataset.dirty_test.remove(feature, "missing", rows_test)
        comet._accept(pair, 0.6)
        assert pair not in comet.open_candidates()

    def test_accept_keeps_still_dirty_pair(self, comet):
        feature = comet.dataset.dirty_train.features()[0]
        pair = (feature, "missing")
        comet._accept(pair, 0.6)
        assert pair in comet.open_candidates()

    def test_open_candidates_is_a_copy(self, comet):
        candidates = comet.open_candidates()
        candidates.clear()
        assert comet.open_candidates()


class TestRecommendConsistency:
    def test_recommend_empty_when_clean(self, comet):
        comet._active = []
        assert comet.recommend(k=2) == []

    def test_recommend_scores_descending_and_positive_gain(self, comet):
        baseline = comet.measure_baseline()
        for candidate in comet.recommend(k=5):
            assert candidate.gain > 0.0
            assert candidate.prediction.predicted_f1 > baseline


class TestDeprecatedBaselineAlias:
    def test_alias_warns_and_delegates(self, comet):
        import pytest as _pytest

        with _pytest.warns(DeprecationWarning, match="measure_baseline"):
            via_alias = comet.estimator_measure_baseline()
        assert via_alias == comet.measure_baseline()
