"""Unit tests for CometConfig validation and CleaningTrace semantics."""

import numpy as np
import pytest

from repro.core import CleaningTrace, CometConfig, IterationRecord


class TestConfigValidation:
    def test_defaults_valid(self):
        cfg = CometConfig()
        assert cfg.step == 0.01
        assert cfg.n_pollution_steps == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step": 0.0},
            {"step": 1.5},
            {"n_pollution_steps": 0},
            {"n_combinations": 0},
            {"credible_level": 1.0},
            {"credible_level": 0.0},
            {"regression_degree": 0},
            {"min_cost": 0.0},
            {"search_iterations": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CometConfig(**kwargs)


def _record(i, spent, f1, reverted=False, predicted=None):
    return IterationRecord(
        iteration=i,
        feature="f",
        error="missing",
        cost=1.0,
        budget_spent=spent,
        f1_before=0.5,
        f1_after=f1,
        predicted_f1=predicted,
        reverted=reverted,
    )


class TestCleaningTrace:
    def test_empty_trace(self):
        trace = CleaningTrace(initial_f1=0.6)
        assert trace.final_f1 == 0.6
        assert trace.total_spent == 0.0
        assert trace.f1_at([0, 10]).tolist() == [0.6, 0.6]

    def test_f1_at_propagates_between_measurements(self):
        trace = CleaningTrace(initial_f1=0.5)
        trace.append(_record(1, spent=2.0, f1=0.55))
        trace.append(_record(2, spent=5.0, f1=0.60))
        grid = trace.f1_at([0, 1, 2, 3, 4, 5, 6])
        assert grid.tolist() == [0.5, 0.5, 0.55, 0.55, 0.55, 0.60, 0.60]

    def test_f1_at_exact_budget_boundary(self):
        trace = CleaningTrace(initial_f1=0.5)
        trace.append(_record(1, spent=3.0, f1=0.7))
        assert trace.f1_at([3.0])[0] == 0.7

    def test_gain_property(self):
        assert _record(1, 1.0, 0.58).gain == pytest.approx(0.08)

    def test_prediction_errors_skip_reverted_and_missing(self):
        trace = CleaningTrace(initial_f1=0.5)
        trace.append(_record(1, 1.0, 0.55, predicted=0.60))
        trace.append(_record(2, 2.0, 0.56, predicted=None))
        trace.append(_record(3, 3.0, 0.50, reverted=True, predicted=0.9))
        errors = trace.prediction_errors()
        assert errors == [pytest.approx(0.05)]

    def test_final_f1_tracks_last_record(self):
        trace = CleaningTrace(initial_f1=0.5)
        trace.append(_record(1, 1.0, 0.9))
        assert trace.final_f1 == 0.9
        assert trace.total_spent == 1.0
