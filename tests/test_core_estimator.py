"""Unit tests for the COMET Estimator (E1 measurement + E2 prediction)."""

import numpy as np
import pytest

from repro.core import CometConfig, CometEstimator
from repro.datasets import load_dataset, pollute
from repro.errors import MissingValues, make_error
from repro.ml import make_classifier


@pytest.fixture(scope="module")
def setting():
    dataset = load_dataset("eeg", n_rows=300, rng=0)
    polluted = pollute(dataset, error_types=["missing"], rng=2)
    estimator = CometEstimator(
        make_classifier("lor"),
        label="label",
        config=CometConfig(step=0.05, n_pollution_steps=2),
        rng=0,
    )
    return estimator, polluted


class TestMeasurement:
    def test_baseline_in_unit_interval(self, setting):
        estimator, polluted = setting
        f1 = estimator.measure_baseline(polluted.train, polluted.test)
        assert 0.0 <= f1 <= 1.0

    def test_curve_shape(self, setting):
        estimator, polluted = setting
        baseline = estimator.measure_baseline(polluted.train, polluted.test)
        levels, scores, rows = estimator.measure_pollution_curve(
            polluted.train, polluted.test, "num_0", MissingValues(), baseline
        )
        assert levels.tolist() == [0.0, 0.05, 0.10]
        assert scores[0] == baseline
        assert len(rows) > 0

    def test_combinations_extend_curve(self, setting):
        estimator, polluted = setting
        estimator2 = CometEstimator(
            make_classifier("lor"),
            label="label",
            config=CometConfig(step=0.05, n_pollution_steps=2, n_combinations=2),
            rng=0,
        )
        baseline = 0.7
        levels, scores, __ = estimator2.measure_pollution_curve(
            polluted.train, polluted.test, "num_0", MissingValues(), baseline
        )
        assert len(levels) == 1 + 2 * 2  # baseline + steps × combinations

    def test_heavy_pollution_of_strong_feature_hurts(self):
        """Strong signal feature + heavy pollution → measurable F1 drop."""
        dataset = load_dataset("eeg", n_rows=400, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=3, scale=0.01)
        estimator = CometEstimator(
            make_classifier("lor"),
            label="label",
            config=CometConfig(step=0.25, n_pollution_steps=2),
            rng=0,
        )
        baseline = estimator.measure_baseline(polluted.train, polluted.test)
        drops = []
        for feature in polluted.feature_names[:5]:
            __, scores, ___ = estimator.measure_pollution_curve(
                polluted.train, polluted.test, feature, MissingValues(), baseline
            )
            drops.append(baseline - scores[1:].mean())
        assert max(drops) > 0.01


class TestPrediction:
    def test_prediction_fields(self, setting):
        estimator, polluted = setting
        baseline = estimator.measure_baseline(polluted.train, polluted.test)
        prediction = estimator.estimate(
            polluted.train, polluted.test, "num_0", MissingValues(), baseline
        )
        assert prediction.feature == "num_0"
        assert prediction.error == "missing"
        assert prediction.uncertainty >= 0.0
        assert prediction.levels[0] == 0.0

    def test_decreasing_curve_predicts_gain(self):
        estimator = CometEstimator(
            make_classifier("lor"), label="label", config=CometConfig(step=0.01)
        )
        levels = np.array([0.0, 0.01, 0.02])
        scores = np.array([0.80, 0.78, 0.76])
        prediction = estimator.predict_cleaning(
            "f", make_error("missing"), levels, scores, np.arange(3)
        )
        assert prediction.predicted_f1 > 0.80

    def test_flat_curve_predicts_no_gain(self):
        estimator = CometEstimator(
            make_classifier("lor"), label="label", config=CometConfig(step=0.01)
        )
        levels = np.array([0.0, 0.01, 0.02])
        scores = np.array([0.80, 0.80, 0.80])
        prediction = estimator.predict_cleaning(
            "f", make_error("missing"), levels, scores, np.arange(3)
        )
        assert prediction.predicted_f1 == pytest.approx(0.80, abs=0.02)


class TestDiscrepancyAdjustment:
    def _predict(self, estimator):
        levels = np.array([0.0, 0.01, 0.02])
        scores = np.array([0.80, 0.78, 0.76])
        return estimator.predict_cleaning(
            "f", make_error("missing"), levels, scores, np.arange(3)
        )

    def test_adjustment_shifts_by_mean_discrepancy(self):
        estimator = CometEstimator(
            make_classifier("lor"), label="label", config=CometConfig(step=0.01)
        )
        first = self._predict(estimator)
        estimator.record_outcome(first, first.predicted_f1 - 0.10)
        second = self._predict(estimator)
        assert second.predicted_f1 == pytest.approx(first.predicted_f1 - 0.10, abs=1e-9)

    def test_adjustment_disabled(self):
        estimator = CometEstimator(
            make_classifier("lor"),
            label="label",
            config=CometConfig(step=0.01, adjust_predictions=False),
        )
        first = self._predict(estimator)
        estimator.record_outcome(first, 0.1)
        second = self._predict(estimator)
        assert second.predicted_f1 == pytest.approx(first.predicted_f1)

    def test_history_tracked_per_candidate(self):
        estimator = CometEstimator(make_classifier("lor"), label="label")
        prediction = self._predict(estimator)
        estimator.record_outcome(prediction, 0.9)
        assert len(estimator.discrepancy_history("f", "missing")) == 1
        assert estimator.discrepancy_history("g", "missing") == []
