"""Unit tests for the COMET Recommender (scoring, ranking, fallback)."""

import numpy as np
import pytest

from repro.cleaning import paper_cost_model, uniform_cost_model
from repro.core import CometConfig, CometRecommender
from repro.core.estimator import Prediction


def _prediction(feature, error, predicted_f1, uncertainty=0.0):
    return Prediction(
        feature=feature,
        error=error,
        predicted_f1=predicted_f1,
        uncertainty=uncertainty,
        levels=np.array([0.0]),
        scores=np.array([0.5]),
        polluted_rows=np.array([], dtype=int),
    )


class TestSelectPositives:
    def test_only_positive_gains_survive(self):
        recommender = CometRecommender()
        predictions = [
            _prediction("up", "missing", 0.60),
            _prediction("flat", "missing", 0.50),
            _prediction("down", "missing", 0.40),
        ]
        ranked = recommender.rank(predictions, baseline_f1=0.50, cost_model=uniform_cost_model())
        assert [c.feature for c in ranked] == ["up"]

    def test_empty_when_nothing_positive(self):
        recommender = CometRecommender()
        ranked = recommender.rank(
            [_prediction("f", "missing", 0.4)], 0.5, uniform_cost_model()
        )
        assert ranked == []


class TestScoring:
    def test_eq4_value(self):
        """Score = (gain − U) / C, the paper's Eq. 4 in gain form."""
        recommender = CometRecommender()
        ranked = recommender.rank(
            [_prediction("f", "missing", 0.88, uncertainty=0.02)],
            baseline_f1=0.80,
            cost_model=uniform_cost_model(),
        )
        assert ranked[0].score == pytest.approx((0.08 - 0.02) / 1.0)

    def test_cost_normalization_reorders(self):
        recommender = CometRecommender()
        cost_model = paper_cost_model()
        predictions = [
            _prediction("a", "missing", 0.60),  # gain 0.10, cost 2 (one-shot)
            _prediction("b", "scaling", 0.57),  # gain 0.07, cost 1
        ]
        ranked = recommender.rank(predictions, 0.50, cost_model)
        assert [c.feature for c in ranked] == ["b", "a"]

    def test_uncertainty_penalizes(self):
        recommender = CometRecommender()
        predictions = [
            _prediction("sure", "missing", 0.58, uncertainty=0.0),
            _prediction("unsure", "missing", 0.60, uncertainty=0.05),
        ]
        ranked = recommender.rank(predictions, 0.50, uniform_cost_model())
        assert ranked[0].feature == "sure"

    def test_uncertainty_ablation(self):
        recommender = CometRecommender(CometConfig(use_uncertainty=False))
        predictions = [
            _prediction("sure", "missing", 0.58, uncertainty=0.0),
            _prediction("unsure", "missing", 0.60, uncertainty=0.05),
        ]
        ranked = recommender.rank(predictions, 0.50, uniform_cost_model())
        assert ranked[0].feature == "unsure"

    def test_zero_cost_uses_min_cost_floor(self):
        recommender = CometRecommender(CometConfig(min_cost=0.25))
        cost_model = paper_cost_model()
        cost_model.record_step("f", "missing")  # next missing step costs 0
        ranked = recommender.rank(
            [_prediction("f", "missing", 0.6)], 0.5, cost_model
        )
        assert np.isfinite(ranked[0].score)
        assert ranked[0].score == pytest.approx(0.1 / 0.25)


class TestFallback:
    def test_no_candidates_returns_none(self):
        assert CometRecommender().fallback_candidate([]) is None

    def test_prefers_best_past_outcome(self):
        recommender = CometRecommender()
        recommender.record_outcome("a", "missing", 0.55)
        recommender.record_outcome("b", "missing", 0.70)
        pair = recommender.fallback_candidate([("a", "missing"), ("b", "missing")])
        assert pair == ("b", "missing")

    def test_without_history_takes_first(self):
        recommender = CometRecommender()
        pair = recommender.fallback_candidate([("x", "noise"), ("y", "noise")])
        assert pair == ("x", "noise")

    def test_history_keeps_best(self):
        recommender = CometRecommender()
        recommender.record_outcome("a", "missing", 0.70)
        recommender.record_outcome("a", "missing", 0.60)  # worse later run
        recommender.record_outcome("b", "missing", 0.65)
        assert recommender.fallback_candidate(
            [("a", "missing"), ("b", "missing")]
        ) == ("a", "missing")

    def test_ignores_unavailable_pairs(self):
        recommender = CometRecommender()
        recommender.record_outcome("done", "missing", 0.99)
        pair = recommender.fallback_candidate([("open", "missing")])
        assert pair == ("open", "missing")
