"""Tests for the dataset registry, the synthetic generator, and CleanML."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    CLEANML_ERRORS,
    DATASET_NAMES,
    dataset_summaries,
    load_cleanml,
    load_dataset,
    pollute,
)
from repro.datasets.synth import SyntheticSpec, synthesize


class TestRegistry:
    def test_all_seven_datasets(self):
        assert set(DATASET_NAMES) == {
            "cmc", "churn", "eeg", "s-credit", "airbnb", "credit", "titanic"
        }

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("mnist")

    def test_case_insensitive(self):
        assert load_dataset("CMC", n_rows=50).name == "cmc"

    def test_deterministic(self):
        a = load_dataset("eeg", n_rows=100)
        b = load_dataset("eeg", n_rows=100)
        assert a.frame == b.frame

    def test_rng_perturbs_data(self):
        a = load_dataset("eeg", n_rows=100, rng=1)
        b = load_dataset("eeg", n_rows=100, rng=2)
        assert a.frame != b.frame

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_schema_matches_table1(self, name):
        summary = {r["name"]: r for r in dataset_summaries()}[name]
        dataset = load_dataset(name, n_rows=120)
        frame = dataset.frame
        assert len(frame.categorical_columns()) == summary["n_categorical"]
        numeric_features = [
            f for f in dataset.feature_names if frame[f].is_numeric
        ]
        assert len(numeric_features) == summary["n_numerical"]
        y = frame.label_array("label")
        assert len(np.unique(y)) == summary["n_classes"]

    def test_default_rows_match_table1(self):
        # Only check the small ones to keep the test fast.
        assert load_dataset("titanic").frame.n_rows == 891
        assert load_dataset("s-credit").frame.n_rows == 1000

    def test_split_stratified_and_disjoint(self):
        dataset = load_dataset("churn", n_rows=200)
        train, test = dataset.split(test_size=0.25, rng=0)
        assert train.n_rows + test.n_rows == 200
        y_all = dataset.frame.label_array("label")
        y_test = test.label_array("label")
        # Minority share roughly preserved.
        assert abs(np.mean(y_test) - np.mean(y_all)) < 0.1


class TestSummaries:
    def test_table1_values(self):
        rows = {r["name"]: r for r in dataset_summaries()}
        assert rows["cmc"]["n_rows"] == 1473
        assert rows["eeg"]["n_numerical"] == 14
        assert rows["airbnb"]["n_rows"] == 26288
        assert rows["cmc"]["n_classes"] == 3


class TestSyntheticGenerator:
    def test_signal_learnable(self):
        from repro.ml import TabularModel, make_classifier

        spec = SyntheticSpec(n_rows=400, n_numeric=4, n_categorical=2, label_noise=0.4)
        frame = synthesize(spec, rng=0)
        model = TabularModel(make_classifier("lor"), label="label")
        f1 = model.fit_score(frame.take(range(300)), frame.take(range(300, 400)))
        assert f1 > 0.7

    def test_class_balance_calibrated(self):
        spec = SyntheticSpec(
            n_rows=2000, n_numeric=3, n_categorical=0, class_balance=(0.9, 0.1)
        )
        y = synthesize(spec, rng=0).label_array("label")
        assert abs(np.mean(y) - 0.1) < 0.04

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=5, n_numeric=1, n_categorical=0)
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=100, n_numeric=0, n_categorical=0)
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=100, n_numeric=1, n_categorical=0, n_classes=1)
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=100, n_numeric=1, n_categorical=0, label_noise=0.0)
        with pytest.raises(ValueError):
            SyntheticSpec(
                n_rows=100, n_numeric=1, n_categorical=0, class_balance=(1.0,)
            )

    def test_categorical_vocab_per_feature(self):
        spec = SyntheticSpec(
            n_rows=300, n_numeric=0, n_categorical=2, cat_cardinality=(3, 5)
        )
        frame = synthesize(spec, rng=0)
        assert len(frame["cat_0"].categories()) == 3
        assert len(frame["cat_1"].categories()) == 5

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_no_missing_in_clean_data(self, seed):
        spec = SyntheticSpec(n_rows=50, n_numeric=2, n_categorical=1)
        frame = synthesize(spec, rng=seed)
        for column in frame:
            assert column.n_missing == 0


class TestPollute:
    def test_produces_ground_truth_pair(self):
        dataset = load_dataset("cmc", n_rows=150)
        polluted = pollute(dataset, error_types=["missing"], rng=0)
        assert polluted.dirty_train.total() > 0
        assert polluted.clean_train != polluted.train

    def test_deterministic_given_rng(self):
        dataset = load_dataset("cmc", n_rows=150)
        a = pollute(dataset, error_types=["missing"], rng=5)
        b = pollute(dataset, error_types=["missing"], rng=5)
        assert a.train == b.train


class TestCleanML:
    def test_error_assignment(self):
        assert CLEANML_ERRORS == {
            "airbnb": "scaling", "credit": "scaling", "titanic": "missing"
        }

    @pytest.mark.parametrize("name", sorted(CLEANML_ERRORS))
    def test_loads_with_characteristic_error(self, name):
        polluted = load_cleanml(name, n_rows=150, rng=0)
        error = CLEANML_ERRORS[name]
        pairs = polluted.dirty_train.pairs()
        assert pairs, "CleanML data must be dirty"
        assert all(e == error for __, e in pairs)

    def test_non_cleanml_name_raises(self):
        with pytest.raises(ValueError, match="not a CleanML dataset"):
            load_cleanml("cmc")

    def test_dirt_pattern_fixed_across_splits(self):
        """The affected features are a dataset property, not split noise."""
        a = load_cleanml("titanic", n_rows=150, rng=0)
        b = load_cleanml("titanic", n_rows=150, rng=1)
        assert {f for f, _ in a.dirty_train.pairs()} == {
            f for f, _ in b.dirty_train.pairs()
        }
