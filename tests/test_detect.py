"""Tests for the detection & repair substrate and the algorithmic Cleaner."""

import numpy as np
import pytest

from repro import Comet, CometConfig, load_dataset, pollute
from repro.detect import (
    AlgorithmicCleaner,
    CategoricalShiftDetector,
    ConditionalModeRepairer,
    MeanRepairer,
    MedianRepairer,
    MissingValueDetector,
    ModeRepairer,
    NoiseDetector,
    ScalingDetector,
    detector_for,
    discover_fds,
    repairer_for,
)
from repro.errors import GaussianNoise, MissingValues, PrePollution, Scaling
from repro.frame import DataFrame


def _frame_with(error, level=0.15, n=200, seed=0):
    rng = np.random.default_rng(seed)
    clean = DataFrame(
        {
            "num": rng.normal(50.0, 5.0, size=n),
            "cat": rng.choice(["a", "b", "c"], size=n),
            "label": rng.integers(0, 2, size=n),
        }
    )
    pre = PrePollution([error], rng=seed)
    dataset = pre.apply(clean, clean.copy(), label="label",
                        levels={"num": level if not error.name == "categorical" else 0.0,
                                "cat": level if error.name == "categorical" else 0.0})
    return dataset


class TestFdDiscovery:
    def test_exact_fd_found(self):
        # city → country is an exact FD here.
        frame = DataFrame(
            {
                "city": ["paris", "lyon", "berlin", "paris", "berlin"] * 4,
                "country": ["fr", "fr", "de", "fr", "de"] * 4,
            }
        )
        fds = discover_fds(frame, min_confidence=0.99, min_group_size=2)
        assert any(fd.lhs == "city" and fd.rhs == "country" for fd in fds)

    def test_violations_located(self):
        rows = ["paris", "lyon", "berlin", "paris", "berlin"] * 4
        countries = ["fr", "fr", "de", "fr", "de"] * 4
        countries[2] = "fr"  # one shifted cell
        frame = DataFrame({"city": rows, "country": countries})
        fds = discover_fds(frame, min_confidence=0.9, min_group_size=2)
        fd = next(fd for fd in fds if fd.lhs == "city" and fd.rhs == "country")
        assert 2 in fd.violations(frame).tolist()

    def test_independent_columns_yield_nothing(self):
        rng = np.random.default_rng(0)
        frame = DataFrame(
            {
                "a": rng.choice(["x", "y", "z"], size=300),
                "b": rng.choice(["p", "q", "r"], size=300),
            }
        )
        assert discover_fds(frame, min_confidence=0.9) == []

    def test_invalid_confidence(self):
        frame = DataFrame({"a": ["x"], "b": ["y"]})
        with pytest.raises(ValueError):
            discover_fds(frame, min_confidence=0.0)


class TestDetectors:
    def test_missing_detector_exact(self):
        dataset = _frame_with(MissingValues())
        truth = set(dataset.dirty_train.rows("num", "missing").tolist())
        detection = MissingValueDetector().detect(dataset.train, "num")
        assert set(detection.rows.tolist()) == truth

    def test_scaling_detector_high_recall(self):
        dataset = _frame_with(Scaling())
        truth = set(dataset.dirty_train.rows("num", "scaling").tolist())
        detection = ScalingDetector().detect(dataset.train, "num")
        found = set(detection.rows.tolist())
        assert len(found & truth) / len(truth) > 0.9

    def test_noise_detector_finds_strong_outliers(self):
        dataset = _frame_with(GaussianNoise(sigma_min=5.0, sigma_max=5.0))
        truth = set(dataset.dirty_train.rows("num", "noise").tolist())
        detection = NoiseDetector().detect(dataset.train, "num")
        found = set(detection.rows.tolist())
        # Gaussian noise overlaps the clean distribution; strong outliers
        # must still be mostly genuine.
        assert found, "detector must flag something"
        assert len(found & truth) / len(found) > 0.6

    def test_detection_top_orders_by_score(self):
        dataset = _frame_with(Scaling())
        detection = ScalingDetector().detect(dataset.train, "num")
        assert (np.diff(detection.scores) <= 1e-12).all()
        assert len(detection.top(3)) <= 3

    def test_detector_for_unknown(self):
        with pytest.raises(ValueError, match="no detector"):
            detector_for("duplicates")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ScalingDetector(threshold_decades=0.0)
        with pytest.raises(ValueError):
            NoiseDetector(z_threshold=0.0)

    def test_categorical_detector_uses_fds(self):
        rng = np.random.default_rng(1)
        n = 300
        group = rng.choice(["g1", "g2", "g3"], size=n)
        dependent = np.array(["d_" + g for g in group], dtype=object)
        frame = DataFrame({"dep": dependent, "group": group})
        # Shift 10 cells of "dep".
        shifted = rng.choice(n, size=10, replace=False)
        col = frame["dep"]
        col.set_values(shifted, ["d_g1" if col.values[i] != "d_g1" else "d_g2" for i in shifted])
        detection = CategoricalShiftDetector().detect(frame, "dep")
        found = set(detection.rows.tolist())
        assert len(found & set(shifted.tolist())) / len(shifted) > 0.8


class TestRepairers:
    def test_mean_repairer_uses_clean_bulk(self):
        frame = DataFrame({"x": [1.0, 2.0, 3.0, 1000.0]})
        values = MeanRepairer().repair(frame, "x", np.array([3]))
        assert values == [pytest.approx(2.0)]

    def test_median_repairer(self):
        frame = DataFrame({"x": [1.0, 2.0, 9.0, 1000.0]})
        values = MedianRepairer().repair(frame, "x", np.array([3]))
        assert values == [pytest.approx(2.0)]

    def test_mode_repairer(self):
        frame = DataFrame({"c": ["a", "a", "b", "z"]})
        values = ModeRepairer().repair(frame, "c", np.array([3]))
        assert values == ["a"]

    def test_conditional_mode_uses_correlated_column(self):
        frame = DataFrame(
            {
                "dep": ["d1", "d1", "d2", "d2", "WRONG"],
                "group": ["g1", "g1", "g2", "g2", "g2"],
            }
        )
        values = ConditionalModeRepairer(condition_on="group").repair(
            frame, "dep", np.array([4])
        )
        assert values == ["d2"]

    def test_kind_mismatch_raises(self):
        frame = DataFrame({"x": [1.0], "c": ["a"]})
        with pytest.raises(ValueError):
            MeanRepairer().repair(frame, "c", np.array([0]))
        with pytest.raises(ValueError):
            ModeRepairer().repair(frame, "x", np.array([0]))

    def test_repairer_for_mapping(self):
        assert isinstance(repairer_for("missing", True), MeanRepairer)
        assert isinstance(repairer_for("missing", False), ModeRepairer)
        assert isinstance(repairer_for("scaling", True), MedianRepairer)
        assert isinstance(repairer_for("categorical", False), ConditionalModeRepairer)
        with pytest.raises(ValueError):
            repairer_for("duplicates", True)

    def test_apply_returns_copy(self):
        frame = DataFrame({"x": [1.0, 2.0, 1000.0]})
        repaired = MedianRepairer().apply(frame, "x", np.array([2]))
        assert frame["x"].values[2] == 1000.0
        assert repaired["x"].values[2] == pytest.approx(1.5)


class TestAlgorithmicCleaner:
    def test_clean_step_repairs_detected_cells(self):
        dataset = _frame_with(MissingValues(), level=0.2)
        cleaner = AlgorithmicCleaner(step=0.05, rng=0)
        before = dataset.train["num"].n_missing
        action = cleaner.clean_step(dataset, "num", "missing")
        assert dataset.train["num"].n_missing == before - len(action.train_rows)
        assert len(action.train_rows) == 10  # 5% of 200

    def test_revert_roundtrip(self):
        dataset = _frame_with(MissingValues(), level=0.2)
        cleaner = AlgorithmicCleaner(step=0.05, rng=0)
        snapshot = dataset.train["num"].copy()
        dirty = dataset.dirty_train.dirty_count("num")
        action = cleaner.clean_step(dataset, "num", "missing")
        cleaner.revert(dataset, action)
        assert dataset.train["num"] == snapshot
        assert dataset.dirty_train.dirty_count("num") == dirty

    def test_dirty_bookkeeping_shrinks(self):
        dataset = _frame_with(Scaling(), level=0.2)
        cleaner = AlgorithmicCleaner(step=0.10, rng=0)
        before = dataset.dirty_train.dirty_count("num", "scaling")
        cleaner.clean_step(dataset, "num", "scaling")
        assert dataset.dirty_train.dirty_count("num", "scaling") < before

    def test_comet_with_algorithmic_cleaner(self):
        dataset = load_dataset("cmc", n_rows=200, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=6)
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=5.0,
            config=CometConfig(step=0.03),
            rng=0,
            cleaner=AlgorithmicCleaner(step=0.03, rng=0),
        )
        trace = comet.run()
        assert trace.records
        assert comet.dataset.dirty_train.total() < polluted.dirty_train.total()

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            AlgorithmicCleaner(step=0.0)
