"""Tests for the distributed execution backend (``repro.runtime``).

Covers the shared wire framing, registry integration (``"distributed"``
is exempt from the jobs<=1 serial fallback), ordered ``map``/``submit``
semantics over real sockets, the fault-tolerance paths (worker death
mid-task, heartbeat eviction of a hung worker, retry exhaustion, the
no-worker inline fallback), and the headline acceptance pin: a full E1
sweep trace is bit-identical between ``backend="serial"`` and
``backend="distributed"`` with two workers — including under induced
worker death.  Subprocess topologies (auto-spawned local workers, the
``repro worker --listen`` inversion) are exercised end-to-end through
the real CLI.
"""

import io
import json
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core import Comet, CometConfig
from repro.datasets import load_dataset, pollute
from repro.runtime import (
    DistributedBackend,
    RemoteTaskError,
    SerialBackend,
    WorkerLostError,
    available_backends,
    listen_worker,
    make_backend,
    worker_serve,
)
from repro.runtime.distributed import CONNECT_ENV
from repro.runtime.wire import (
    FrameError,
    JSONLineConnection,
    encode_frame,
    format_address,
    parse_address,
    pickle_to_text,
    read_frame,
    text_to_pickle,
)
from repro.service import CometService


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _slow_square(x):
    time.sleep(0.02)
    return x * x


# ---------------------------------------------------------------------- #
# harness: in-process worker threads over real loopback sockets
# ---------------------------------------------------------------------- #
class WorkerHarness:
    """Drive a backend with worker *threads* speaking the real protocol.

    The worker loop is byte-for-byte the one ``repro worker`` runs; only
    the process boundary is elided, which keeps the fault-injection
    hooks (`_fail_after_tasks`, silence) deterministic and the tests
    fast.  Subprocess topologies are covered separately below.
    """

    def __init__(self, backend: DistributedBackend) -> None:
        self.backend = backend
        backend.start()
        self.threads: list[threading.Thread] = []

    def add(self, worker_id: str = "w", **hooks) -> None:
        host, port = self.backend.address
        sock = socket.create_connection((host, port), timeout=30)
        thread = threading.Thread(
            target=self._serve,
            args=(JSONLineConnection(sock),),
            kwargs={"worker_id": worker_id, **hooks},
            daemon=True,
        )
        thread.start()
        self.threads.append(thread)

    @staticmethod
    def _serve(conn, **kwargs) -> None:
        try:
            worker_serve(conn, **kwargs)
        except (ConnectionError, FrameError, OSError):
            pass  # the coordinator tearing down mid-serve is fine

    def add_hung(self) -> None:
        """Register a worker that goes silent: no heartbeats, no results."""
        host, port = self.backend.address
        sock = socket.create_connection((host, port), timeout=30)
        conn = JSONLineConnection(sock)
        conn.send({"op": "hello", "worker": "hung", "pid": 0, "protocol": 1})
        assert conn.recv()["op"] == "welcome"
        self._keepalive = (sock, conn)  # keep the socket from being GC-closed


def _backend(jobs: int = 2, **kwargs) -> DistributedBackend:
    kwargs.setdefault("spawn_workers", 0)
    kwargs.setdefault("heartbeat", 0.2)
    kwargs.setdefault("register_timeout", 60.0)
    return DistributedBackend(jobs, **kwargs)


@pytest.fixture
def harness():
    backend = _backend()
    h = WorkerHarness(backend)
    yield h
    backend.shutdown()


# ---------------------------------------------------------------------- #
# wire framing
# ---------------------------------------------------------------------- #
class TestWire:
    def test_frame_roundtrip(self):
        frame = {"op": "task", "id": 3, "payload": "aGk="}
        assert read_frame(io.BytesIO(encode_frame(frame))) == frame

    def test_eof_returns_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_oversized_frame_raises(self):
        with pytest.raises(FrameError, match="exceeds"):
            read_frame(io.BytesIO(b'{"x": "' + b"a" * 64 + b'"}\n'), limit=32)

    def test_truncated_frame_raises(self):
        with pytest.raises(FrameError, match="truncated"):
            read_frame(io.BytesIO(b'{"op": "hel'))

    def test_non_object_frame_raises(self):
        with pytest.raises(FrameError, match="JSON object"):
            read_frame(io.BytesIO(b"[1, 2]\n"))

    def test_invalid_json_raises(self):
        with pytest.raises(FrameError, match="invalid JSON"):
            read_frame(io.BytesIO(b"{nope}\n"))

    def test_pickle_text_roundtrip(self):
        payload = {"fn": _square, "args": (3,), "blob": b"\x00\xff"}
        clone = text_to_pickle(pickle_to_text(payload))
        assert clone["args"] == (3,) and clone["blob"] == b"\x00\xff"
        assert clone["fn"](4) == 16
        # the text must survive a JSON frame untouched
        assert json.loads(json.dumps(pickle_to_text(payload)))

    def test_parse_address(self):
        assert parse_address("10.0.0.7:9000") == ("10.0.0.7", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert format_address(("h", 1)) == "h:1"
        with pytest.raises(ValueError):
            parse_address("no-port")


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestDistributedRegistry:
    def test_registered(self):
        assert "distributed" in available_backends()

    def test_make_backend_by_name(self):
        backend = make_backend("distributed", jobs=2)
        assert isinstance(backend, DistributedBackend)
        assert backend.workers == 2

    def test_single_worker_stays_distributed(self):
        # One *remote* worker is still remote execution — the jobs<=1
        # serial fallback of the in-process pools must not apply.
        backend = make_backend("distributed", jobs=1)
        assert isinstance(backend, DistributedBackend)

    def test_pools_still_fall_back_to_serial(self):
        for name in ("serial", "thread", "process"):
            assert isinstance(make_backend(name, jobs=1), SerialBackend)

    def test_connect_env_parsed(self, monkeypatch):
        monkeypatch.setenv(CONNECT_ENV, "10.0.0.7:9000, 10.0.0.8:9001")
        backend = make_backend("distributed", jobs=2)
        assert backend.connect == [("10.0.0.7", 9000), ("10.0.0.8", 9001)]
        assert backend.spawn_workers == 0  # explicit workers: nothing spawned

    def test_no_env_spawns_locally(self, monkeypatch):
        monkeypatch.delenv(CONNECT_ENV, raising=False)
        backend = make_backend("distributed", jobs=3)
        assert backend.connect == [] and backend.spawn_workers == 3


# ---------------------------------------------------------------------- #
# map/submit semantics over real sockets
# ---------------------------------------------------------------------- #
class TestMapSemantics:
    def test_map_preserves_task_order(self, harness):
        harness.add("a")
        harness.add("b")
        assert harness.backend.wait_for_workers(2, timeout=30) == 2
        assert harness.backend.map(_slow_square, range(20)) == [
            x * x for x in range(20)
        ]

    def test_empty_task_list(self, harness):
        assert harness.backend.map(_square, []) == []

    def test_submit_returns_future(self, harness):
        harness.add("a")
        assert harness.backend.submit(_square, 7).result(timeout=30) == 49

    def test_remote_exception_carries_traceback(self, harness):
        harness.add("a")
        with pytest.raises(RemoteTaskError, match="boom 3") as excinfo:
            harness.backend.map(_boom, [3])
        assert excinfo.value.error_type == "ValueError"
        assert "remote traceback" in str(excinfo.value)

    def test_failed_task_does_not_poison_siblings(self, harness):
        harness.add("a")
        harness.add("b")
        futures = [
            harness.backend.submit(_boom if i == 2 else _square, i)
            for i in range(5)
        ]
        results = []
        for i, future in enumerate(futures):
            if i == 2:
                with pytest.raises(RemoteTaskError):
                    future.result(timeout=30)
            else:
                results.append(future.result(timeout=30))
        assert results == [0, 1, 9, 16]

    def test_concurrent_maps_interleave_safely(self, harness):
        # The service topology: many sessions share one backend and map
        # concurrently from scheduler threads.
        harness.add("a")
        harness.add("b")
        outcomes = {}

        def one(key, offset):
            outcomes[key] = harness.backend.map(
                _slow_square, range(offset, offset + 10)
            )

        threads = [
            threading.Thread(target=one, args=(k, k * 100)) for k in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for k in range(3):
            assert outcomes[k] == [x * x for x in range(k * 100, k * 100 + 10)]


# ---------------------------------------------------------------------- #
# fault tolerance
# ---------------------------------------------------------------------- #
class TestFaultTolerance:
    def test_worker_death_requeues_task(self, harness):
        harness.add("dies", _fail_after_tasks=1)
        harness.add("lives")
        assert harness.backend.wait_for_workers(2, timeout=30) == 2
        assert harness.backend.map(_slow_square, range(12)) == [
            x * x for x in range(12)
        ]
        stats = harness.backend.stats()
        assert stats["requeued"] >= 1 and stats["evicted"] >= 1

    def test_hung_worker_evicted_by_heartbeat_timeout(self):
        backend = _backend(heartbeat=0.1, heartbeat_timeout=0.5)
        harness = WorkerHarness(backend)
        try:
            harness.add_hung()
            harness.add("healthy")
            assert backend.wait_for_workers(2, timeout=30) == 2
            start = time.monotonic()
            assert backend.map(_slow_square, range(8)) == [
                x * x for x in range(8)
            ]
            assert time.monotonic() - start < 30
            stats = backend.stats()
            assert stats["evicted"] >= 1
            assert all(w["id"].startswith("healthy") for w in backend.worker_info())
        finally:
            backend.shutdown()

    def test_retry_exhaustion_raises_worker_lost(self):
        backend = _backend(
            jobs=1, max_task_retries=0, inline_fallback=False
        )
        harness = WorkerHarness(backend)
        try:
            harness.add("dies", _fail_after_tasks=0)
            assert backend.wait_for_workers(1, timeout=30) == 1
            with pytest.raises(WorkerLostError):
                backend.map(_square, [1])
        finally:
            backend.shutdown()

    def test_inline_fallback_when_no_workers(self):
        backend = _backend(register_timeout=0.2)
        try:
            with pytest.warns(RuntimeWarning, match="running queued tasks inline"):
                assert backend.map(_square, range(5)) == [
                    x * x for x in range(5)
                ]
            assert backend.stats()["inline"] == 5
        finally:
            backend.shutdown()

    def test_restart_after_shutdown(self):
        backend = _backend()
        harness = WorkerHarness(backend)
        harness.add("a")
        assert backend.map(_square, [2]) == [4]
        backend.shutdown()
        harness2 = WorkerHarness(backend)  # start() again: fresh listener
        harness2.add("b")
        assert backend.map(_square, [3]) == [9]
        backend.shutdown()


# ---------------------------------------------------------------------- #
# the acceptance pin: bit-identical E1 sweep traces
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def polluted():
    dataset = load_dataset("eeg", n_rows=120, rng=0)
    return pollute(dataset, error_types=["missing"], rng=2)


def _trace(polluted, backend, jobs=1):
    with Comet(
        polluted,
        algorithm="lor",
        error_types=["missing"],
        budget=3.0,
        config=CometConfig(step=0.05),
        rng=123,
        backend=backend,
        jobs=jobs,
    ) as comet:
        return comet.run()


class TestTraceEquality:
    def test_distributed_trace_bit_identical_to_serial(self, polluted):
        serial = _trace(polluted, "serial")
        backend = _backend()
        harness = WorkerHarness(backend)
        harness.add("a")
        harness.add("b")
        assert backend.wait_for_workers(2, timeout=30) == 2
        try:
            distributed = _trace(polluted, backend, jobs=2)
        finally:
            backend.shutdown()
        assert serial == distributed

    def test_trace_bit_identical_under_worker_death(self, polluted):
        serial = _trace(polluted, "serial")
        backend = _backend()
        harness = WorkerHarness(backend)
        harness.add("doomed", _fail_after_tasks=3)
        harness.add("survivor")
        assert backend.wait_for_workers(2, timeout=30) == 2
        try:
            distributed = _trace(polluted, backend, jobs=2)
            stats = backend.stats()
        finally:
            backend.shutdown()
        assert stats["evicted"] >= 1 and stats["requeued"] >= 1
        assert serial == distributed


# ---------------------------------------------------------------------- #
# subprocess topologies (the real CLI worker)
# ---------------------------------------------------------------------- #
class TestSubprocessWorkers:
    def test_spawned_local_workers_run_the_sweep(self, polluted):
        backend = DistributedBackend(jobs=2)
        backend.start()
        if backend.wait_for_workers(2, timeout=90) < 2:
            backend.shutdown()
            pytest.skip("cannot spawn local worker subprocesses here")
        try:
            distributed = _trace(polluted, backend, jobs=2)
            info = backend.worker_info()
        finally:
            backend.shutdown()
        assert distributed == _trace(polluted, "serial")
        assert all(w["pid"] not in (0, None) for w in info)

    def test_listen_topology_roundtrip(self):
        # Inverted topology: the worker owns the port, the coordinator
        # dials out — in-process here; the CLI flag is exercised below.
        address = {}
        ready = threading.Event()

        def _capture(bound):
            address["addr"] = bound
            ready.set()

        thread = threading.Thread(
            target=listen_worker,
            kwargs={
                "listen": ("127.0.0.1", 0),
                "worker_id": "listener",
                "once": True,
                "ready": _capture,
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=30)
        backend = _backend(jobs=1, connect=[address["addr"]])
        try:
            backend.start()
            assert backend.wait_for_workers(1, timeout=30) == 1
            assert backend.map(_square, range(6)) == [x * x for x in range(6)]
        finally:
            backend.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_cli_listen_worker_serves_builtin_tasks(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0", "--once", "--id", "cli-listener"],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("worker listening on ")
            address = parse_address(line.rsplit(" ", 1)[-1].strip())
            backend = _backend(jobs=1, connect=[address])
            try:
                backend.start()
                assert backend.wait_for_workers(1, timeout=60) == 1
                # builtins pickle by name, so they resolve in any process
                assert backend.map(abs, [-3, 4, -5]) == [3, 4, 5]
            finally:
                backend.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


# ---------------------------------------------------------------------- #
# service observability (status verb)
# ---------------------------------------------------------------------- #
class TestStatusObservability:
    def test_status_exposes_caches_and_scheduler(self):
        with CometService() as service:
            response = service.handle({"action": "status"})
        assert response["ok"]
        result = response["result"]
        assert {"hits", "misses"} <= set(result["fd_cache"])
        assert {"hits", "misses", "transform_hits"} <= set(result["fit_cache"])
        assert result["scheduler"]["workers"] == 4
        assert result["scheduler"]["jobs_in_flight"] == 0

    def test_status_exposes_distributed_backend_stats(self):
        backend = _backend()
        with CometService(backend=backend) as service:
            response = service.handle({"action": "status"})
        assert response["ok"]
        stats = response["result"]["backend_stats"]
        assert stats["backend"] == "distributed"
        assert {"pending", "inflight", "live_workers"} <= set(stats)


class TestWorkerCLIParser:
    def test_worker_connect_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["worker", "--connect", "10.0.0.7:9000", "--id", "w1"]
        )
        assert args.command == "worker"
        assert args.connect == "10.0.0.7:9000"
        assert args.worker_id == "w1"

    def test_worker_requires_a_topology(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_topologies_exclusive(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["worker", "--connect", "a:1", "--listen", "b:2"]
            )
