"""Unit and property tests for the error-injection substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    CategoricalShift,
    DirtyCells,
    GaussianNoise,
    MissingValues,
    Polluter,
    PrePollution,
    Scaling,
    error_registry,
    make_error,
)
from repro.frame import Column, DataFrame


def _frame(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return DataFrame(
        {
            "num": rng.normal(10.0, 2.0, size=n),
            "num2": rng.uniform(0, 1, size=n),
            "cat": rng.choice(["a", "b", "c"], size=n),
            "label": rng.integers(0, 2, size=n),
        }
    )


class TestRegistry:
    def test_all_five_registered(self):
        assert set(error_registry()) == {
            "missing", "noise", "categorical", "scaling", "inconsistent"
        }

    def test_make_error(self):
        assert isinstance(make_error("missing"), MissingValues)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown error type"):
            make_error("duplicates")


class TestMissingValues:
    def test_applies_to_everything(self):
        frame = _frame()
        err = MissingValues()
        assert err.applies_to(frame["num"]) and err.applies_to(frame["cat"])

    def test_numeric_cells_become_nan(self):
        frame = _frame()
        err = MissingValues()
        values = err.corrupt(frame["num"], np.array([0, 1]), np.random.default_rng(0))
        assert all(np.isnan(v) for v in values)

    def test_categorical_cells_become_none(self):
        frame = _frame()
        err = MissingValues()
        values = err.corrupt(frame["cat"], np.array([0]), np.random.default_rng(0))
        assert values == [None]


class TestGaussianNoise:
    def test_applies_only_to_numeric(self):
        frame = _frame()
        err = GaussianNoise()
        assert err.applies_to(frame["num"]) and not err.applies_to(frame["cat"])

    def test_values_change_and_stay_finite(self):
        frame = _frame()
        rows = np.arange(20)
        values = np.array(
            GaussianNoise().corrupt(frame["num"], rows, np.random.default_rng(0))
        )
        assert np.isfinite(values).all()
        assert not np.allclose(values, frame["num"].values[rows])

    def test_noise_scales_with_sigma(self):
        frame = _frame()
        rows = np.arange(50)
        small = np.array(
            GaussianNoise(0.1, 0.1).corrupt(frame["num"], rows, np.random.default_rng(1))
        )
        large = np.array(
            GaussianNoise(50.0, 50.0).corrupt(frame["num"], rows, np.random.default_rng(1))
        )
        base = frame["num"].values[rows]
        assert np.abs(large - base).mean() > np.abs(small - base).mean()

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            GaussianNoise(0.0, 1.0)
        with pytest.raises(ValueError):
            GaussianNoise(2.0, 1.0)

    def test_missing_cells_get_finite_noise(self):
        col = Column("x", [1.0, np.nan, 3.0])
        values = GaussianNoise().corrupt(col, np.array([1]), np.random.default_rng(0))
        assert np.isfinite(values[0])


class TestCategoricalShift:
    def test_applies_only_to_multicategory(self):
        frame = _frame()
        err = CategoricalShift()
        assert err.applies_to(frame["cat"])
        assert not err.applies_to(frame["num"])
        single = Column("s", ["x"] * 5)
        assert not err.applies_to(single)

    def test_every_value_actually_shifts(self):
        frame = _frame()
        rows = np.arange(30)
        values = CategoricalShift().corrupt(frame["cat"], rows, np.random.default_rng(0))
        original = frame["cat"].values[rows].tolist()
        assert all(v != o for v, o in zip(values, original))

    def test_replacements_are_known_categories(self):
        frame = _frame()
        values = CategoricalShift().corrupt(
            frame["cat"], np.arange(10), np.random.default_rng(0)
        )
        assert set(values) <= {"a", "b", "c"}


class TestScaling:
    def test_applies_only_to_numeric(self):
        frame = _frame()
        assert Scaling().applies_to(frame["num"])
        assert not Scaling().applies_to(frame["cat"])

    def test_factor_applied(self):
        frame = _frame()
        rows = np.arange(10)
        values = np.array(Scaling(factors=(10.0,)).corrupt(frame["num"], rows, np.random.default_rng(0)))
        assert np.allclose(values, frame["num"].values[rows] * 10.0)

    def test_factor_among_allowed(self):
        frame = _frame()
        values = np.array(Scaling().corrupt(frame["num"], np.array([0]), np.random.default_rng(3)))
        ratio = values[0] / frame["num"].values[0]
        assert round(ratio) in (10, 100, 1000)

    def test_invalid_factors_raise(self):
        with pytest.raises(ValueError):
            Scaling(factors=())
        with pytest.raises(ValueError):
            Scaling(factors=(0.0,))


class TestPolluter:
    def test_pollute_once_touches_step_fraction(self):
        frame = _frame(n=200)
        polluter = Polluter(MissingValues(), step=0.05, rng=0)
        polluted, rows = polluter.pollute_once(frame, "num")
        assert len(rows) == 10
        assert polluted["num"].n_missing == 10
        assert frame["num"].n_missing == 0  # original untouched

    def test_incremental_states_cumulative(self):
        frame = _frame(n=100)
        polluter = Polluter(MissingValues(), step=0.03, rng=0)
        trajectories = polluter.incremental_states(frame, "num", n_steps=3)
        states = trajectories[0]
        counts = [s.frame["num"].n_missing for s in states]
        assert counts == [3, 6, 9]
        assert [round(s.level, 4) for s in states] == [0.03, 0.06, 0.09]

    def test_multiple_combinations_differ(self):
        frame = _frame(n=100)
        polluter = Polluter(MissingValues(), step=0.05, n_combinations=2, rng=0)
        a, b = polluter.incremental_states(frame, "num", n_steps=1)
        assert set(a[0].rows.tolist()) != set(b[0].rows.tolist())

    def test_inapplicable_error_raises(self):
        frame = _frame()
        polluter = Polluter(CategoricalShift(), rng=0)
        with pytest.raises(ValueError, match="does not apply"):
            polluter.pollute_once(frame, "num")

    def test_invalid_step_raises(self):
        with pytest.raises(ValueError):
            Polluter(MissingValues(), step=0.0)

    def test_invalid_combinations_raise(self):
        with pytest.raises(ValueError):
            Polluter(MissingValues(), n_combinations=0)

    def test_cells_per_step_minimum_one(self):
        frame = _frame(n=10)
        polluter = Polluter(MissingValues(), step=0.01)
        assert polluter.cells_per_step(frame) == 1


class TestDirtyCells:
    def test_add_and_query(self):
        cells = DirtyCells()
        cells.add("f", "missing", [1, 2, 3])
        assert cells.rows("f", "missing").tolist() == [1, 2, 3]
        assert cells.dirty_count("f") == 3
        assert cells.features() == ["f"]
        assert cells.error_types("f") == ["missing"]

    def test_add_deduplicates(self):
        cells = DirtyCells()
        cells.add("f", "noise", [1, 1, 2])
        assert cells.dirty_count("f", "noise") == 2

    def test_remove(self):
        cells = DirtyCells()
        cells.add("f", "missing", [1, 2])
        cells.remove("f", "missing", [1])
        assert cells.rows("f", "missing").tolist() == [2]
        cells.remove("f", "missing", [2])
        assert cells.is_clean("f")
        assert cells.features() == []

    def test_is_clean_global(self):
        cells = DirtyCells()
        assert cells.is_clean()
        cells.add("g", "scaling", [0])
        assert not cells.is_clean()

    def test_copy_independent(self):
        cells = DirtyCells()
        cells.add("f", "missing", [1])
        dup = cells.copy()
        dup.remove("f", "missing", [1])
        assert cells.dirty_count("f") == 1

    def test_pairs(self):
        cells = DirtyCells()
        cells.add("b", "noise", [0])
        cells.add("a", "missing", [0])
        assert cells.pairs() == [("a", "missing"), ("b", "noise")]


class TestPrePollution:
    def test_levels_respected(self):
        train = _frame(n=200, seed=1)
        test = _frame(n=100, seed=2)
        pre = PrePollution(MissingValues(), rng=0)
        dataset = pre.apply(train, test, label="label", levels={"num": 0.10, "num2": 0.0, "cat": 0.0})
        assert dataset.train["num"].n_missing == 20
        assert dataset.test["num"].n_missing == 10
        assert dataset.dirty_train.dirty_count("num", "missing") == 20
        assert dataset.dirty_test.dirty_count("num", "missing") == 10

    def test_clean_ground_truth_preserved(self):
        train = _frame(n=100, seed=3)
        test = _frame(n=50, seed=4)
        pre = PrePollution(MissingValues(), rng=0)
        dataset = pre.apply(train, test, label="label")
        assert dataset.clean_train == train
        assert dataset.clean_test == test

    def test_label_never_polluted(self):
        train = _frame(n=100, seed=5)
        pre = PrePollution([MissingValues(), GaussianNoise()], rng=0)
        dataset = pre.apply(train, _frame(n=50, seed=6), label="label")
        assert dataset.train["label"] == train["label"]
        assert "label" not in dataset.dirty_train.features()

    def test_sampled_levels_are_step_multiples(self):
        pre = PrePollution(MissingValues(), step=0.01, rng=0)
        levels = pre.sample_levels(_frame(), label="label")
        for level in levels.values():
            assert round(level * 100) == pytest.approx(level * 100)

    def test_inapplicable_feature_gets_zero_level(self):
        pre = PrePollution(CategoricalShift(), rng=0)
        levels = pre.sample_levels(_frame(), label="label")
        assert levels["num"] == 0.0
        assert levels["num2"] == 0.0

    def test_multi_error_records_multiple_types(self):
        train = _frame(n=300, seed=7)
        pre = PrePollution([MissingValues(), GaussianNoise(), Scaling()], rng=1)
        dataset = pre.apply(
            train, _frame(n=100, seed=8), label="label", levels={"num": 0.3, "num2": 0.0, "cat": 0.0}
        )
        assert len(dataset.dirty_train.error_types("num")) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PrePollution([])
        with pytest.raises(ValueError):
            PrePollution(MissingValues(), scale=0.0)
        with pytest.raises(ValueError):
            PrePollution(MissingValues(), max_level=1.5)

    def test_copy_is_deep_for_mutable_parts(self):
        train = _frame(n=60, seed=9)
        pre = PrePollution(MissingValues(), rng=0)
        dataset = pre.apply(train, _frame(n=30, seed=10), label="label", levels={"num": 0.1, "num2": 0.0, "cat": 0.0})
        dup = dataset.copy()
        dup.train["num"].set_values([0], [123.0])
        dup.dirty_train.remove("num", "missing", dup.dirty_train.rows("num", "missing"))
        assert dataset.train["num"].values[0] != 123.0 or dataset.train["num"].missing_mask[0]
        assert dataset.dirty_train.dirty_count("num") > 0


@given(st.integers(0, 10_000), st.sampled_from(["missing", "noise", "scaling"]))
@settings(max_examples=20, deadline=None)
def test_property_polluter_dirty_rows_match_report(seed, error_name):
    frame = _frame(n=80, seed=0)
    polluter = Polluter(make_error(error_name), step=0.1, rng=seed)
    polluted, rows = polluter.pollute_once(frame, "num")
    changed = np.flatnonzero(
        (polluted["num"].values != frame["num"].values)
        | (polluted["num"].missing_mask != frame["num"].missing_mask)
    )
    assert set(changed.tolist()) <= set(rows.tolist())
