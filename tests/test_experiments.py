"""Tests for the experiment harness (runner, comparison, aggregate, report)."""

import numpy as np
import pytest

from repro.core.trace import CleaningTrace, IterationRecord
from repro.experiments import (
    Configuration,
    advantage_by_algorithm,
    advantage_by_error_type,
    average_curve,
    build_polluted,
    estimator_mae,
    f1_advantage,
    f1_advantage_curves,
    first_iteration_runtime,
    format_series,
    format_table,
    run_configuration,
    run_method,
)

FAST = dict(n_rows=180, budget=3.0, step=0.03, rr_repeats=2)


def _trace(initial, pairs, predicted=None):
    trace = CleaningTrace(initial_f1=initial)
    for i, (spent, f1) in enumerate(pairs, start=1):
        trace.append(
            IterationRecord(
                iteration=i, feature="f", error="missing", cost=1.0,
                budget_spent=spent, f1_before=initial, f1_after=f1,
                predicted_f1=None if predicted is None else predicted[i - 1],
            )
        )
    return trace


class TestConfiguration:
    def test_cost_model_selection(self):
        assert Configuration("cmc", cost_model="paper").make_cost_model().next_cost("f", "missing") == 2.0
        assert Configuration("cmc").make_cost_model().next_cost("f", "missing") == 1.0

    def test_unknown_cost_model_raises(self):
        with pytest.raises(ValueError):
            Configuration("cmc", cost_model="weird").make_cost_model()

    def test_build_polluted_deterministic(self):
        config = Configuration("cmc", **FAST)
        a = build_polluted(config, seed=1)
        b = build_polluted(config, seed=1)
        assert a.train == b.train

    def test_build_cleanml(self):
        config = Configuration("titanic", cleanml=True, **FAST)
        polluted = build_polluted(config, seed=0)
        assert polluted.name == "cleanml-titanic"
        assert polluted.dirty_train.total() > 0


class TestRunMethod:
    @pytest.mark.parametrize("method", ["comet", "rr", "fir", "cl", "oracle"])
    def test_methods_produce_traces(self, method):
        config = Configuration("cmc", algorithm="lor", **FAST)
        polluted = build_polluted(config, seed=0)
        trace = run_method(method, polluted, config, rng=0)
        assert trace.total_spent <= config.budget + 1e-9

    def test_ac_runs_with_convex_model(self):
        # AC cleans records across all features, so one step can cost
        # several units — give it a budget that affords a few steps.
        config = Configuration("cmc", algorithm="lir", n_rows=180, budget=15.0,
                               step=0.03, rr_repeats=2)
        polluted = build_polluted(config, seed=0)
        trace = run_method("ac", polluted, config, rng=0)
        assert trace.records
        assert trace.total_spent <= 15.0 + 1e-9

    def test_unknown_method_raises(self):
        config = Configuration("cmc", **FAST)
        polluted = build_polluted(config, seed=0)
        with pytest.raises(ValueError, match="unknown method"):
            run_method("magic", polluted, config)


class TestRunConfiguration:
    def test_rr_repeats_counted(self):
        config = Configuration("cmc", algorithm="lor", **FAST)
        results = run_configuration(config, methods=("comet", "rr"), n_settings=1)
        assert len(results["comet"]) == 1
        assert len(results["rr"]) == config.rr_repeats

    def test_multiple_settings(self):
        config = Configuration("cmc", algorithm="lor", **{**FAST, "rr_repeats": 1})
        results = run_configuration(config, methods=("rr",), n_settings=2)
        assert len(results["rr"]) == 2


class TestComparison:
    def test_average_curve(self):
        traces = [
            _trace(0.5, [(1.0, 0.6)]),
            _trace(0.5, [(1.0, 0.8)]),
        ]
        curve = average_curve(traces, [0, 1])
        assert curve.tolist() == [0.5, pytest.approx(0.7)]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            average_curve([], [0, 1])

    def test_f1_advantage_positive_when_comet_leads(self):
        comet = [_trace(0.5, [(1.0, 0.7)])]
        rr = [_trace(0.5, [(1.0, 0.6)])]
        adv = f1_advantage(comet, rr, [0, 1, 2])
        assert adv.tolist() == [0.0, pytest.approx(0.1), pytest.approx(0.1)]

    def test_curves_exclude_reference(self):
        results = {
            "comet": [_trace(0.5, [(1.0, 0.7)])],
            "rr": [_trace(0.5, [(1.0, 0.6)])],
        }
        curves = f1_advantage_curves(results, [0, 1])
        assert set(curves) == {"rr"}

    def test_missing_reference_raises(self):
        with pytest.raises(ValueError):
            f1_advantage_curves({"rr": []}, [0, 1])


class TestAggregate:
    def _runs(self):
        comet = [_trace(0.5, [(1.0, 0.7)])]
        rr = [_trace(0.5, [(1.0, 0.6)])]
        return [
            {"algorithm": "svm", "error_type": "missing", "budget": 2.0,
             "comet": comet, "baselines": {"rr": rr}},
            {"algorithm": "knn", "error_type": "noise", "budget": 2.0,
             "comet": comet, "baselines": {"rr": comet}},
        ]

    def test_advantage_by_algorithm(self):
        table = advantage_by_algorithm(self._runs())
        assert table["svm"] == pytest.approx(0.1)
        assert table["knn"] == pytest.approx(0.0)

    def test_advantage_by_error_type(self):
        table = advantage_by_error_type(self._runs())
        assert table["missing"] == pytest.approx(0.1)
        assert table["noise"] == pytest.approx(0.0)

    def test_estimator_mae(self):
        trace = _trace(0.5, [(1.0, 0.60), (2.0, 0.70)], predicted=[0.65, 0.71])
        assert estimator_mae([trace]) == pytest.approx((0.05 + 0.01) / 2)

    def test_estimator_mae_empty_nan(self):
        assert np.isnan(estimator_mae([_trace(0.5, [(1.0, 0.6)])]))

    def test_first_iteration_runtime_positive(self):
        config = Configuration("cmc", algorithm="lor", **FAST)
        assert first_iteration_runtime(config) > 0.0


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "0.5000" in text and "20" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_series_samples_grid(self):
        text = format_series("rr", np.arange(11.0), np.linspace(0, 1, 11), every=5)
        assert text.count(":") == 3  # budgets 0, 5, 10

    def test_format_series_shape_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [0, 1], [0.0])


class TestParallelRunner:
    """The runner's backend fan-out must return exactly what serial runs do."""

    def test_run_configuration_thread_matches_serial(self):
        config = Configuration("cmc", algorithm="lor", **FAST)
        serial = run_configuration(
            config, methods=("comet", "rr"), n_settings=2, seed=0
        )
        threaded = run_configuration(
            config, methods=("comet", "rr"), n_settings=2, seed=0,
            backend="thread", jobs=2,
        )
        assert serial.keys() == threaded.keys()
        for method in serial:
            assert serial[method] == threaded[method]

    def test_run_configurations_fans_out_in_input_order(self):
        from repro.experiments import run_configurations

        configs = [
            Configuration("cmc", algorithm="lor", **FAST),
            Configuration("eeg", algorithm="lor", **FAST),
        ]
        batched = run_configurations(
            configs, methods=("rr",), n_settings=1, seed=1, backend="thread", jobs=2
        )
        assert len(batched) == 2
        for config, results in zip(configs, batched):
            expected = run_configuration(config, methods=("rr",), n_settings=1, seed=1)
            assert results == expected
