"""Unit tests for Shapley feature importance."""

import numpy as np
import pytest

from repro.frame import Column, DataFrame
from repro.explain import rank_features_by_importance, shapley_values
from repro.ml import TabularModel, make_classifier


@pytest.fixture(scope="module")
def fitted():
    """Label depends strongly on x1, weakly on x2, not at all on noise."""
    rng = np.random.default_rng(0)
    n = 300
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    noise = rng.normal(size=n)
    y = ((2.0 * x1 + 0.4 * x2 + rng.normal(0, 0.3, n)) > 0).astype(int)
    frame = DataFrame({"x1": x1, "x2": x2, "noise": noise, "y": y})
    model = TabularModel(make_classifier("lor"), label="y").fit(frame)
    return model, frame


class TestShapleyValues:
    def test_returns_all_features(self, fitted):
        model, frame = fitted
        values = shapley_values(model, frame, n_permutations=4, rng=0)
        assert set(values) == {"x1", "x2", "noise"}

    def test_strong_feature_dominates(self, fitted):
        model, frame = fitted
        values = shapley_values(model, frame, n_permutations=8, rng=0)
        assert values["x1"] > values["x2"]
        assert values["x1"] > values["noise"]

    def test_values_sum_to_full_minus_masked_gap(self, fitted):
        """Efficiency property of Shapley values (up to sampling noise)."""
        model, frame = fitted
        rng = np.random.default_rng(0)
        values = shapley_values(model, frame, n_permutations=16, rng=0)
        from repro.ml import f1_score

        full = f1_score(frame.label_array("y"), model.predict(frame))
        shuffled = frame.copy()
        for name in model.features_:
            shuffled.set_column(frame[name].take(rng.permutation(frame.n_rows)))
        # The gap depends on the shuffle realization, so allow slack.
        assert sum(values.values()) == pytest.approx(full - 0.5, abs=0.25)

    def test_invalid_permutations_raise(self, fitted):
        model, frame = fitted
        with pytest.raises(ValueError):
            shapley_values(model, frame, n_permutations=0)

    def test_deterministic_given_rng(self, fitted):
        model, frame = fitted
        a = shapley_values(model, frame, n_permutations=3, rng=42)
        b = shapley_values(model, frame, n_permutations=3, rng=42)
        assert a == b


class TestRanking:
    def test_rank_order(self, fitted):
        model, frame = fitted
        ranked = rank_features_by_importance(model, frame, n_permutations=8, rng=0)
        assert ranked[0] == "x1"
        assert set(ranked) == {"x1", "x2", "noise"}
