"""Tests for the paper's §6 future-work extensions implemented here:
inconsistent-representation errors, batch recommendations, the pure
``recommend`` API, and regression-task support."""

import numpy as np
import pytest

from repro import Comet, CometConfig, load_dataset, pollute
from repro.datasets.synth import SyntheticSpec, synthesize_regression
from repro.errors import InconsistentRepresentation, PrePollution, make_error
from repro.frame import Column, DataFrame
from repro.ml import LinearRegression, TabularModel, make_classifier
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import r2_score
from repro.ml.model_selection import train_test_split


class TestInconsistentRepresentation:
    def test_registered(self):
        assert isinstance(make_error("inconsistent"), InconsistentRepresentation)

    def test_applies_only_to_categorical(self):
        frame = DataFrame({"x": [1.0, 2.0], "c": ["a", "b"]})
        error = InconsistentRepresentation()
        assert error.applies_to(frame["c"])
        assert not error.applies_to(frame["x"])

    def test_variants_differ_but_derive_from_original(self):
        col = Column("c", ["red", "blue", "red", "green"])
        error = InconsistentRepresentation()
        values = error.corrupt(col, np.arange(4), np.random.default_rng(0))
        for new, old in zip(values, col.values.tolist()):
            assert new != old
            assert old.lower() in new.lower()

    def test_missing_cells_stay_missing(self):
        col = Column("c", np.array(["a", None], dtype=object))
        values = InconsistentRepresentation().corrupt(
            col, np.array([1]), np.random.default_rng(0)
        )
        assert values == [None]

    def test_end_to_end_comet_run(self):
        dataset = load_dataset("cmc", n_rows=200, rng=0)
        polluted = pollute(dataset, error_types=["inconsistent"], rng=1)
        assert polluted.dirty_train.total() > 0
        comet = Comet(
            polluted,
            algorithm="lor",
            error_types=["inconsistent"],
            budget=3.0,
            config=CometConfig(step=0.03),
            rng=0,
        )
        trace = comet.run()
        assert trace.records


class TestBatchRecommendations:
    def _comet(self, batch_size):
        dataset = load_dataset("cmc", n_rows=220, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=2)
        return Comet(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=8.0,
            config=CometConfig(step=0.02, batch_size=batch_size),
            rng=0,
        )

    def test_batch_iterate_accepts_multiple(self):
        comet = self._comet(batch_size=3)
        records = comet.iterate()
        assert 1 <= len(records) <= 3

    def test_batch_records_chain_f1(self):
        comet = self._comet(batch_size=3)
        records = comet.iterate()
        for prev, nxt in zip(records, records[1:]):
            assert nxt.f1_before == pytest.approx(prev.f1_after)

    def test_batch_run_fills_trace(self):
        trace = self._comet(batch_size=2).run()
        assert trace.total_spent <= 8.0 + 1e-9
        spent = [r.budget_spent for r in trace.records]
        assert spent == sorted(spent)

    def test_step_still_single(self):
        comet = self._comet(batch_size=3)
        record = comet.step()
        assert record is not None  # a single IterationRecord, not a list

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            CometConfig(batch_size=0)


class TestRecommendApi:
    def test_recommend_returns_scored_candidates_without_cleaning(self):
        dataset = load_dataset("cmc", n_rows=220, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=3)
        comet = Comet(
            polluted, algorithm="lor", error_types=["missing"],
            budget=5.0, config=CometConfig(step=0.02), rng=0,
        )
        dirt_before = comet.dataset.dirty_train.total()
        spent_before = comet.budget.spent
        candidates = comet.recommend(k=3)
        assert len(candidates) <= 3
        assert comet.dataset.dirty_train.total() == dirt_before
        assert comet.budget.spent == spent_before
        for first, second in zip(candidates, candidates[1:]):
            assert first.score >= second.score

    def test_recommend_invalid_k(self):
        dataset = load_dataset("cmc", n_rows=200, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=3)
        comet = Comet(polluted, algorithm="lor", error_types=["missing"],
                      budget=5.0, config=CometConfig(step=0.02), rng=0)
        with pytest.raises(ValueError):
            comet.recommend(k=0)


class TestR2Score:
    def test_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 3.0]) == 0.0

    def test_can_be_negative(self):
        assert r2_score([1.0, 2.0], [10.0, -10.0]) < 0.0


class TestRegressionSubstrate:
    def test_gb_regressor_fits_nonlinear(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        model = GradientBoostingRegressor(n_estimators=80).fit(X[:200], y[:200])
        assert r2_score(y[200:], model.predict(X[200:])) > 0.7

    def test_tabular_model_regression(self):
        spec = SyntheticSpec(n_rows=300, n_numeric=3, n_categorical=1)
        frame = synthesize_regression(spec, rng=0)
        train_idx, test_idx = train_test_split(300, rng=0)
        model = TabularModel(LinearRegression(), label="target", task="regression")
        score = model.fit_score(frame.take(train_idx), frame.take(test_idx))
        assert score > 0.5

    def test_regression_rejects_categorical_label(self):
        frame = DataFrame({"x": [1.0, 2.0], "c": ["a", "b"]})
        model = TabularModel(LinearRegression(), label="c", task="regression")
        with pytest.raises(ValueError, match="numeric"):
            model.fit(frame)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="task"):
            TabularModel(LinearRegression(), label="y", task="ranking")


class TestRegressionComet:
    def test_comet_improves_r2(self):
        spec = SyntheticSpec(n_rows=300, n_numeric=4, n_categorical=0)
        frame = synthesize_regression(spec, rng=1)
        train_idx, test_idx = train_test_split(300, rng=0)
        pre = PrePollution(["noise"], rng=4, scale=0.2)
        polluted = pre.apply(
            frame.take(train_idx), frame.take(test_idx), label="target"
        )
        comet = Comet(
            polluted,
            algorithm=LinearRegression(),
            error_types=["noise"],
            budget=8.0,
            config=CometConfig(step=0.03),
            # The outcome is seed-sensitive (a short noisy session can end
            # on an unlucky fallback cleaning); this seed is representative
            # of the majority behavior under the spawn-based Polluter
            # streams.
            rng=1,
            task="regression",
        )
        trace = comet.run()
        assert trace.records
        # Cleaning injected noise on a linear target should help R².
        assert trace.final_f1 >= trace.initial_f1 - 0.02
