"""Smoke tests for the remaining figure-API wrappers (tiny parameters)."""

import numpy as np
import pytest

from repro.experiments.figures import figure3, figure4, figure6, figure8, figure9

TINY = dict(n_rows=150, budget=2.0, step=0.05)


@pytest.mark.parametrize(
    "fn,kwargs,expected_methods",
    [
        (figure3, {"dataset": "cmc"}, {"fir", "rr", "cl"}),
        (figure4, {"dataset": "cmc"}, {"ac"}),
        (figure6, {"dataset": "titanic", "error": "missing"}, {"fir", "rr", "cl"}),
        (figure8, {"dataset": "cmc", "error": "missing"}, {"ac"}),
        (figure9, {"dataset": "credit", "error": "scaling"}, {"ac"}),
    ],
)
def test_figure_wrappers(fn, kwargs, expected_methods):
    lines, curves = fn(**kwargs, **TINY)
    assert set(curves) == expected_methods
    for curve in curves.values():
        assert len(curve) == int(TINY["budget"]) + 1
        assert np.isfinite(curve).all()
    assert len(lines) == len(expected_methods)
