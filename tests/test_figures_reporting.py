"""Tests for the figures API and the ASCII plot renderer."""

import numpy as np
import pytest

from repro.experiments import ascii_plot
from repro.experiments.figures import figure5, figure10, figure11, figure12

FAST = dict(n_rows=160, budget=3.0, step=0.04)


class TestAsciiPlot:
    def test_renders_all_curves(self):
        grid = np.arange(5.0)
        text = ascii_plot({"comet": grid / 4.0, "rr": 1.0 - grid / 4.0}, grid)
        assert "*=comet" in text and "+=rr" in text
        assert "budget" in text

    def test_requires_curves(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0, 2.0], "b": [1.0]})

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [1.0]})

    def test_flat_curve_ok(self):
        text = ascii_plot({"a": [0.5, 0.5, 0.5]})
        assert "*" in text


class TestFiguresApi:
    def test_figure5_shape(self):
        lines, curves = figure5("cmc", error="missing", **FAST)
        assert len(lines) == 3  # fir, rr, cl
        assert set(curves) == {"fir", "rr", "cl"}
        for curve in curves.values():
            assert len(curve) == int(FAST["budget"]) + 1

    def test_figure10_groups(self):
        lines, data = figure10("cmc", n_rows=160, budget=2.0, step=0.04)
        assert set(data["by_algorithm"]) == {
            "gb", "knn", "mlp", "svm", "ac_svm", "lir", "lor"
        }
        assert set(data["by_error"]) == {"categorical", "noise", "missing", "scaling"}

    def test_figure11_cells(self):
        lines, cells = figure11(
            grid=(("missing", "lor"),), n_rows=160, budget=2.0, step=0.04
        )
        assert len(cells) == 1
        error, algorithm, mae = cells[0]
        assert (error, algorithm) == ("missing", "lor")

    def test_figure12_cells(self):
        lines, cells = figure12(
            algorithms=("lor",), errors=("missing",), n_rows=160, step=0.04
        )
        assert cells[("lor", "missing")] > 0.0
