"""Unit tests for repro.frame.column."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.frame import Column, ColumnKind


class TestConstruction:
    def test_numeric_kind_inferred(self):
        col = Column("x", [1.0, 2.0, 3.0])
        assert col.kind is ColumnKind.NUMERIC
        assert col.is_numeric and not col.is_categorical

    def test_int_values_become_numeric(self):
        col = Column("x", [1, 2, 3])
        assert col.is_numeric
        assert col.values.dtype == float

    def test_string_kind_inferred(self):
        col = Column("c", ["a", "b", "a"])
        assert col.kind is ColumnKind.CATEGORICAL

    def test_nan_marks_numeric_missing(self):
        col = Column("x", [1.0, np.nan, 3.0])
        assert col.n_missing == 1
        assert col.missing_mask.tolist() == [False, True, False]

    def test_none_marks_categorical_missing(self):
        col = Column("c", np.array(["a", None, "b"], dtype=object))
        assert col.n_missing == 1
        assert col.values[1] is None

    def test_explicit_kind_overrides_inference(self):
        col = Column("x", np.array(["1", "2"], dtype=object), kind=ColumnKind.CATEGORICAL)
        assert col.is_categorical

    def test_len(self):
        assert len(Column("x", [1.0, 2.0])) == 2


class TestAccessors:
    def test_categories_sorted_and_distinct(self):
        col = Column("c", np.array(["b", "a", "b", None], dtype=object))
        assert col.categories() == ["a", "b"]

    def test_take_preserves_kind_and_mask(self):
        col = Column("x", [1.0, np.nan, 3.0, 4.0])
        sub = col.take([2, 1])
        assert sub.values[0] == 3.0
        assert sub.missing_mask.tolist() == [False, True]
        assert sub.kind is ColumnKind.NUMERIC

    def test_take_copies(self):
        col = Column("x", [1.0, 2.0])
        sub = col.take([0, 1])
        sub.set_values([0], [9.0])
        assert col.values[0] == 1.0

    def test_copy_equal_but_independent(self):
        col = Column("x", [1.0, np.nan])
        dup = col.copy()
        assert dup == col
        dup.set_values([0], [5.0])
        assert col.values[0] == 1.0


class TestMutation:
    def test_set_values_numeric(self):
        col = Column("x", [1.0, 2.0, 3.0])
        col.set_values([0, 2], [10.0, 30.0])
        assert col.values.tolist() == [10.0, 2.0, 30.0]

    def test_set_values_clears_missing(self):
        col = Column("x", [np.nan, 2.0])
        col.set_values([0], [7.0])
        assert col.n_missing == 0

    def test_set_values_nan_sets_missing(self):
        col = Column("x", [1.0, 2.0])
        col.set_values([1], [np.nan])
        assert col.missing_mask.tolist() == [False, True]

    def test_set_values_categorical(self):
        col = Column("c", ["a", "b"])
        col.set_values([0], ["z"])
        assert col.values[0] == "z"

    def test_set_values_categorical_none_sets_missing(self):
        col = Column("c", ["a", "b"])
        col.set_values([1], [None])
        assert col.n_missing == 1

    def test_set_values_length_mismatch_raises(self):
        col = Column("x", [1.0, 2.0])
        with pytest.raises(ValueError, match="indices"):
            col.set_values([0], [1.0, 2.0])

    def test_set_missing(self):
        col = Column("x", [1.0, 2.0, 3.0])
        col.set_missing([0, 2])
        assert col.n_missing == 2
        assert np.isnan(col.values[0])


class TestEquality:
    def test_equal_columns(self):
        assert Column("x", [1.0, np.nan]) == Column("x", [1.0, np.nan])

    def test_different_names_unequal(self):
        assert Column("x", [1.0]) != Column("y", [1.0])

    def test_different_values_unequal(self):
        assert Column("x", [1.0]) != Column("x", [2.0])

    def test_different_mask_unequal(self):
        assert Column("x", [np.nan]) != Column("x", [1.0])


@given(st.lists(st.one_of(st.floats(allow_infinity=False), st.none()), min_size=1, max_size=50))
def test_missing_mask_matches_none_and_nan(values):
    col = Column("x", np.array([np.nan if v is None else v for v in values], dtype=float))
    expected = [v is None or (v != v) for v in values]
    assert col.missing_mask.tolist() == expected


@given(
    st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30),
    st.data(),
)
def test_take_roundtrip_identity(values, data):
    col = Column("x", values)
    indices = data.draw(
        st.lists(st.integers(0, len(values) - 1), min_size=1, max_size=len(values))
    )
    sub = col.take(indices)
    assert sub.values.tolist() == [values[i] for i in indices]
