"""Copy-on-write frame layer: sharing, identity tokens, pickling, resume.

The COW refactor has two standing contracts to uphold: mutation through
one frame is never visible through another (structural sharing is an
optimization, not a semantic), and pickling shared frames — checkpoints,
process-backend tasks — rebuilds the sharing on the far side without
correctness loss. These tests pin both, plus the identity-token rules
the featurization cache relies on.
"""

import pickle

import numpy as np
import pytest

from repro.datasets import load_cleanml, load_dataset, pollute
from repro.errors import MissingValues
from repro.errors.polluter import Polluter
from repro.frame import Column, DataFrame
from repro.ml import clear_fit_cache, make_classifier
from repro.runtime import FitScoreTask, ProcessBackend, run_fit_score_task
from repro.session import CleaningSession
from repro.core.config import CometConfig


@pytest.fixture
def frame():
    return DataFrame(
        {
            "num": [1.0, 2.0, np.nan, 4.0],
            "cat": np.array(["a", "b", "a", None], dtype=object),
            "label": [0, 1, 0, 1],
        }
    )


class TestColumnIdentity:
    def test_signature_is_stable_until_mutation(self):
        col = Column("x", [1.0, 2.0, 3.0])
        sig = col.signature
        assert col.signature == sig
        col.set_values([0], [9.0])
        assert col.signature != sig
        assert col.version == 1

    def test_share_preserves_identity_take_mints_fresh(self):
        col = Column("x", [1.0, 2.0, 3.0])
        assert col.copy().signature == col.signature
        assert col.take([0, 1]).signature != col.signature

    def test_each_mutation_mints_a_new_token(self):
        col = Column("x", [1.0, 2.0])
        seen = {col.token}
        for v in (5.0, 6.0, 7.0):
            col.set_values([0], [v])
            assert col.token not in seen
            seen.add(col.token)
        assert col.version == 3

    def test_diverged_copies_never_share_a_signature(self):
        # Both sides of a share mutate: their signatures must differ from
        # each other and from the original (stale-cache hazard).
        base = Column("x", [1.0, 2.0])
        a, b = base.copy(), base.copy()
        a.set_values([0], [10.0])
        b.set_values([0], [20.0])
        assert len({base.signature, a.signature, b.signature}) == 3

    def test_set_missing_changes_identity(self):
        col = Column("c", ["a", "b"])
        sig = col.signature
        col.set_missing([1])
        assert col.signature != sig

    def test_failed_partial_write_still_changes_identity(self):
        # A mid-loop failure may leave cells partially overwritten; the
        # old token must not survive, or caches would serve stale stats.
        col = Column("c", ["a", "b", "a", "b"])
        sig = col.signature
        with pytest.raises(IndexError):
            col.set_values(np.array([0, 99]), ["z", "w"])
        assert col.signature != sig


class TestMutationIsolation:
    """The explicit COW regressions: mutating a polluted frame never
    alters the clean parent, in either direction, on every share path."""

    def test_init_mapping_shares_but_isolates(self):
        col = Column("x", [1.0, 2.0, 3.0])
        df = DataFrame({"renamed": col})
        assert np.shares_memory(df["renamed"].values, col.values)
        assert col.name == "x"  # renaming happened on the share
        df["renamed"].set_values([0], [9.0])
        assert col.values[0] == 1.0
        col.set_values([1], [8.0])
        assert df["renamed"].values[1] == 2.0

    def test_copy_shares_storage_until_write(self, frame):
        dup = frame.copy()
        assert all(
            np.shares_memory(dup[n].values, frame[n].values)
            for n in frame.column_names
        )
        dup["num"].set_values([0], [99.0])
        assert frame["num"].values[0] == 1.0
        assert not np.shares_memory(dup["num"].values, frame["num"].values)
        # Untouched columns keep sharing.
        assert np.shares_memory(dup["cat"].values, frame["cat"].values)

    def test_with_column_shares_untouched_siblings(self, frame):
        polluted = frame.with_column(Column("num", [9.0, 9.0, 9.0, 9.0]))
        assert np.shares_memory(polluted["cat"].values, frame["cat"].values)
        polluted["cat"].set_missing([0])
        assert frame["cat"].n_missing == 1  # only the original None
        frame["cat"].set_values([0], ["z"])
        assert polluted["cat"].values[0] is None

    def test_select_isolates(self, frame):
        sub = frame.select(["num"])
        sub["num"].set_values([0], [42.0])
        assert frame["num"].values[0] == 1.0

    def test_mutating_polluted_frame_never_alters_clean_parent(self):
        polluted = pollute(
            load_dataset("cmc", n_rows=80), error_types=["missing"], rng=0
        )
        clean_before = {
            n: polluted.clean_train[n].values.copy()
            for n in polluted.clean_train.column_names
        }
        for feature in polluted.feature_names:
            polluted.train[feature].set_missing([0])
        for name, values in clean_before.items():
            got = polluted.clean_train[name].values
            if polluted.clean_train[name].is_numeric:
                assert np.array_equal(got, values, equal_nan=True)
            else:
                assert np.array_equal(got, values)

    def test_polluter_states_share_untouched_columns(self):
        polluted = pollute(
            load_dataset("cmc", n_rows=80), error_types=["missing"], rng=0
        )
        feature = polluted.feature_names[0]
        polluter = Polluter(MissingValues(), step=0.05, rng=3)
        states = polluter.incremental_states(polluted.train, feature, n_steps=2)[0]
        other = [n for n in polluted.train.column_names if n != feature]
        for state in states:
            for name in other:
                assert state.frame[name].signature == polluted.train[name].signature
            assert state.frame[feature].signature != polluted.train[feature].signature


class TestPickleRebuildsSharing:
    def test_shared_pair_roundtrip(self, frame):
        polluted = frame.with_column(frame["num"].with_missing([0]))
        blob = pickle.dumps((frame, polluted))
        clean2, polluted2 = pickle.loads(blob)
        assert clean2 == frame and polluted2 == polluted
        # Sharing is rebuilt: the untouched columns reference one array.
        assert np.shares_memory(clean2["cat"].values, polluted2["cat"].values)
        assert clean2["cat"].signature == polluted2["cat"].signature
        # Tokens survive the trip (salted minting makes that safe).
        assert clean2["cat"].signature == frame["cat"].signature
        # And COW still guards the rebuilt share.
        polluted2["cat"].set_values([0], ["z"])
        assert clean2["cat"].values[0] == "a"

    def test_legacy_pickle_without_tokens_gets_identity(self, frame):
        state = frame["num"].__dict__.copy()
        for key in ("_token", "_version", "_shared"):
            state.pop(key, None)
        revived = Column.__new__(Column)
        revived.__setstate__(state)
        assert isinstance(revived.signature, bytes)
        assert revived.version == 0

    def test_process_backend_roundtrip_matches_serial(self):
        clear_fit_cache()
        polluted = pollute(
            load_dataset("cmc", n_rows=80), error_types=["missing"], rng=0
        )
        task = FitScoreTask(
            estimator=make_classifier("lor"),
            label=polluted.label,
            train=polluted.train,
            test=polluted.test,
        )
        serial = run_fit_score_task(task)
        with ProcessBackend(2) as backend:
            # Same task twice: the second run exercises worker-side cache
            # hits on the pickled tokens; both must equal the serial run.
            first, second = backend.map(run_fit_score_task, [task, task])
        assert first == serial
        assert second == serial


class TestSessionCheckpointWithCOW:
    def _make(self, **kwargs):
        polluted = load_cleanml("titanic", n_rows=150, rng=0)
        return CleaningSession.create(
            polluted,
            algorithm="lor",
            error_types=["missing"],
            budget=3.0,
            config=CometConfig(step=0.05),
            rng=0,
            **kwargs,
        )

    def test_checkpoint_preserves_frame_sharing(self, tmp_path):
        session = self._make()
        state = session.state
        shared = [
            f
            for f in state.dataset.feature_names
            if np.shares_memory(
                state.dataset.train[f].values, state.dataset.clean_train[f].values
            )
        ]
        assert shared, "unpolluted features should share storage with ground truth"
        path = tmp_path / "cow.ckpt"
        session.save(path)
        loaded = CleaningSession.load(path).state
        for f in shared:
            assert np.shares_memory(
                loaded.dataset.train[f].values, loaded.dataset.clean_train[f].values
            )

    def test_midrun_resume_is_bit_identical_on_cleanml(self, tmp_path):
        full = self._make().run()
        session = self._make()
        session.step()
        session.step()
        path = tmp_path / "midrun.ckpt"
        session.save(path)
        del session
        combined = CleaningSession.load(path).run()
        assert combined == full
