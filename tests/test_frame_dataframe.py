"""Unit tests for repro.frame.dataframe and io."""

import numpy as np
import pytest

from repro.frame import Column, DataFrame, read_csv, write_csv


@pytest.fixture
def frame():
    return DataFrame(
        {
            "num": [1.0, 2.0, np.nan, 4.0],
            "cat": np.array(["a", "b", "a", None], dtype=object),
            "label": [0, 1, 0, 1],
        }
    )


class TestConstruction:
    def test_from_mapping(self, frame):
        assert frame.shape == (4, 3)
        assert frame.column_names == ["num", "cat", "label"]

    def test_from_columns(self):
        df = DataFrame([Column("a", [1.0]), Column("b", ["x"])])
        assert df.n_columns == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one column"):
            DataFrame([])

    def test_unequal_lengths_raise(self):
        with pytest.raises(ValueError, match="unequal"):
            DataFrame([Column("a", [1.0]), Column("b", [1.0, 2.0])])

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            DataFrame([Column("a", [1.0]), Column("a", [2.0])])


class TestMetadata:
    def test_numeric_and_categorical_split(self, frame):
        assert frame.numeric_columns() == ["num", "label"]
        assert frame.categorical_columns() == ["cat"]

    def test_contains(self, frame):
        assert "num" in frame
        assert "nope" not in frame


class TestSelection:
    def test_select_subset(self, frame):
        sub = frame.select(["cat", "num"])
        assert sub.column_names == ["cat", "num"]

    def test_select_unknown_raises(self, frame):
        with pytest.raises(KeyError):
            frame.select(["ghost"])

    def test_drop(self, frame):
        assert frame.drop("label").column_names == ["num", "cat"]

    def test_drop_unknown_raises(self, frame):
        with pytest.raises(KeyError):
            frame.drop(["ghost"])

    def test_take_rows(self, frame):
        sub = frame.take([3, 0])
        assert sub.n_rows == 2
        assert sub["num"].values[0] == 4.0
        assert sub["cat"].n_missing == 1

    def test_take_copies(self, frame):
        sub = frame.take([0])
        sub["num"].set_values([0], [99.0])
        assert frame["num"].values[0] == 1.0

    def test_copy_independent(self, frame):
        dup = frame.copy()
        dup["num"].set_values([0], [99.0])
        assert frame["num"].values[0] == 1.0
        assert dup != frame


class TestMutation:
    def test_set_column_replaces(self, frame):
        frame.set_column(Column("num", [9.0, 9.0, 9.0, 9.0]))
        assert frame["num"].values.tolist() == [9.0] * 4

    def test_set_column_wrong_length_raises(self, frame):
        with pytest.raises(ValueError, match="rows"):
            frame.set_column(Column("num", [1.0]))

    def test_with_column_returns_new_frame(self, frame):
        new = frame.with_column(Column("num", [9.0, 9.0, 9.0, 9.0]))
        assert frame["num"].values[0] == 1.0
        assert new["num"].values[0] == 9.0


class TestLabelArray:
    def test_numeric_label_encoded_to_indices(self, frame):
        y = frame.label_array("label")
        assert y.tolist() == [0, 1, 0, 1]

    def test_categorical_label(self):
        df = DataFrame({"c": ["yes", "no", "yes"], "x": [1.0, 2.0, 3.0]})
        assert df.label_array("c").tolist() == [1, 0, 1]

    def test_missing_label_raises(self):
        df = DataFrame({"y": [1.0, np.nan], "x": [0.0, 0.0]})
        with pytest.raises(ValueError, match="missing"):
            df.label_array("y")


class TestCsvRoundTrip:
    def test_roundtrip(self, frame, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(frame, path)
        loaded = read_csv(path)
        assert loaded.column_names == frame.column_names
        assert loaded["num"].missing_mask.tolist() == frame["num"].missing_mask.tolist()
        assert loaded["cat"].values[0] == "a"
        assert loaded["cat"].n_missing == 1

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no rows"):
            read_csv(path)

    def test_na_markers_read_as_missing(self, tmp_path):
        path = tmp_path / "na.csv"
        path.write_text("x,c\n1.5,hello\nNaN,NA\n")
        df = read_csv(path)
        assert df["x"].n_missing == 1
        assert df["c"].n_missing == 1
