"""Headline integration test: the paper's central claim at miniature scale.

COMET's cleaning recommendations should, averaged over pre-pollution
settings, yield at least the F1 of random recommendations for the same
budget — and its Estimator's predictions should track realized F1.
"""

import numpy as np
import pytest

from repro.experiments import (
    Configuration,
    estimator_mae,
    f1_advantage_curves,
    run_configuration,
)


@pytest.fixture(scope="module")
def results():
    config = Configuration(
        "eeg",
        algorithm="lor",
        error_types=("missing",),
        n_rows=240,
        budget=10.0,
        step=0.03,
        rr_repeats=3,
    )
    return config, run_configuration(
        config, methods=("comet", "rr"), n_settings=3, seed=0
    )


def test_comet_not_worse_than_random_on_average(results):
    config, traces = results
    grid = np.arange(1.0, config.budget + 1.0)
    advantage = f1_advantage_curves(traces, grid)["rr"]
    assert advantage.mean() > -0.01


def test_comet_improves_over_dirty_state(results):
    __, traces = results
    gains = [t.final_f1 - t.initial_f1 for t in traces["comet"]]
    assert np.mean(gains) > 0.0


def test_estimator_predictions_track_reality(results):
    __, traces = results
    mae = estimator_mae(traces["comet"])
    assert np.isfinite(mae)
    assert mae < 0.10


def test_budget_strictly_respected(results):
    config, traces = results
    for method_traces in traces.values():
        for trace in method_traces:
            assert trace.total_spent <= config.budget + 1e-9
