"""End-to-end invariants that must hold for any finished cleaning run."""

import numpy as np
import pytest

from repro import Comet, CometConfig, load_dataset, paper_cost_model, pollute
from repro.baselines import CometLight, FeatureImportanceCleaner, RandomCleaner
from repro.experiments import Configuration, run_configuration


@pytest.fixture(scope="module")
def finished_comet():
    dataset = load_dataset("cmc", n_rows=200, rng=0)
    polluted = pollute(
        dataset, error_types=["missing", "noise"], rng=11
    )
    comet = Comet(
        polluted,
        algorithm="lor",
        error_types=["missing", "noise"],
        budget=8.0,
        cost_model=paper_cost_model(),
        config=CometConfig(step=0.03),
        rng=0,
    )
    trace = comet.run()
    return comet, trace, polluted


class TestCometRunInvariants:
    def test_spending_covers_kept_records(self, finished_comet):
        comet, trace, __ = finished_comet
        kept = sum(r.cost for r in trace.records)
        assert comet.budget.spent >= kept - 1e-9
        assert comet.budget.spent <= comet.budget.total + 1e-9

    def test_budget_spent_never_decreases_between_records(self, finished_comet):
        __, trace, ___ = finished_comet
        spends = [r.budget_spent for r in trace.records]
        assert all(b >= a - 1e-12 for a, b in zip(spends, spends[1:]))

    def test_spend_jumps_account_for_reverted_attempts(self, finished_comet):
        """The gap in budget_spent between consecutive records must be at
        least the accepted record's own cost (reverted attempts only add)."""
        __, trace, ___ = finished_comet
        prev = 0.0
        for record in trace.records:
            assert record.budget_spent >= prev + record.cost - 1e-9
            prev = record.budget_spent

    def test_dirty_cells_never_increase(self, finished_comet):
        comet, __, polluted = finished_comet
        assert comet.dataset.dirty_train.total() <= polluted.dirty_train.total()
        assert comet.dataset.dirty_test.total() <= polluted.dirty_test.total()

    def test_all_scores_in_unit_interval(self, finished_comet):
        __, trace, ___ = finished_comet
        for record in trace.records:
            assert 0.0 <= record.f1_before <= 1.0
            assert 0.0 <= record.f1_after <= 1.0

    def test_clean_columns_match_ground_truth_where_marked(self, finished_comet):
        """Every (feature, error) the Cleaner marked clean has no remaining
        bookkeeping dirt."""
        comet, __, ___ = finished_comet
        open_pairs = set(comet.open_candidates())
        for feature in comet.dataset.feature_names:
            for error in ("missing", "noise"):
                if (feature, error) not in open_pairs:
                    assert comet.dataset.dirty_train.dirty_count(feature, error) == 0


class TestCrossMethodInvariants:
    @pytest.mark.parametrize("cls", [RandomCleaner, FeatureImportanceCleaner])
    def test_baselines_share_budget_semantics(self, cls):
        dataset = load_dataset("eeg", n_rows=160, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=12)
        strategy = cls(
            polluted, algorithm="lor", error_types=["missing"],
            budget=4.0, step=0.04, rng=0,
        )
        trace = strategy.run()
        assert strategy.budget.spent == pytest.approx(sum(r.cost for r in trace.records))

    def test_comet_light_spending_includes_reverts(self):
        dataset = load_dataset("cmc", n_rows=180, rng=0)
        polluted = pollute(dataset, error_types=["missing"], rng=13)
        strategy = CometLight(
            polluted, algorithm="lor", error_types=["missing"],
            budget=5.0, step=0.03, rng=0, config=CometConfig(step=0.03),
        )
        trace = strategy.run()
        kept = sum(r.cost for r in trace.records)
        assert strategy.budget.spent >= kept - 1e-9


class TestReproducibility:
    def test_run_configuration_fully_deterministic(self):
        config = Configuration(
            "cmc", algorithm="lor", error_types=("missing",),
            n_rows=160, budget=3.0, step=0.04, rr_repeats=1,
        )
        a = run_configuration(config, methods=("comet", "rr"), n_settings=1, seed=5)
        b = run_configuration(config, methods=("comet", "rr"), n_settings=1, seed=5)
        for method in ("comet", "rr"):
            grid = np.arange(0.0, 4.0)
            assert a[method][0].f1_at(grid).tolist() == b[method][0].f1_at(grid).tolist()

    def test_different_seeds_differ(self):
        config = Configuration(
            "cmc", algorithm="lor", error_types=("missing",),
            n_rows=160, budget=3.0, step=0.04, rr_repeats=1,
        )
        a = run_configuration(config, methods=("comet",), n_settings=1, seed=1)
        b = run_configuration(config, methods=("comet",), n_settings=1, seed=2)
        assert (
            a["comet"][0].initial_f1 != b["comet"][0].initial_f1
            or [r.feature for r in a["comet"][0].records]
            != [r.feature for r in b["comet"][0].records]
        )
